# Convenience targets for the NVMalloc reproduction.

.PHONY: install test test-faults test-lifecycle test-obs test-cache test-slo cache-ablation slo-curve bench bench-wallclock bench-floor bench-shards profile profile-layers trace experiments experiments-par examples clean

install:
	pip install -e .

test:
	pytest tests/

# The fault-injection experiment suite (excluded from `make test` by the
# "not faults" marker expression; CI runs it in a dedicated job).
test-faults:
	PYTHONPATH=src pytest -m faults

# The checkpoint-lifecycle experiment suite (chains, async drain,
# crash-restart recovery; CI runs it in a dedicated job).
test-lifecycle:
	PYTHONPATH=src pytest -m lifecycle

bench:
	pytest benchmarks/ --benchmark-only

bench-wallclock:
	PYTHONPATH=src python tools/bench_wallclock.py \
		--baseline benchmarks/BENCH_wallclock_seed.json --repeat 3
	PYTHONPATH=src pytest benchmarks/test_wallclock_stack.py -m wallclock

# Gate a fresh run's kernel throughput against the committed benchmark
# (floors derive from BENCH_wallclock.json's events_per_second figures).
bench-floor:
	PYTHONPATH=src python tools/bench_wallclock.py --output /tmp/bench_fresh.json
	python tools/check_bench_floor.py /tmp/bench_fresh.json --require-all

# Record the sharded-run scaling curve: the scaleout scenario at workers
# {1,2,4}, failing unless every worker count digests bit-identically.
bench-shards:
	PYTHONPATH=src python tools/bench_wallclock.py --shards-bench \
		--workloads --output BENCH_shards.json

profile:
	PYTHONPATH=src python tools/profile_stack.py --limit 25

# Per-(layer, op) virtual-time attribution from traced spans; diff two
# dumps with `tools/profile_stack.py --layers --diff old.json`.
profile-layers:
	PYTHONPATH=src python tools/profile_stack.py --layers --scale tiny \
		--layers-out /tmp/profile_layers.json

# The tracing-identity gate (excluded from `make test` by the "not obs"
# marker expression; CI runs it in the dedicated tracing job).
test-obs:
	PYTHONPATH=src pytest -m obs

# The cache-tiering determinism/improvement suite (excluded from
# `make test` by the "not cache" marker expression; CI runs it in the
# dedicated cache job).
test-cache:
	PYTHONPATH=src pytest -m cache

# Render the full lru-vs-arc / tier-on-off ablation grid.
cache-ablation:
	PYTHONPATH=src python -m repro.experiments cache_tiering

# The open-loop traffic/SLO experiment suite (excluded from `make test`
# by the "not slo" marker expression; CI runs it in a dedicated job).
test-slo:
	PYTHONPATH=src pytest -m slo

# Render the load-latency curve, its knee, and the SLO-under-failure
# verdicts at benchmark scale.
slo-curve:
	PYTHONPATH=src python -m repro.experiments slo_traffic

# Trace the faults experiment on the virtual clock and export a Chrome
# trace (open trace.json in chrome://tracing or https://ui.perfetto.dev).
trace:
	PYTHONPATH=src python -m repro.experiments faults --scale tiny \
		--trace --trace-out trace.json

experiments:
	python -m repro.experiments

# Fan the experiment matrix across every core, memoized in the result cache.
experiments-par:
	python -m repro.experiments --jobs $(shell nproc)

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex || exit 1; done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf src/*.egg-info .pytest_cache .hypothesis
