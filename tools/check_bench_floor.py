#!/usr/bin/env python
"""Events-per-second regression floor against the committed benchmark.

Usage::

    PYTHONPATH=src python tools/bench_wallclock.py --output fresh.json
    python tools/check_bench_floor.py fresh.json \
        --committed BENCH_wallclock.json --min-ratio 0.4

The committed ``BENCH_wallclock.json`` records each workload's kernel
throughput (``events_per_second``) on the machine that produced it.  A
fresh run must reach at least ``min_ratio`` of that figure per workload,
or this script exits non-zero — a cheap tripwire against kernel
slowdowns that virtual-identity gates cannot see (they only prove the
*result* is unchanged, not that it still arrives quickly).

The ratio is deliberately generous because wall-clock throughput moves
with the host: shared CI runners jitter, and a different core count or
CPU generation shifts absolute numbers.  Both reports carry a ``host``
block; when the core counts differ the script warns and applies
``--cross-host-ratio`` (even more generous) instead.  The floor is
derived from the committed file rather than hard-coded so improving the
kernel automatically raises the bar at the next benchmark refresh.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_COMMITTED = "BENCH_wallclock.json"


def workload_eps(report: dict) -> dict[str, float]:
    """``{workload: events_per_second}`` for every workload that has one."""
    return {
        name: outcome["events_per_second"]
        for name, outcome in report.get("workloads", {}).items()
        if isinstance(outcome, dict) and "events_per_second" in outcome
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("fresh", help="JSON from a fresh bench_wallclock run")
    parser.add_argument(
        "--committed", default=DEFAULT_COMMITTED,
        help=f"committed benchmark to derive floors from "
             f"(default: {DEFAULT_COMMITTED})",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=0.4,
        help="required fraction of the committed events/s, same-host "
             "core count (default: 0.4)",
    )
    parser.add_argument(
        "--cross-host-ratio", type=float, default=0.2,
        help="required fraction when the host core counts differ "
             "(default: 0.2)",
    )
    parser.add_argument(
        "--require-all", action="store_true",
        help="fail when a committed workload is missing from the fresh "
             "run (CI runs the full suite; a silent drop must not pass)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(Path(args.fresh).read_text())
    committed = json.loads(Path(args.committed).read_text())

    ratio = args.min_ratio
    fresh_cores = (fresh.get("host") or {}).get("cpu_count")
    committed_cores = (committed.get("host") or {}).get("cpu_count")
    if committed_cores is not None and fresh_cores != committed_cores:
        print(
            f"WARNING: committed benchmark ran on {committed_cores} cores, "
            f"this run on {fresh_cores} — applying the cross-host ratio "
            f"{args.cross_host_ratio} instead of {args.min_ratio}",
            file=sys.stderr,
        )
        ratio = args.cross_host_ratio

    floors = workload_eps(committed)
    if not floors:
        print(
            f"ERROR: {args.committed} has no events_per_second entries",
            file=sys.stderr,
        )
        return 2

    current = workload_eps(fresh)
    failed = []
    for name, committed_eps in sorted(floors.items()):
        if name not in current:
            if args.require_all:
                print(
                    f"{name}: MISSING from the fresh run (committed floor "
                    f"{committed_eps * ratio / 1e6:.2f}M events/s)",
                    file=sys.stderr,
                )
                failed.append(name)
            continue  # a subset run only gates what it ran
        floor = committed_eps * ratio
        eps = current[name]
        verdict = "ok" if eps >= floor else "BELOW FLOOR"
        print(
            f"{name}: {eps / 1e6:.2f}M events/s "
            f"(floor {floor / 1e6:.2f}M = {ratio:.0%} of committed "
            f"{committed_eps / 1e6:.2f}M) [{verdict}]"
        )
        if eps < floor:
            failed.append(name)
            print(
                f"{name}: FAIL — reached only {eps / committed_eps:.0%} of "
                f"the committed events/s, below the {ratio:.0%} floor; a "
                f"kernel slowdown or a pathological host. Re-run on a quiet "
                f"machine before suspecting the code.",
                file=sys.stderr,
            )
        # When the fresh report came from a --baseline comparison it also
        # carries the virtual-identity verdict; a floor pass must not
        # drown out a drifted result.
        outcome = fresh["workloads"][name]
        if outcome.get("virtual_identical") is False:
            failed.append(name)
            print(
                f"{name}: FAIL — virtual result drifted from the baseline "
                f"(see bench_wallclock --baseline output)",
                file=sys.stderr,
            )
    if failed:
        print(
            f"FAIL: events/s regression floor broken: "
            f"{', '.join(sorted(set(failed)))}",
            file=sys.stderr,
        )
        return 1
    print(f"PASS: {len(current)} workloads above the events/s floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
