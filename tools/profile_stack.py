"""cProfile the benchmark workloads through the full memory stack.

Runs the same workload drivers as ``tools/bench_wallclock.py`` under
``cProfile`` and prints the hottest functions, so kernel/page-cache work
can be aimed at the frames that actually dominate.  Two caveats when
reading the output:

- cProfile's tracing overhead inflates cheap, frequently-called frames
  by a large constant factor — compare *ratios* between runs, never the
  absolute seconds, and confirm any win with the benchmark itself.
- The profile says nothing about virtual time.  After optimizing, run
  ``tools/bench_wallclock.py --baseline`` to prove virtual identity.

``--layers`` switches from function-level profiling to *model-layer*
attribution: each workload runs once with tracing on, and the recorded
span tree is rolled up into a per-``(layer, op)`` table — span count,
inclusive virtual seconds, and self virtual seconds (inclusive minus
direct children), plus the per-layer critical-path shares from
:mod:`repro.obs.critical`.  All virtual columns are bit-deterministic
(they replay the simulation's own clock); only the wall column moves
between runs, and tracing inflates it.  ``--layers-out`` dumps the table
as JSON, and ``--diff old.json`` prints the per-row deltas against an
earlier dump — the before/after view a perf PR should ship.

Usage::

    PYTHONPATH=src python tools/profile_stack.py                # all workloads
    PYTHONPATH=src python tools/profile_stack.py \
        --workloads randwrite_table7 --sort tottime --limit 40
    PYTHONPATH=src python tools/profile_stack.py --layers \
        --layers-out layers.json
    PYTHONPATH=src python tools/profile_stack.py --layers \
        --diff layers.json
    make profile                                                # shortcut
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from pathlib import Path

# Allow running from a source checkout without installing.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_wallclock import WORKLOADS  # noqa: E402
from repro import obs  # noqa: E402
from repro.experiments.configs import SMALL, TINY  # noqa: E402
from repro.experiments.runner import track_testbeds  # noqa: E402
from repro.obs.critical import critical_path  # noqa: E402
from repro.obs.export import latency_json  # noqa: E402

LAYERS_SCHEMA = 1


def _layer_rollup(spans) -> dict[str, dict[str, float]]:
    """Per-``layer.op`` rollup of one tracer's span list.

    ``virtual_self`` subtracts only *direct* children, so the self
    columns of a parent chain never double-charge an interval; summing
    self over every row of one trace recovers the roots' inclusive time.
    """
    child_seconds: dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_seconds[span.parent_id] = (
                child_seconds.get(span.parent_id, 0.0) + span.duration
            )
    rollup: dict[str, dict[str, float]] = {}
    for span in spans:
        row = rollup.setdefault(
            f"{span.layer}.{span.name}",
            {"count": 0, "virtual_inclusive": 0.0, "virtual_self": 0.0},
        )
        row["count"] += 1
        row["virtual_inclusive"] += span.duration
        row["virtual_self"] += span.duration - child_seconds.get(
            span.span_id, 0.0
        )
    return rollup


def _merge_rollups(into: dict, other: dict) -> None:
    for key, row in other.items():
        dst = into.setdefault(
            key, {"count": 0, "virtual_inclusive": 0.0, "virtual_self": 0.0}
        )
        dst["count"] += row["count"]
        dst["virtual_inclusive"] += row["virtual_inclusive"]
        dst["virtual_self"] += row["virtual_self"]


def _layers_workload(name: str, scale) -> dict[str, object]:
    """Run one workload traced and roll its spans up per (layer, op)."""
    was_enabled = obs.enabled()
    try:
        obs.enable(True)
        start = time.perf_counter()
        with track_testbeds() as tracker:
            outcome = WORKLOADS[name](scale)
        wall = time.perf_counter() - start
    finally:
        obs.enable(was_enabled)
    rollup: dict[str, dict[str, float]] = {}
    critical: dict[str, float] = {}
    all_spans = []
    for testbed in tracker.testbeds:
        tracer = getattr(testbed.engine, "tracer", None)
        if tracer is None or not tracer.spans:
            continue
        all_spans.extend(tracer.spans)
        _merge_rollups(rollup, _layer_rollup(tracer.spans))
        try:
            for layer, seconds in critical_path(
                tracer.spans
            ).layer_seconds.items():
                critical[layer] = critical.get(layer, 0.0) + seconds
        except ValueError:
            pass  # no parentless span to anchor the walk
    return {
        "wall_seconds": wall,
        "virtual_seconds": outcome["virtual_seconds"],
        "verified": outcome.get("verified", False),
        "spans": len(all_spans),
        "layers": rollup,
        "critical": critical,
        "latency": latency_json(all_spans),
    }


def _print_layers(name: str, result: dict, *, limit: int) -> None:
    print(f"\n=== {name}: per-(layer, op) virtual attribution ===")
    print(
        f"wall {result['wall_seconds']:.2f}s (tracing-inflated)  "
        f"virtual {result['virtual_seconds']:.4f}s  "
        f"spans {result['spans']}"
    )
    rows = sorted(
        result["layers"].items(),
        key=lambda kv: (-kv[1]["virtual_self"], kv[0]),
    )
    print(f"{'layer.op':<32s} {'calls':>9s} {'v-incl (s)':>12s} {'v-self (s)':>12s}")
    for key, row in rows[:limit]:
        print(
            f"{key:<32s} {row['count']:>9d} "
            f"{row['virtual_inclusive']:>12.6f} {row['virtual_self']:>12.6f}"
        )
    if result["critical"]:
        print("critical-path layer shares:")
        total = sum(result["critical"].values()) or 1.0
        for layer, seconds in sorted(
            result["critical"].items(), key=lambda kv: (-kv[1], kv[0])
        ):
            print(f"  {layer:<16s} {seconds:12.6f}s  {100 * seconds / total:5.1f}%")


def _print_layers_diff(name: str, old: dict, new: dict, *, limit: int) -> None:
    print(f"\n=== {name}: layers diff (old -> new) ===")
    print(
        f"wall {old['wall_seconds']:.2f}s -> {new['wall_seconds']:.2f}s "
        f"(tracing-inflated)  virtual {old['virtual_seconds']} -> "
        f"{new['virtual_seconds']}"
        + ("" if old["virtual_seconds"] == new["virtual_seconds"]
           else "  [VIRTUAL DRIFT]")
    )
    keys = sorted(
        set(old["layers"]) | set(new["layers"]),
        key=lambda k: -(
            new["layers"].get(k, {}).get("virtual_self", 0.0)
            + old["layers"].get(k, {}).get("virtual_self", 0.0)
        ),
    )
    empty = {"count": 0, "virtual_inclusive": 0.0, "virtual_self": 0.0}
    print(
        f"{'layer.op':<32s} {'calls old':>10s} {'calls new':>10s} "
        f"{'v-self old':>12s} {'v-self new':>12s}"
    )
    shown = 0
    for key in keys:
        o = old["layers"].get(key, empty)
        n = new["layers"].get(key, empty)
        marker = "" if o == n else "  *"
        print(
            f"{key:<32s} {o['count']:>10d} {n['count']:>10d} "
            f"{o['virtual_self']:>12.6f} {n['virtual_self']:>12.6f}{marker}"
        )
        shown += 1
        if shown >= limit:
            break


def run_layers(args) -> int:
    scale = SMALL if args.scale == "small" else TINY
    names = args.workloads or list(WORKLOADS)
    old = None
    if args.diff:
        old = json.loads(Path(args.diff).read_text())
        if old.get("schema") != LAYERS_SCHEMA:
            print(
                f"unsupported layers schema {old.get('schema')!r} in "
                f"{args.diff}",
                file=sys.stderr,
            )
            return 2
    payload: dict[str, object] = {
        "schema": LAYERS_SCHEMA,
        "scale": args.scale,
        "workloads": {},
    }
    status = 0
    for name in names:
        result = _layers_workload(name, scale)
        payload["workloads"][name] = result
        if not result["verified"]:
            print(f"WARNING: {name} failed payload verification", file=sys.stderr)
            status = 1
        prior = old["workloads"].get(name) if old else None
        if prior is not None:
            _print_layers_diff(name, prior, result, limit=args.limit)
        else:
            _print_layers(name, result, limit=args.limit)
    if args.layers_out:
        Path(args.layers_out).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"\nwrote {args.layers_out}")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--scale", choices=("small", "tiny"), default="small",
        help="experiment scale (default: small, matching the benchmark)",
    )
    parser.add_argument(
        "--workloads", nargs="*", choices=sorted(WORKLOADS), default=None,
        help="subset of workloads to profile (default: all)",
    )
    parser.add_argument(
        "--sort", choices=("cumulative", "tottime", "ncalls"),
        default="cumulative", help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--limit", type=int, default=30,
        help="rows of the stats table to print per workload (default: 30)",
    )
    parser.add_argument(
        "--output", default=None,
        help="also dump raw pstats data to OUTPUT.<workload> for snakeviz etc.",
    )
    parser.add_argument(
        "--layers", action="store_true",
        help="per-(layer, op) virtual attribution from traced spans "
        "instead of cProfile function stats",
    )
    parser.add_argument(
        "--layers-out", default=None,
        help="with --layers: dump the attribution tables as JSON",
    )
    parser.add_argument(
        "--diff", default=None, metavar="OLD.json",
        help="with --layers: print per-row deltas against an earlier "
        "--layers-out dump",
    )
    args = parser.parse_args(argv)

    if args.diff and not args.layers:
        parser.error("--diff requires --layers")
    if args.layers_out and not args.layers:
        parser.error("--layers-out requires --layers")
    if args.layers:
        return run_layers(args)

    scale = SMALL if args.scale == "small" else TINY
    names = args.workloads or list(WORKLOADS)
    for name in names:
        bench = WORKLOADS[name]
        print(f"\n=== {name} (scale={args.scale}) ===")
        profiler = cProfile.Profile()
        profiler.enable()
        outcome = bench(scale)
        profiler.disable()
        if not outcome.get("verified", False):
            print(f"WARNING: {name} failed payload verification", file=sys.stderr)
        print(
            f"wall {outcome['wall_seconds']:.2f}s (inflated by tracing)  "
            f"virtual {outcome['virtual_seconds']:.4f}s  "
            f"events {outcome.get('events_processed', 'n/a')}"
        )
        stats = pstats.Stats(profiler)
        stats.sort_stats(args.sort).print_stats(args.limit)
        if args.output:
            stats.dump_stats(f"{args.output}.{name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
