"""cProfile the benchmark workloads through the full memory stack.

Runs the same workload drivers as ``tools/bench_wallclock.py`` under
``cProfile`` and prints the hottest functions, so kernel/page-cache work
can be aimed at the frames that actually dominate.  Two caveats when
reading the output:

- cProfile's tracing overhead inflates cheap, frequently-called frames
  by a large constant factor — compare *ratios* between runs, never the
  absolute seconds, and confirm any win with the benchmark itself.
- The profile says nothing about virtual time.  After optimizing, run
  ``tools/bench_wallclock.py --baseline`` to prove virtual identity.

Usage::

    PYTHONPATH=src python tools/profile_stack.py                # all workloads
    PYTHONPATH=src python tools/profile_stack.py \
        --workloads randwrite_table7 --sort tottime --limit 40
    make profile                                                # shortcut
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

# Allow running from a source checkout without installing.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from bench_wallclock import WORKLOADS  # noqa: E402
from repro.experiments.configs import SMALL, TINY  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--scale", choices=("small", "tiny"), default="small",
        help="experiment scale (default: small, matching the benchmark)",
    )
    parser.add_argument(
        "--workloads", nargs="*", choices=sorted(WORKLOADS), default=None,
        help="subset of workloads to profile (default: all)",
    )
    parser.add_argument(
        "--sort", choices=("cumulative", "tottime", "ncalls"),
        default="cumulative", help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--limit", type=int, default=30,
        help="rows of the stats table to print per workload (default: 30)",
    )
    parser.add_argument(
        "--output", default=None,
        help="also dump raw pstats data to OUTPUT.<workload> for snakeviz etc.",
    )
    args = parser.parse_args(argv)

    scale = SMALL if args.scale == "small" else TINY
    names = args.workloads or list(WORKLOADS)
    for name in names:
        bench = WORKLOADS[name]
        print(f"\n=== {name} (scale={args.scale}) ===")
        profiler = cProfile.Profile()
        profiler.enable()
        outcome = bench(scale)
        profiler.disable()
        if not outcome.get("verified", False):
            print(f"WARNING: {name} failed payload verification", file=sys.stderr)
        print(
            f"wall {outcome['wall_seconds']:.2f}s (inflated by tracing)  "
            f"virtual {outcome['virtual_seconds']:.4f}s  "
            f"events {outcome.get('events_processed', 'n/a')}"
        )
        stats = pstats.Stats(profiler)
        stats.sort_stats(args.sort).print_stats(args.limit)
        if args.output:
            stats.dump_stats(f"{args.output}.{name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
