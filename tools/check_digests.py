#!/usr/bin/env python3
"""Compare a matrix telemetry JSON against the committed digest set.

Usage::

    python -m repro.experiments --scale tiny --jobs 4 --json telemetry.json
    python tools/check_digests.py telemetry.json \
        benchmarks/EXPERIMENT_digests_tiny.json

The committed file pins every experiment's report digest at one scale.
CI runs this after a default-configuration matrix pass: the tiered cache
hierarchy, ARC policy, and adaptive prefetcher are all opt-in, so any
drift in these digests means a nominally disabled code path changed
observable behaviour.  Exits non-zero on drift, missing experiments, or
a scale mismatch.

Regenerate the committed file (after an intentional behaviour change)
with ``--update``::

    python tools/check_digests.py telemetry.json \
        benchmarks/EXPERIMENT_digests_tiny.json --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def telemetry_digests(telemetry: dict) -> dict[str, str]:
    """``{experiment: digest}`` from a ``--json`` telemetry payload."""
    return {
        outcome["name"]: outcome["digest"]
        for outcome in telemetry["results"]
        if outcome.get("digest")
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("telemetry", help="JSON from `repro.experiments --json`")
    parser.add_argument("committed", help="the pinned digest file to compare")
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the committed file from the telemetry instead",
    )
    args = parser.parse_args(argv)

    telemetry = json.loads(Path(args.telemetry).read_text())
    current = telemetry_digests(telemetry)
    if telemetry.get("failed"):
        print(f"FAIL: experiments failed: {telemetry['failed']}", file=sys.stderr)
        return 1

    if args.update:
        payload = {
            "schema": 1,
            "scale": telemetry["scale"],
            "digests": dict(sorted(current.items())),
        }
        Path(args.committed).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {len(current)} digests to {args.committed}")
        return 0

    committed = json.loads(Path(args.committed).read_text())
    if committed["scale"] != telemetry["scale"]:
        print(
            f"FAIL: scale mismatch: committed {committed['scale']!r} vs "
            f"run {telemetry['scale']!r}",
            file=sys.stderr,
        )
        return 1

    pinned: dict[str, str] = committed["digests"]
    failures = 0
    for name, digest in sorted(pinned.items()):
        got = current.get(name)
        if got is None:
            print(f"MISSING: {name} not in the telemetry run", file=sys.stderr)
            failures += 1
        elif got != digest:
            print(f"DRIFT in {name}: {digest} -> {got}", file=sys.stderr)
            failures += 1
    for name in sorted(set(current) - set(pinned)):
        print(
            f"NEW: {name} has no pinned digest — regenerate with --update",
            file=sys.stderr,
        )
        failures += 1

    if failures:
        print(f"FAIL: {failures} digest mismatches", file=sys.stderr)
        return 1
    print(f"OK: all {len(pinned)} experiment digests identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
