#!/usr/bin/env python
"""Wall-clock benchmark of the memory stack (mmap -> page cache -> chunk
cache -> store).

Runs three paper workloads that stress the full data path and records how
long each takes in *wall-clock* time alongside its *virtual* (simulated)
results.  The virtual outputs — completion times and byte-flow counters —
are the correctness anchor: any optimization of the stack must leave them
bit-identical while shrinking the wall-clock column.

Usage::

    PYTHONPATH=src python tools/bench_wallclock.py                  # current code
    PYTHONPATH=src python tools/bench_wallclock.py \
        --baseline benchmarks/BENCH_wallclock_seed.json             # vs seed
    PYTHONPATH=src python tools/bench_wallclock.py --jobs 4         # fan workloads
    PYTHONPATH=src python tools/bench_wallclock.py --matrix         # + experiment
                                                                    #   matrix passes

With ``--baseline`` the emitted JSON gains per-workload ``speedup`` and
``virtual_identical`` fields; the process exits non-zero if any virtual
quantity drifted from the baseline (timing model regressions must never
hide behind a wall-clock win).

``--matrix`` additionally times the full experiment matrix three ways —
serial, ``--matrix-jobs N`` parallel, warm result-cache — as
``matrix_serial`` / ``matrix_jobs{N}`` / ``matrix_warm_cache`` entries,
asserting all three produce bit-identical per-experiment digests.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import platform
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path

# Allow running from a source checkout without installing.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.configs import SMALL, TINY, ExperimentScale  # noqa: E402
from repro.experiments.parallel import (  # noqa: E402
    EXPERIMENTS,
    Orchestrator,
    mp_context,
)
from repro import obs  # noqa: E402
from repro.experiments.resultcache import ResultCache  # noqa: E402
from repro.experiments.runner import Testbed, track_testbeds  # noqa: E402
from repro.workloads.checkpoint_wl import (  # noqa: E402
    CheckpointWorkloadConfig,
    run_checkpoint_workload,
)
from repro.workloads.matmul import MatmulConfig, run_matmul  # noqa: E402
from repro.workloads.quicksort import SortConfig, run_quicksort  # noqa: E402
from repro.workloads.randwrite import RandWriteConfig, run_randwrite  # noqa: E402
from repro.workloads.stream import StreamConfig, StreamKernel, run_stream  # noqa: E402

#: Counter prefixes that pin the virtual byte flows of the stack.
COUNTER_PREFIXES = ("pagecache.", "fuse.", "store.client.")

DEFAULT_OUTPUT = "BENCH_wallclock.json"
SEED_BASELINE = "benchmarks/BENCH_wallclock_seed.json"


def host_metadata() -> dict[str, object]:
    """The hardware/runtime context every wall-clock number depends on.

    Recorded in the emitted JSON so a single-core container run is never
    compared blindly against a multi-core workstation baseline — the
    baseline comparison warns when the core counts differ.
    """
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def _counters(metrics) -> dict[str, float]:
    snap: dict[str, float] = {}
    for prefix in COUNTER_PREFIXES:
        snap.update(metrics.snapshot(prefix))
    return snap


def _finish(testbed: Testbed, start: float, virtual: float, verified: bool) -> dict[str, object]:
    """Assemble one workload outcome, including kernel throughput stats."""
    wall = time.perf_counter() - start
    events = getattr(testbed.engine, "events_processed", None)
    outcome: dict[str, object] = {
        "wall_seconds": wall,
        "virtual_seconds": virtual,
        "verified": verified,
        "counters": _counters(testbed.cluster.metrics),
    }
    if events is not None:
        outcome["events_processed"] = events
        outcome["events_per_second"] = events / wall if wall > 0 else 0.0
    return outcome


def bench_stream_triad(scale: ExperimentScale) -> dict[str, object]:
    """STREAM TRIAD with every array on the NVM store (Fig. 2 setup)."""
    stream_scale = scale.with_(
        dram_per_node=scale.stream_elements * 8 * 4, cpu_slowdown=1.0
    )
    testbed = Testbed(stream_scale)
    job = testbed.job(8, 1, 1)
    start = time.perf_counter()
    result = run_stream(
        job,
        StreamConfig(
            elements=scale.stream_elements,
            kernel=StreamKernel.TRIAD,
            iterations=scale.stream_iterations,
            placement={"A": "nvm", "B": "nvm", "C": "nvm"},
            block_bytes=scale.stream_block,
        ),
    )
    return _finish(testbed, start, result.elapsed, result.verified)


def bench_mm_fig3(scale: ExperimentScale) -> dict[str, object]:
    """Fig. 3's L-SSD(8:16:16) matrix multiplication over shared mmap B."""
    testbed = Testbed(scale)
    job = testbed.job(8, 16, 16)
    start = time.perf_counter()
    result = run_matmul(
        job,
        testbed.pfs,
        MatmulConfig(
            n=scale.matrix_n,
            tile=scale.matrix_tile,
            b_placement="nvm",
            shared_mmap=True,
            access_order="row",
        ),
    )
    return _finish(testbed, start, result.total, result.verified)


def bench_randwrite(scale: ExperimentScale) -> dict[str, object]:
    """Table VII's random-byte-write synthetic (optimized mode)."""
    testbed = Testbed(scale)
    job = testbed.job(1, 1, 1, dirty_page_writeback=True)
    start = time.perf_counter()
    result = run_randwrite(
        job,
        RandWriteConfig(
            region_bytes=scale.randwrite_region,
            num_writes=scale.randwrite_count,
        ),
    )
    return _finish(testbed, start, result.elapsed, result.verified)


def bench_quicksort_table6(scale: ExperimentScale) -> dict[str, object]:
    """Table VI's one-pass hybrid sort on L-SSD(8:16:16).

    Sorting interleaves short compute bursts with fine-grained NVM and
    PFS traffic across 128 ranks, so it stresses the event kernel's
    grant/handoff chains far more than the streaming workloads do.
    """
    testbed = Testbed(scale.with_(cpu_slowdown=1.0))
    job = testbed.job(8, 16, 16)
    start = time.perf_counter()
    result = run_quicksort(
        job,
        testbed.pfs,
        SortConfig(
            total_elements=scale.sort_elements,
            mode="hybrid",
            dram_elements_per_rank=scale.sort_dram_per_rank,
        ),
    )
    return _finish(testbed, start, result.elapsed, result.verified)


def bench_checkpoint(scale: ExperimentScale) -> dict[str, object]:
    """§III-E checkpoint loop: linked chunks, COW, bit-exact restores."""
    testbed = Testbed(scale)
    job = testbed.job(1, 1, 1)
    start = time.perf_counter()
    result = run_checkpoint_workload(
        job,
        CheckpointWorkloadConfig(
            variable_bytes=scale.checkpoint_variable,
            dram_state_bytes=scale.checkpoint_dram_state,
            timesteps=8,
        ),
    )
    return _finish(testbed, start, result.elapsed, result.restores_verified)


WORKLOADS = {
    "stream_triad_nvm": bench_stream_triad,
    "mm_fig3_lssd_8_16_16": bench_mm_fig3,
    "randwrite_table7": bench_randwrite,
    "quicksort_table6_hybrid": bench_quicksort_table6,
    "checkpoint_linked": bench_checkpoint,
}


def bench_cache_tiering(scale: ExperimentScale) -> dict[str, object]:
    """Seed LRU vs the full cache hierarchy on the randwrite leg.

    Runs Table VII's random-write synthetic twice on the cache_tiering
    experiment's remote-benefactor testbed — once with the seed cache
    (inline LRU, no tier, no prefetch), once with ``arc`` + the local
    SSD tier + the adaptive prefetcher — and records walls, virtual
    times, and events processed for both.  The entry lands in the JSON
    as ``cache_tiering``; it is not a baseline-gated workload (the two
    legs are *supposed* to differ in virtual time — that difference is
    the point), so it carries its own improvement verdict instead.
    """

    def leg(overrides: dict) -> dict[str, object]:
        testbed = Testbed(scale)
        job = testbed.job(1, 1, 2, remote_ssd=True, **overrides)
        start = time.perf_counter()
        result = run_randwrite(
            job,
            RandWriteConfig(
                region_bytes=scale.randwrite_region,
                num_writes=scale.randwrite_count,
            ),
        )
        outcome = _finish(testbed, start, result.elapsed, result.verified)
        chunk, _page = job.cache_stats()
        outcome["demand_hit_rate"] = chunk.hit_rate
        return outcome

    lru = leg({})
    full = leg(
        {
            "cache_policy": "arc",
            "local_cache_bytes": scale.local_cache,
            "prefetch": "adaptive",
        }
    )
    return {
        "workload": "randwrite_table7_remote",
        "lru": lru,
        "arc_l2_pf": full,
        "virtual_speedup": (
            lru["virtual_seconds"] / full["virtual_seconds"]
            if full["virtual_seconds"]
            else 0.0
        ),
        "improved": (
            full["verified"]
            and lru["verified"]
            and full["virtual_seconds"] < lru["virtual_seconds"]
            and full["demand_hit_rate"] > lru["demand_hit_rate"]
        ),
    }


def bench_shards_scaling(
    scale: ExperimentScale, worker_counts: tuple[int, ...] = (1, 2, 4)
) -> dict[str, object]:
    """The sharded single-run scenario at several worker counts.

    Runs the ``scaleout`` checkpoint-ingest simulation with workers in
    ``worker_counts`` and records per-count walls, windows, and barrier
    telemetry as a ``shards_scaling`` entry.  The worker count is an
    execution knob only, so the entry also carries a ``digest_invariant``
    verdict: every run's report digest must be bit-identical.  On a
    single-core host the multi-worker walls are expected to be *slower*
    (IPC per window with no parallel hardware underneath) — the entry
    records ``cpu_count`` so the scaling curve is read in context.
    """
    from repro.experiments.scaleout import _build_report, spec_for
    from repro.parallel.shards import run_sharded

    spec = spec_for(scale)
    entry: dict[str, object] = {
        "experiment": "scaleout",
        "num_shards": spec.num_shards,
        "nodes_per_shard": spec.nodes_per_shard,
        "lookahead_seconds": spec.lookahead,
        "cpu_count": os.cpu_count(),
        "workers": {},
    }
    digests: list[str] = []
    base_wall: float | None = None
    for workers in worker_counts:
        result = run_sharded(spec, workers=workers)
        report = _build_report(spec, result)
        digests.append(report.digest())
        if base_wall is None:
            base_wall = result.wall_seconds
        per = {
            "wall_seconds": result.wall_seconds,
            "windows": result.windows,
            "events": result.events,
            "events_per_second": (
                result.events / result.wall_seconds if result.wall_seconds else 0.0
            ),
            "barrier_wait_seconds": result.barrier_wait_seconds,
            "barrier_share": result.barrier_share,
            "speedup_vs_workers1": (
                base_wall / result.wall_seconds if result.wall_seconds else 0.0
            ),
            "digest": report.digest(),
            "verified": report.verified,
        }
        entry["workers"][str(workers)] = per
        print(
            f"  shards workers={workers}: {result.wall_seconds:.2f}s wall, "
            f"{result.windows} windows, "
            f"{100 * result.barrier_share:.1f}% barrier, "
            f"{per['speedup_vs_workers1']:.2f}x vs workers=1, "
            f"digest {report.digest()[:16]}",
            flush=True,
        )
    entry["digest_invariant"] = len(set(digests)) == 1
    entry["verified"] = entry["digest_invariant"] and all(
        per["verified"] for per in entry["workers"].values()
    )
    return entry


def _bench_one(
    name: str, scale: ExperimentScale, repeat: int
) -> tuple[str, dict[str, object], list[float]]:
    """Worker body: one workload, best of ``repeat`` attempts."""
    driver = WORKLOADS[name]
    best: dict[str, object] | None = None
    walls: list[float] = []
    for _ in range(repeat):
        outcome = driver(scale)
        walls.append(outcome["wall_seconds"])
        if best is None or outcome["wall_seconds"] < best["wall_seconds"]:
            best = outcome
    assert best is not None
    return name, best, walls


def run_suite(
    scale: ExperimentScale, names: list[str], repeat: int, jobs: int = 1
) -> dict[str, dict[str, object]]:
    """Run each workload ``repeat`` times; keep the fastest wall clock.

    With ``jobs > 1`` the *workloads* fan across processes; each
    workload's wall is still measured inside its own run (virtual results
    and per-workload walls are untouched by the fan-out), so the geomean
    stays a geomean of per-run walls.
    """
    results: dict[str, dict[str, object]] = {}
    if jobs <= 1 or len(names) <= 1:
        for name in names:
            driver = WORKLOADS[name]
            best: dict[str, object] | None = None
            for i in range(repeat):
                outcome = driver(scale)
                print(
                    f"  {name} [{i + 1}/{repeat}]: "
                    f"{outcome['wall_seconds']:.2f}s wall, "
                    f"{outcome['virtual_seconds']:.4f}s virtual",
                    flush=True,
                )
                if best is None or outcome["wall_seconds"] < best["wall_seconds"]:
                    best = outcome
            assert best is not None
            results[name] = best
        return results

    with ProcessPoolExecutor(
        max_workers=min(jobs, len(names)), mp_context=mp_context()
    ) as pool:
        futures = {
            pool.submit(_bench_one, name, scale, repeat): name for name in names
        }
        for future in as_completed(futures):
            name, best, walls = future.result()
            print(
                f"  {name} [best of {len(walls)}]: "
                f"{best['wall_seconds']:.2f}s wall, "
                f"{best['virtual_seconds']:.4f}s virtual",
                flush=True,
            )
            results[name] = best
    return {name: results[name] for name in names}


def bench_tracing_overhead(scale: ExperimentScale) -> dict[str, object]:
    """Tracing-on vs tracing-off cost of one full-stack workload.

    Runs ``checkpoint_linked`` with tracing disabled, then enabled, in one
    process.  The entry lands in the JSON as ``tracing``; the regular
    workload walls (measured with tracing disabled, as always) compared to
    the seed baseline are what bound the *disabled*-mode overhead of the
    instrumentation itself.
    """
    name = "checkpoint_linked"
    was_enabled = obs.enabled()
    try:
        obs.enable(False)
        off = WORKLOADS[name](scale)
        obs.enable(True)
        with track_testbeds() as tracker:
            on = WORKLOADS[name](scale)
    finally:
        obs.enable(was_enabled)
    spans = sum(
        len(tb.engine.tracer.spans)
        for tb in tracker.testbeds
        if tb.engine.tracer is not None
    )
    off_wall = off["wall_seconds"]
    on_wall = on["wall_seconds"]
    return {
        "workload": name,
        "disabled_wall_seconds": off_wall,
        "enabled_wall_seconds": on_wall,
        "enabled_overhead": on_wall / off_wall - 1.0 if off_wall > 0 else 0.0,
        "spans": spans,
        "virtual_identical": (
            off["virtual_seconds"] == on["virtual_seconds"]
            and off["counters"] == on["counters"]
        ),
    }


def _matrix_digest(digests: dict[str, str | None]) -> str:
    """One sha256 summarizing every per-experiment digest of a matrix pass."""
    blob = json.dumps(digests, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def bench_matrix(scale: ExperimentScale, jobs: int) -> dict[str, dict[str, object]]:
    """Three passes over the full experiment matrix: serial, ``--jobs N``,
    and warm-cache; returns ``matrix_serial`` / ``matrix_jobs{N}`` /
    ``matrix_warm_cache`` entries with cross-pass digest identity."""
    names = list(EXPERIMENTS)
    entries: dict[str, dict[str, object]] = {}
    with tempfile.TemporaryDirectory(prefix="repro-matrix-cache-") as tmp:
        cache = ResultCache(tmp)

        print(f"  matrix serial: {len(names)} experiments ...", flush=True)
        serial = Orchestrator(jobs=1, cache=cache).run(names, scale)
        serial_digest = _matrix_digest(serial.digests)
        entries["matrix_serial"] = {
            "wall_seconds": serial.wall_seconds,
            "jobs": 1,
            "experiments": len(names),
            "digest": serial_digest,
            "verified": not serial.failed,
        }
        print(f"  matrix serial: {serial.wall_seconds:.1f}s wall", flush=True)

        print(f"  matrix --jobs {jobs}: cold, no cache ...", flush=True)
        par = Orchestrator(jobs=jobs, cache=None).run(names, scale)
        entries[f"matrix_jobs{jobs}"] = {
            "wall_seconds": par.wall_seconds,
            "jobs": jobs,
            "experiments": len(names),
            "digest": _matrix_digest(par.digests),
            "digest_identical_to_serial": _matrix_digest(par.digests) == serial_digest,
            "speedup_vs_serial": serial.wall_seconds / par.wall_seconds,
            "verified": not par.failed,
            "cores": os.cpu_count(),
        }
        print(
            f"  matrix --jobs {jobs}: {par.wall_seconds:.1f}s wall "
            f"({serial.wall_seconds / par.wall_seconds:.2f}x vs serial)",
            flush=True,
        )

        before = Testbed.constructions
        warm = Orchestrator(jobs=jobs, cache=cache).run(names, scale)
        entries["matrix_warm_cache"] = {
            "wall_seconds": warm.wall_seconds,
            "jobs": jobs,
            "experiments": len(names),
            "cache_hits": warm.cache_hits,
            "testbed_constructions": Testbed.constructions - before,
            "digest": _matrix_digest(warm.digests),
            "digest_identical_to_serial": _matrix_digest(warm.digests) == serial_digest,
            "verified": not warm.failed,
        }
        print(
            f"  matrix warm cache: {warm.wall_seconds:.2f}s wall, "
            f"{warm.cache_hits}/{len(names)} hits, "
            f"{Testbed.constructions - before} testbeds built",
            flush=True,
        )
    return entries


def compare_matrix_to_baseline(
    entries: dict[str, dict[str, object]], baseline: dict[str, object]
) -> bool:
    """Matrix digests present in both runs must match bit-for-bit."""
    identical = True
    for name, entry in entries.items():
        base = baseline.get(name)
        if not isinstance(base, dict) or "digest" not in base:
            continue
        if entry["digest"] != base["digest"]:
            identical = False
            print(
                f"MATRIX DIGEST DRIFT in {name}: "
                f"{base['digest']} -> {entry['digest']}",
                file=sys.stderr,
            )
    return identical


def compare_to_baseline(
    results: dict[str, dict[str, object]], baseline: dict[str, object]
) -> bool:
    """Annotate ``results`` with speedups; return virtual-identity verdict."""
    identical = True
    base_workloads = baseline.get("workloads", {})
    for name, outcome in results.items():
        base = base_workloads.get(name)
        if base is None:
            continue
        outcome["baseline_wall_seconds"] = base["wall_seconds"]
        outcome["speedup"] = base["wall_seconds"] / outcome["wall_seconds"]
        same = (
            outcome["virtual_seconds"] == base["virtual_seconds"]
            and outcome["counters"] == base["counters"]
        )
        outcome["virtual_identical"] = same
        if not same:
            identical = False
            drift = sorted(
                k
                for k in set(outcome["counters"]) | set(base["counters"])
                if outcome["counters"].get(k) != base["counters"].get(k)
            )
            print(
                f"VIRTUAL DRIFT in {name}: "
                f"virtual {base['virtual_seconds']} -> {outcome['virtual_seconds']}; "
                f"counters changed: {drift or 'none'}",
                file=sys.stderr,
            )
    return identical


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--scale", choices=["small", "tiny"], default="small",
        help="experiment scale (default: small, the calibrated one)",
    )
    parser.add_argument(
        "--workloads", nargs="*", choices=list(WORKLOADS), default=list(WORKLOADS),
        help="subset of workloads to run",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="runs per workload; the fastest wall clock is kept",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan workloads across N processes (per-workload walls and "
             "virtual results are measured per run, unaffected by fan-out)",
    )
    parser.add_argument(
        "--matrix", action="store_true",
        help="also benchmark the full experiment matrix serial vs "
             "--matrix-jobs vs warm-cache (matrix_* entries in the JSON)",
    )
    parser.add_argument(
        "--matrix-jobs", type=int, default=4, metavar="N",
        help="worker count for the parallel matrix pass (default: 4)",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"baseline JSON to compare against (e.g. {SEED_BASELINE})",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="trace the benchmarked workloads on the virtual clock "
             "(forces --jobs 1; prints critical-path + latency tables)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="OUT.json",
        help="with --trace: write a Chrome trace_event JSON of every "
             "benchmarked run",
    )
    parser.add_argument(
        "--trace-bench", action="store_true",
        help="measure tracing-enabled overhead on one workload and record "
             "it as a 'tracing' entry in the JSON",
    )
    parser.add_argument(
        "--cache-bench", action="store_true",
        help="benchmark the seed LRU vs the full cache hierarchy on the "
             "randwrite leg and record it as a 'cache_tiering' entry in "
             "the JSON",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="worker processes for sharded single-run experiments "
             "(sets $REPRO_SHARDS for the matrix passes; execution-only, "
             "digests are invariant)",
    )
    parser.add_argument(
        "--shards-bench", action="store_true",
        help="run the scaleout scenario at workers {1,2,4}, record the "
             "scaling curve as a 'shards_scaling' entry, and fail unless "
             "all worker counts digest bit-identically",
    )
    args = parser.parse_args(argv)

    if args.shards is not None:
        if args.shards < 1:
            parser.error("--shards must be >= 1")
        os.environ["REPRO_SHARDS"] = str(args.shards)

    if args.trace_out and not args.trace:
        parser.error("--trace-out requires --trace")
    if args.trace:
        obs.enable(True)
        args.jobs = 1  # spans live on in-process tracers

    scale = SMALL if args.scale == "small" else TINY
    print(f"benchmarking {len(args.workloads)} workloads at scale={scale.name}")
    if args.trace:
        with track_testbeds() as tracker:
            results = run_suite(
                scale, args.workloads, max(1, args.repeat), args.jobs
            )
        for i, testbed in enumerate(tracker.testbeds):
            tracer = testbed.engine.tracer
            if tracer is not None and tracer.spans:
                obs.collect(f"bench/testbed{i}", tracer)
    else:
        results = run_suite(scale, args.workloads, max(1, args.repeat), args.jobs)

    matrix_entries: dict[str, dict[str, object]] = {}
    if args.matrix:
        print(f"benchmarking experiment matrix at scale={scale.name}")
        matrix_entries = bench_matrix(scale, args.matrix_jobs)

    tracing_entry: dict[str, object] | None = None
    if args.trace_bench:
        print(f"benchmarking tracing overhead at scale={scale.name}")
        tracing_entry = bench_tracing_overhead(scale)
        print(
            f"  tracing: {tracing_entry['disabled_wall_seconds']:.2f}s off, "
            f"{tracing_entry['enabled_wall_seconds']:.2f}s on "
            f"({100 * tracing_entry['enabled_overhead']:+.1f}%), "
            f"{tracing_entry['spans']} spans, virtual "
            f"{'identical' if tracing_entry['virtual_identical'] else 'DRIFTED'}",
            flush=True,
        )
        if not tracing_entry["virtual_identical"]:
            print("FAIL: tracing changed virtual results", file=sys.stderr)
            return 1

    cache_entry: dict[str, object] | None = None
    if args.cache_bench:
        print(f"benchmarking cache hierarchy (randwrite) at scale={scale.name}")
        cache_entry = bench_cache_tiering(scale)
        lru, full = cache_entry["lru"], cache_entry["arc_l2_pf"]
        print(
            f"  cache_tiering: lru {lru['wall_seconds']:.2f}s wall / "
            f"{lru['virtual_seconds']:.4f}s virtual "
            f"({lru['events_processed']} events), arc+l2+pf "
            f"{full['wall_seconds']:.2f}s wall / "
            f"{full['virtual_seconds']:.4f}s virtual "
            f"({full['events_processed']} events), "
            f"{cache_entry['virtual_speedup']:.2f}x virtual, "
            f"{'improved' if cache_entry['improved'] else 'NOT IMPROVED'}",
            flush=True,
        )
        if not cache_entry["improved"]:
            print(
                "FAIL: the full cache hierarchy did not improve randwrite",
                file=sys.stderr,
            )
            return 1

    shards_entry: dict[str, object] | None = None
    if args.shards_bench:
        print(f"benchmarking sharded scaleout run at scale={scale.name}")
        shards_entry = bench_shards_scaling(scale)
        if not shards_entry["digest_invariant"]:
            print(
                "FAIL: scaleout digests diverged across worker counts",
                file=sys.stderr,
            )
            return 1

    host = host_metadata()
    identical = True
    baseline = None
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        identical = compare_to_baseline(results, baseline)
        base_host = baseline.get("host")
        if (
            isinstance(base_host, dict)
            and base_host.get("cpu_count") not in (None, host["cpu_count"])
        ):
            print(
                f"WARNING: baseline was recorded on "
                f"{base_host['cpu_count']} cores, this host has "
                f"{host['cpu_count']} — wall-clock speedups are not "
                f"directly comparable",
                file=sys.stderr,
            )

    report = {
        "schema": 1,
        "scale": scale.name,
        "host": host,
        "workloads": results,
        **matrix_entries,
    }
    if shards_entry is not None:
        report["shards_scaling"] = shards_entry
    if tracing_entry is not None:
        report["tracing"] = tracing_entry
    if cache_entry is not None:
        report["cache_tiering"] = cache_entry
    if matrix_entries:
        if baseline is not None:
            identical &= compare_matrix_to_baseline(matrix_entries, baseline)
        # Serial/parallel/warm-cache passes must agree bit-for-bit.
        if not all(
            e.get("digest_identical_to_serial", True)
            for e in matrix_entries.values()
        ):
            print(
                "FAIL: matrix digests diverged between serial, parallel, "
                "and warm-cache passes",
                file=sys.stderr,
            )
            identical = False
    speedups = [o["speedup"] for o in results.values() if "speedup" in o]
    if speedups:
        report["geomean_speedup"] = math.exp(
            sum(math.log(s) for s in speedups) / len(speedups)
        )
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for name, outcome in results.items():
        line = f"{name}: {outcome['wall_seconds']:.2f}s wall"
        if "events_per_second" in outcome:
            line += (
                f", {outcome['events_processed']} events "
                f"({outcome['events_per_second'] / 1e6:.2f}M/s)"
            )
        if "speedup" in outcome:
            line += (
                f" ({outcome['speedup']:.2f}x vs baseline, virtual "
                f"{'identical' if outcome['virtual_identical'] else 'DRIFTED'})"
            )
        print(line)
    if "geomean_speedup" in report:
        print(f"geomean speedup vs baseline: {report['geomean_speedup']:.3f}x")
    for name, entry in matrix_entries.items():
        line = f"{name}: {entry['wall_seconds']:.2f}s wall (--jobs {entry['jobs']})"
        if "speedup_vs_serial" in entry:
            line += f", {entry['speedup_vs_serial']:.2f}x vs serial"
        if "cache_hits" in entry:
            line += (
                f", {entry['cache_hits']} cache hits, "
                f"{entry['testbed_constructions']} testbeds built"
            )
        print(line)
    if args.trace:
        for label, tracer in obs.collected():
            print()
            for line in obs.report_lines(label, tracer):
                print(line)
        if args.trace_out:
            from repro.obs.export import write_chrome_trace

            events = write_chrome_trace(args.trace_out, obs.collected())
            print(f"wrote {events} trace events to {args.trace_out}")
    print(f"wrote {args.output}")
    if not identical:
        print("FAIL: virtual results drifted from the baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
