#!/usr/bin/env python
"""Wall-clock benchmark of the memory stack (mmap -> page cache -> chunk
cache -> store).

Runs three paper workloads that stress the full data path and records how
long each takes in *wall-clock* time alongside its *virtual* (simulated)
results.  The virtual outputs — completion times and byte-flow counters —
are the correctness anchor: any optimization of the stack must leave them
bit-identical while shrinking the wall-clock column.

Usage::

    PYTHONPATH=src python tools/bench_wallclock.py                  # current code
    PYTHONPATH=src python tools/bench_wallclock.py \
        --baseline benchmarks/BENCH_wallclock_seed.json             # vs seed

With ``--baseline`` the emitted JSON gains per-workload ``speedup`` and
``virtual_identical`` fields; the process exits non-zero if any virtual
quantity drifted from the baseline (timing model regressions must never
hide behind a wall-clock win).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Allow running from a source checkout without installing.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.configs import SMALL, TINY, ExperimentScale  # noqa: E402
from repro.experiments.runner import Testbed  # noqa: E402
from repro.workloads.matmul import MatmulConfig, run_matmul  # noqa: E402
from repro.workloads.randwrite import RandWriteConfig, run_randwrite  # noqa: E402
from repro.workloads.stream import StreamConfig, StreamKernel, run_stream  # noqa: E402

#: Counter prefixes that pin the virtual byte flows of the stack.
COUNTER_PREFIXES = ("pagecache.", "fuse.", "store.client.")

DEFAULT_OUTPUT = "BENCH_wallclock.json"
SEED_BASELINE = "benchmarks/BENCH_wallclock_seed.json"


def _counters(metrics) -> dict[str, float]:
    snap: dict[str, float] = {}
    for prefix in COUNTER_PREFIXES:
        snap.update(metrics.snapshot(prefix))
    return snap


def bench_stream_triad(scale: ExperimentScale) -> dict[str, object]:
    """STREAM TRIAD with every array on the NVM store (Fig. 2 setup)."""
    stream_scale = scale.with_(
        dram_per_node=scale.stream_elements * 8 * 4, cpu_slowdown=1.0
    )
    testbed = Testbed(stream_scale)
    job = testbed.job(8, 1, 1)
    start = time.perf_counter()
    result = run_stream(
        job,
        StreamConfig(
            elements=scale.stream_elements,
            kernel=StreamKernel.TRIAD,
            iterations=scale.stream_iterations,
            placement={"A": "nvm", "B": "nvm", "C": "nvm"},
            block_bytes=scale.stream_block,
        ),
    )
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "virtual_seconds": result.elapsed,
        "verified": result.verified,
        "counters": _counters(testbed.cluster.metrics),
    }


def bench_mm_fig3(scale: ExperimentScale) -> dict[str, object]:
    """Fig. 3's L-SSD(8:16:16) matrix multiplication over shared mmap B."""
    testbed = Testbed(scale)
    job = testbed.job(8, 16, 16)
    start = time.perf_counter()
    result = run_matmul(
        job,
        testbed.pfs,
        MatmulConfig(
            n=scale.matrix_n,
            tile=scale.matrix_tile,
            b_placement="nvm",
            shared_mmap=True,
            access_order="row",
        ),
    )
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "virtual_seconds": result.total,
        "verified": result.verified,
        "counters": _counters(testbed.cluster.metrics),
    }


def bench_randwrite(scale: ExperimentScale) -> dict[str, object]:
    """Table VII's random-byte-write synthetic (optimized mode)."""
    testbed = Testbed(scale)
    job = testbed.job(1, 1, 1, dirty_page_writeback=True)
    start = time.perf_counter()
    result = run_randwrite(
        job,
        RandWriteConfig(
            region_bytes=scale.randwrite_region,
            num_writes=scale.randwrite_count,
        ),
    )
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "virtual_seconds": result.elapsed,
        "verified": result.verified,
        "counters": _counters(testbed.cluster.metrics),
    }


WORKLOADS = {
    "stream_triad_nvm": bench_stream_triad,
    "mm_fig3_lssd_8_16_16": bench_mm_fig3,
    "randwrite_table7": bench_randwrite,
}


def run_suite(
    scale: ExperimentScale, names: list[str], repeat: int
) -> dict[str, dict[str, object]]:
    """Run each workload ``repeat`` times; keep the fastest wall clock."""
    results: dict[str, dict[str, object]] = {}
    for name in names:
        driver = WORKLOADS[name]
        best: dict[str, object] | None = None
        for i in range(repeat):
            outcome = driver(scale)
            print(
                f"  {name} [{i + 1}/{repeat}]: "
                f"{outcome['wall_seconds']:.2f}s wall, "
                f"{outcome['virtual_seconds']:.4f}s virtual",
                flush=True,
            )
            if best is None or outcome["wall_seconds"] < best["wall_seconds"]:
                best = outcome
        assert best is not None
        results[name] = best
    return results


def compare_to_baseline(
    results: dict[str, dict[str, object]], baseline: dict[str, object]
) -> bool:
    """Annotate ``results`` with speedups; return virtual-identity verdict."""
    identical = True
    base_workloads = baseline.get("workloads", {})
    for name, outcome in results.items():
        base = base_workloads.get(name)
        if base is None:
            continue
        outcome["baseline_wall_seconds"] = base["wall_seconds"]
        outcome["speedup"] = base["wall_seconds"] / outcome["wall_seconds"]
        same = (
            outcome["virtual_seconds"] == base["virtual_seconds"]
            and outcome["counters"] == base["counters"]
        )
        outcome["virtual_identical"] = same
        if not same:
            identical = False
            drift = sorted(
                k
                for k in set(outcome["counters"]) | set(base["counters"])
                if outcome["counters"].get(k) != base["counters"].get(k)
            )
            print(
                f"VIRTUAL DRIFT in {name}: "
                f"virtual {base['virtual_seconds']} -> {outcome['virtual_seconds']}; "
                f"counters changed: {drift or 'none'}",
                file=sys.stderr,
            )
    return identical


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--scale", choices=["small", "tiny"], default="small",
        help="experiment scale (default: small, the calibrated one)",
    )
    parser.add_argument(
        "--workloads", nargs="*", choices=list(WORKLOADS), default=list(WORKLOADS),
        help="subset of workloads to run",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="runs per workload; the fastest wall clock is kept",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"baseline JSON to compare against (e.g. {SEED_BASELINE})",
    )
    args = parser.parse_args(argv)

    scale = SMALL if args.scale == "small" else TINY
    print(f"benchmarking {len(args.workloads)} workloads at scale={scale.name}")
    results = run_suite(scale, args.workloads, max(1, args.repeat))

    identical = True
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        identical = compare_to_baseline(results, baseline)

    report = {
        "schema": 1,
        "scale": scale.name,
        "workloads": results,
    }
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for name, outcome in results.items():
        line = f"{name}: {outcome['wall_seconds']:.2f}s wall"
        if "speedup" in outcome:
            line += (
                f" ({outcome['speedup']:.2f}x vs baseline, virtual "
                f"{'identical' if outcome['virtual_identical'] else 'DRIFTED'})"
            )
        print(line)
    print(f"wrote {args.output}")
    if not identical:
        print("FAIL: virtual results drifted from the baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
