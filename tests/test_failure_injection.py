"""Failure injection under load: errors must surface, never hang."""

import numpy as np
import pytest

from repro.core import NVMalloc
from repro.errors import BenefactorDownError, SimulationError
from repro.store import CHUNK_SIZE
from repro.util.units import KiB
from tests.conftest import run


class TestCrashUnderLoad:
    def test_crash_mid_stream_raises_promptly(self, engine, small_cluster, store):
        """A benefactor dying while ranks stream through it produces
        BenefactorDownError in the affected ranks — and the simulation
        terminates (no deadlock)."""
        lib = NVMalloc(
            small_cluster.node(1), store,
            fuse_cache_bytes=2 * CHUNK_SIZE, page_cache_bytes=64 * KiB,
        )
        outcomes = []

        def worker(tag):
            arr = yield from lib.ssdmalloc_array(
                (64 * 1024,), np.float64, owner=f"w{tag}"
            )
            try:
                for _ in range(3):
                    for s in range(0, 64 * 1024, 8192):
                        yield from arr.write_slice(
                            s, np.full(8192, float(tag))
                        )
                    for s in range(0, 64 * 1024, 8192):
                        yield from arr.read_slice(s, s + 8192)
                outcomes.append((tag, "completed"))
            except BenefactorDownError:
                outcomes.append((tag, "failed-cleanly"))
            return True

        def killer():
            yield engine.timeout(0.005)
            for benefactor in store.benefactors()[:2]:
                benefactor.crash()

        procs = [engine.process(worker(t)) for t in range(4)]
        engine.process(killer())
        results = engine.run_all(procs)
        assert all(results)
        assert len(outcomes) == 4
        # With half the benefactors dead mid-run, at least one rank must
        # have observed the failure.
        assert any(status == "failed-cleanly" for _, status in outcomes)

    def test_flush_of_dirty_data_to_dead_benefactor(self, engine, small_cluster, store):
        """Dirty cache data whose benefactor died surfaces the error at
        flush time instead of being dropped silently."""
        lib = NVMalloc(
            small_cluster.node(2), store,
            fuse_cache_bytes=2 * CHUNK_SIZE, page_cache_bytes=64 * KiB,
        )

        def scenario():
            var = yield from lib.ssdmalloc(2 * CHUNK_SIZE, owner="doomed")
            yield from var.write(0, b"dirty data")
            chunk_id, owner = store.resolve_chunk(var.backing_path, 0)
            owner.crash()
            with pytest.raises(BenefactorDownError):
                yield from var.region.msync()
                yield from lib.mount.cache.flush_path(var.backing_path)
            return True

        assert run(engine, scenario())

    def test_monitoring_plus_new_traffic(self, engine, small_cluster, store):
        """After the monitor marks a benefactor offline, fresh allocations
        proceed on the survivors."""
        lib = NVMalloc(
            small_cluster.node(3), store,
            fuse_cache_bytes=2 * CHUNK_SIZE, page_cache_bytes=64 * KiB,
        )

        def scenario():
            store.benefactors()[0].crash()
            yield from store.monitor(0.001, rounds=1)
            var = yield from lib.ssdmalloc(4 * CHUNK_SIZE, owner="survivor")
            yield from var.write(0, b"still works")
            got = yield from var.read(0, 11)
            yield from lib.ssdfree(var)
            return got

        assert run(engine, scenario()) == b"still works"
        # Nothing landed on the dead benefactor.
        assert store.benefactors()[0].reserved == 0
