"""The slo_traffic experiment: verified outcomes, digest determinism.

Marked ``slo`` (excluded from the default tier-1 run, like ``faults``):
each of the nine legs runs a full client swarm against a fresh testbed,
so this file costs noticeably more wall time than the unit tests.  CI
runs it in a dedicated job alongside a two-process PYTHONHASHSEED digest
comparison.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import TINY, check_identity, slo_traffic

pytestmark = pytest.mark.slo

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def report():
    return slo_traffic(TINY)


def leg(report, label):
    for row in report.rows:
        if row[0] == label:
            return row
    raise AssertionError(f"missing row {label!r}")


def test_report_verified(report):
    # ``verified`` folds in the monotone-curve, knee, and every
    # SLO-under-failure gate; render() shows which leg broke on failure.
    assert report.verified, report.render()


def test_load_latency_curve_monotone_with_knee(report):
    sweep = [row for row in report.rows if row[0] == "poisson sweep"]
    assert len(sweep) == len(TINY.slo_load_factors)
    p99s = [float(row[6]) for row in sweep]
    assert p99s == sorted(p99s)
    # The knee (and the measured capacity) made it into the claims.
    (curve_claim,) = [c for c in report.measured_claims if "knee at" in c]
    assert "req/s capacity" in curve_claim


def test_crash_legs_report_not_crash(report):
    # r=2 rides through the mid-run benefactor crash: zero failed
    # requests, nothing lost; r=1 on the same schedule *reports* its
    # violations as failed requests in the table.
    assert leg(report, "r=2 crash")[9] == 0
    assert leg(report, "r=1 crash")[9] > 0


def test_slow_replica_inflates_p99_without_errors(report):
    base = leg(report, "r=2 baseline")
    slow = leg(report, "r=2 slow replica")
    assert slow[9] == 0
    assert float(slow[6]) > float(base[6])


def test_digest_stable_across_repeats(report):
    assert slo_traffic(TINY).digest() == report.digest()


def test_digest_identical_serial_vs_parallel():
    identical, pairs = check_identity(["slo_traffic"], TINY, jobs=2)
    assert identical, pairs


HASHSEED_SCRIPT = (
    "from repro.experiments import TINY, slo_traffic; "
    "print(slo_traffic(TINY).digest())"
)


def test_digest_identical_across_hash_seeds(report):
    digests = set()
    for seed in ("0", "1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-c", HASHSEED_SCRIPT],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            check=True,
        )
        digests.add(result.stdout.strip())
    assert digests == {report.digest()}
