"""Tests for the page-cache model and mmap emulation."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import MmapError
from repro.fusefs import FuseMount, OpenFlags
from repro.mem import MmapRegion, PageCache, Protection
from repro.store import CHUNK_SIZE, PAGE_SIZE
from repro.util.units import KiB, MiB
from tests.conftest import run


@pytest.fixture
def mount(small_cluster, store):
    return FuseMount(small_cluster.node(1), store, cache_bytes=1 * MiB)


@pytest.fixture
def pagecache(mount):
    return PageCache(mount, capacity_bytes=256 * KiB)


def make_file(engine, mount, name, size):
    def proc():
        fd = yield from mount.open(
            name, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=size
        )
        return fd

    return run(engine, proc())


class TestPageCache:
    def test_too_small_rejected(self, mount):
        with pytest.raises(MmapError):
            PageCache(mount, capacity_bytes=100)

    def test_read_your_writes(self, engine, mount, pagecache):
        make_file(engine, mount, "/f", CHUNK_SIZE)

        def proc():
            yield from pagecache.write("/f", 123, b"page-cache data")
            return (yield from pagecache.read("/f", 123, 15))

        assert run(engine, proc()) == b"page-cache data"

    def test_hit_rate_on_reuse(self, engine, mount, pagecache):
        make_file(engine, mount, "/f", CHUNK_SIZE)

        def proc():
            yield from pagecache.read("/f", 0, PAGE_SIZE)
            for _ in range(9):
                yield from pagecache.read("/f", 0, PAGE_SIZE)

        run(engine, proc())
        assert pagecache.stats.hits >= 9

    def test_eviction_writes_back(self, engine, mount, pagecache):
        size = 512 * KiB
        make_file(engine, mount, "/f", size)

        def proc():
            # Dirty more pages than the cache holds, forcing evictions.
            for offset in range(0, size, PAGE_SIZE):
                yield from pagecache.write(
                    "/f", offset, bytes([offset % 251]) * PAGE_SIZE
                )
            yield from pagecache.sync_path("/f")
            # Read through a cold page cache: data must have survived.
            yield from pagecache.drop_path("/f")
            for offset in range(0, size, 64 * KiB):
                got = yield from pagecache.read("/f", offset, PAGE_SIZE)
                assert got == bytes([offset % 251]) * PAGE_SIZE

        run(engine, proc())
        assert pagecache.stats.writeback_bytes > 0

    def test_range_larger_than_cache(self, engine, mount, pagecache):
        size = 512 * KiB  # cache is 256 KiB

        make_file(engine, mount, "/f", size)

        def proc():
            payload = bytes(range(256)) * (size // 256)
            yield from pagecache.write("/f", 0, payload)
            got = yield from pagecache.read("/f", 0, size)
            return got == payload

        assert run(engine, proc())

    def test_bounds_checked(self, engine, mount, pagecache):
        make_file(engine, mount, "/f", 1000)
        with pytest.raises(MmapError):
            run(engine, pagecache.read("/f", 900, 200))

    def test_fault_charges_fuse_overhead(self, engine, mount):
        pagecache = PageCache(
            mount, capacity_bytes=256 * KiB, fuse_op_overhead=1e-3
        )
        make_file(engine, mount, "/f", CHUNK_SIZE)

        def proc():
            start = engine.now
            yield from pagecache.read("/f", 0, 4 * PAGE_SIZE)
            return engine.now - start

        elapsed = run(engine, proc())
        assert elapsed >= 4e-3  # 4 pages x 1ms


class TestMmapRegion:
    def make_region(self, engine, mount, pagecache, size=CHUNK_SIZE, **kwargs):
        make_file(engine, mount, "/m", size)
        return MmapRegion(pagecache, "/m", size, **kwargs)

    def test_rw_roundtrip(self, engine, mount, pagecache):
        region = self.make_region(engine, mount, pagecache)

        def proc():
            yield from region.write(100, b"mapped bytes")
            return (yield from region.read(100, 12))

        assert run(engine, proc()) == b"mapped bytes"

    def test_mapping_bounds(self, engine, mount, pagecache):
        make_file(engine, mount, "/m", 1000)
        with pytest.raises(MmapError):
            MmapRegion(pagecache, "/m", 2000)

    def test_access_bounds(self, engine, mount, pagecache):
        region = self.make_region(engine, mount, pagecache, size=1000)
        with pytest.raises(MmapError):
            run(engine, region.read(990, 20))

    def test_protection_enforced(self, engine, mount, pagecache):
        region = self.make_region(
            engine, mount, pagecache, prot=Protection.PROT_READ
        )
        with pytest.raises(MmapError):
            run(engine, region.write(0, b"x"))

    def test_shared_propagates_to_file(self, engine, mount, pagecache):
        region = self.make_region(engine, mount, pagecache)

        def proc():
            yield from region.write(0, b"shared!")
            yield from region.msync()
            yield from mount.cache.flush_path("/m")
            fd = yield from mount.open("/m", OpenFlags.O_RDONLY)
            return (yield from mount.pread(fd, 0, 7))

        assert run(engine, proc()) == b"shared!"

    def test_private_does_not_touch_file(self, engine, mount, pagecache):
        region = self.make_region(engine, mount, pagecache, shared=False)

        def proc():
            yield from region.write(50, b"private")
            mine = yield from region.read(50, 7)
            fd = yield from mount.open("/m", OpenFlags.O_RDONLY)
            underlying = yield from mount.pread(fd, 50, 7)
            return mine, underlying

        mine, underlying = run(engine, proc())
        assert mine == b"private"
        assert underlying == bytes(7)

    def test_private_overlay_straddles_pages(self, engine, mount, pagecache):
        region = self.make_region(engine, mount, pagecache, shared=False)
        payload = b"P" * (PAGE_SIZE + 100)

        def proc():
            yield from region.write(PAGE_SIZE - 50, payload)
            return (yield from region.read(PAGE_SIZE - 50, len(payload)))

        assert run(engine, proc()) == payload

    def test_munmap_invalidates(self, engine, mount, pagecache):
        region = self.make_region(engine, mount, pagecache)

        def proc():
            yield from region.write(0, b"x")
            yield from region.munmap()

        run(engine, proc())
        assert not region.mapped
        with pytest.raises(MmapError):
            run(engine, region.read(0, 1))

    def test_munmap_idempotent(self, engine, mount, pagecache):
        region = self.make_region(engine, mount, pagecache)
        run(engine, region.munmap())
        run(engine, region.munmap())  # no-op, no error

    def test_offset_mapping(self, engine, mount, pagecache):
        make_file(engine, mount, "/m", CHUNK_SIZE)
        region = MmapRegion(
            pagecache, "/m", 1000, offset=PAGE_SIZE
        )

        def proc():
            yield from region.write(0, b"offset")
            got = yield from region.read(0, 6)
            raw = yield from pagecache.read("/m", PAGE_SIZE, 6)
            return got, raw

        got, raw = run(engine, proc())
        assert got == b"offset"
        assert raw == b"offset"


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),
            st.integers(min_value=0, max_value=CHUNK_SIZE + PAGE_SIZE),
            st.integers(min_value=1, max_value=3 * PAGE_SIZE),
        ),
        min_size=1,
        max_size=25,
    ),
    data=st.data(),
)
def test_property_region_matches_bytearray(
    engine, small_cluster, store, ops, data
):
    """A shared mapping behaves like a byte array under arbitrary access
    patterns, across a deliberately tiny page cache."""
    mount = FuseMount(small_cluster.node(3), store, cache_bytes=2 * CHUNK_SIZE)
    pagecache = PageCache(mount, capacity_bytes=16 * PAGE_SIZE)
    size = 2 * CHUNK_SIZE
    name = f"/pm/{data.draw(st.integers(min_value=0, max_value=10**9))}"
    make_file(engine, mount, name, size)
    region = MmapRegion(pagecache, name, size)
    reference = bytearray(size)

    def proc():
        for i, (is_write, offset, length) in enumerate(ops):
            offset = min(offset, size - 1)
            length = min(length, size - offset)
            if is_write:
                payload = bytes([(i * 13 + 7) % 256]) * length
                yield from region.write(offset, payload)
                reference[offset : offset + length] = payload
            else:
                got = yield from region.read(offset, length)
                assert got == bytes(reference[offset : offset + length])
        whole = yield from region.read(0, size)
        assert whole == bytes(reference)

    run(engine, proc())
