"""Grab-bag coverage for smaller public paths."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.experiments.configs import TINY
from repro.experiments.runner import Testbed, fresh_job
from repro.store import CHUNK_SIZE
from repro.util.units import KiB
from tests.conftest import run


class TestFreshJob:
    def test_builds_testbed_and_job(self):
        testbed, job = fresh_job(TINY, 2, 2, 2)
        assert job.cluster is testbed.cluster
        assert job.config.label() == "L-SSD(2:2:2)"

    def test_remote_flag(self):
        testbed, job = fresh_job(TINY, 2, 2, 2, remote_ssd=True)
        assert job.config.label() == "R-SSD(2:2:2)"


class TestManagerExtendFile:
    def test_extend_appends_chunk_aligned(self, engine, store, client):
        def proc():
            yield from client.create("/x", 100)  # 1 chunk, size 100
            offset = store.extend_file("/x", 50, client="node001")
            return offset, store.lookup("/x")

        offset, meta = run(engine, proc())
        assert offset == CHUNK_SIZE  # new section starts on a boundary
        assert meta.size == CHUNK_SIZE + 50
        assert meta.num_chunks == 2

    def test_extend_zero(self, engine, store, client):
        def proc():
            yield from client.create("/y", CHUNK_SIZE)
            return store.extend_file("/y", 0, client="node001")

        assert run(engine, proc()) == CHUNK_SIZE

    def test_negative_rejected(self, engine, store, client):
        def proc():
            yield from client.create("/z", 10)

        run(engine, proc())
        with pytest.raises(StoreError):
            store.extend_file("/z", -1, client="node001")


class TestMultiRangeWriteback:
    def test_scattered_dirty_pages_flush_as_ranges(self, engine, nvmalloc):
        """Several non-adjacent dirty pages in one chunk flush as
        distinct ranges in a single store operation."""

        def proc():
            var = yield from nvmalloc.ssdmalloc(CHUNK_SIZE, owner="multi")
            for page in (0, 5, 9):
                yield from var.write(page * 4096, bytes([page + 1]) * 4096)
            yield from var.region.msync()
            before = nvmalloc.metrics.value("fuse.writeback.bytes")
            yield from nvmalloc.mount.cache.flush_path(var.backing_path)
            flushed = nvmalloc.metrics.value("fuse.writeback.bytes") - before
            # Exactly the three dirty pages, not the whole chunk.
            assert flushed == 3 * 4096
            # Round-trip through a cold cache.
            nvmalloc.mount.cache.invalidate_path(var.backing_path)
            yield from nvmalloc.pagecache.drop_path(var.backing_path, sync=False)
            for page in (0, 5, 9):
                got = yield from var.read(page * 4096, 4096)
                assert got == bytes([page + 1]) * 4096
            gap = yield from var.read(2 * 4096, 4096)
            assert gap == bytes(4096)
            return True

        assert run(engine, proc())


class TestArrayValidation:
    def test_write_block_requires_2d_tile(self, nvmalloc, engine):
        arr = nvmalloc.dram_array((4, 4), np.float64)
        with pytest.raises(ValueError):
            run(engine, arr.write_block(0, 0, np.zeros(4)))
        with pytest.raises(IndexError):
            run(engine, arr.write_block(3, 3, np.zeros((2, 2))))
        arr.free()

    def test_nvm_array_cannot_exceed_variable(self, engine, nvmalloc):
        from repro.core.variable import NVMArray
        from repro.errors import NVMallocError

        def proc():
            var = yield from nvmalloc.ssdmalloc(100, owner="small")
            with pytest.raises(NVMallocError):
                NVMArray(var, (1000,), np.dtype(np.float64))
            yield from nvmalloc.ssdfree(var)

        run(engine, proc())
