"""Tests for CPU cores, nodes, and the HAL cluster factory."""

import pytest

from repro.cluster import (
    HAL_CPU,
    HAL_TESTBED,
    Cluster,
    CPUSpec,
    make_hal_cluster,
)
from repro.devices.specs import DDR3_1600, INTEL_X25E
from repro.network.link import BONDED_DUAL_GIGE
from repro.sim import Engine
from repro.util.units import GB, GiB, MiB


@pytest.fixture
def engine():
    return Engine()


class TestCPU:
    def test_hal_spec(self):
        assert HAL_CPU.clock_hz == 2.4e9
        assert HAL_CPU.flops == 4.8e9

    def test_compute_time(self):
        assert HAL_CPU.compute_time(4.8e9) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            HAL_CPU.compute_time(-1)

    def test_core_occupancy(self, engine):
        from repro.cluster.cpu import Core

        core = Core(engine, CPUSpec(clock_hz=1e9, flops_per_cycle=1.0), "c0")

        def worker():
            yield from core.compute(2e9)
            return engine.now

        results = engine.run_all([engine.process(worker()) for _ in range(2)])
        assert results == [pytest.approx(2.0), pytest.approx(4.0)]
        assert core.busy_seconds() == pytest.approx(4.0)


class TestHalCluster:
    def test_table2_defaults(self, engine):
        cluster = make_hal_cluster(engine)
        assert cluster.num_nodes == 16
        assert cluster.total_cores == 128
        assert cluster.nodes[0].dram.capacity == 8 * GiB
        assert cluster.nodes[0].ssd is not None
        assert cluster.nodes[0].ssd.spec.name == "Intel X25-E"
        assert cluster.network.spec is BONDED_DUAL_GIGE

    def test_scaled_preserves_structure(self, engine):
        config = HAL_TESTBED.scaled(64)
        cluster = make_hal_cluster(engine, config)
        assert cluster.num_nodes == 16
        assert cluster.nodes[0].dram.capacity == 8 * GiB // 64
        assert config.ssd_per_node == 32 * GB // 64

    def test_scaled_rejects_bad_divisor(self):
        with pytest.raises(ValueError):
            HAL_TESTBED.scaled(0)

    def test_ssd_subset(self, engine):
        cluster = make_hal_cluster(engine, ssd_nodes={0, 5})
        equipped = cluster.ssd_equipped_nodes()
        assert [n.node_id for n in equipped] == [0, 5]
        assert cluster.nodes[1].ssd is None

    def test_node_names_are_endpoints(self, engine):
        cluster = make_hal_cluster(engine)
        for node in cluster.nodes:
            assert cluster.network.nic(node.name) is node.nic

    def test_total_dram(self, engine):
        cluster = make_hal_cluster(engine, HAL_TESTBED.scaled(1024))
        assert cluster.total_dram == 16 * (8 * GiB // 1024)


class TestClusterValidation:
    def test_needs_nodes(self, engine):
        with pytest.raises(ValueError):
            Cluster(
                engine,
                num_nodes=0,
                cores_per_node=1,
                cpu_spec=HAL_CPU,
                dram_spec=DDR3_1600,
                dram_per_node=1 * MiB,
                link_spec=BONDED_DUAL_GIGE,
            )

    def test_no_ssd_cluster(self, engine):
        cluster = Cluster(
            engine,
            num_nodes=2,
            cores_per_node=2,
            cpu_spec=HAL_CPU,
            dram_spec=DDR3_1600,
            dram_per_node=1 * MiB,
            link_spec=BONDED_DUAL_GIGE,
        )
        assert cluster.ssd_equipped_nodes() == []
