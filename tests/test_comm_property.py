"""Property-based tests for the simulated MPI layer.

Collectives must deliver exact payloads for any rank count, any root,
and any payload shape — these are the invariants every workload builds
on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.hal import HalConfig
from repro.cluster import make_hal_cluster
from repro.parallel import Communicator
from repro.sim import Engine
from repro.util.units import MiB


def make_comm(num_ranks: int) -> tuple[Engine, Communicator]:
    engine = Engine()
    cluster = make_hal_cluster(
        engine,
        HalConfig(num_nodes=4, cores_per_node=8, dram_per_node=16 * MiB),
    )
    nodes = [cluster.node(r % 4) for r in range(num_ranks)]
    return engine, Communicator(engine, nodes)


@settings(max_examples=25, deadline=None)
@given(
    num_ranks=st.integers(min_value=1, max_value=12),
    root=st.data(),
    payload=st.binary(min_size=0, max_size=4096),
)
def test_bcast_delivers_exact_payload(num_ranks, root, payload):
    engine, comm = make_comm(num_ranks)
    root_rank = root.draw(st.integers(min_value=0, max_value=num_ranks - 1))

    def rank_fn(rank):
        data = payload if rank == root_rank else None
        return (yield from comm.bcast(data, root=root_rank, rank=rank))

    procs = [engine.process(rank_fn(r)) for r in range(num_ranks)]
    results = engine.run_all(procs)
    assert all(r == payload for r in results)


@settings(max_examples=25, deadline=None)
@given(num_ranks=st.integers(min_value=1, max_value=10), seed=st.integers(0, 2**16))
def test_gather_preserves_rank_order_and_values(num_ranks, seed):
    engine, comm = make_comm(num_ranks)
    rng = np.random.default_rng(seed)
    payloads = [rng.random(rng.integers(1, 64)) for _ in range(num_ranks)]

    def rank_fn(rank):
        return (yield from comm.gather(payloads[rank], root=0, rank=rank))

    procs = [engine.process(rank_fn(r)) for r in range(num_ranks)]
    results = engine.run_all(procs)
    gathered = results[0]
    assert len(gathered) == num_ranks
    for rank, item in enumerate(gathered):
        assert np.array_equal(item, payloads[rank])


@settings(max_examples=20, deadline=None)
@given(
    num_ranks=st.integers(min_value=2, max_value=10),
    messages=st.lists(st.integers(), min_size=1, max_size=10),
)
def test_all_to_all_send_recv_is_lossless(num_ranks, messages):
    """Every rank sends its message list to every other; all arrive in
    order, no deadlock regardless of scheduling."""
    engine, comm = make_comm(num_ranks)

    def rank_fn(rank):
        for dest in range(num_ranks):
            if dest != rank:
                for m in messages:
                    yield from comm.send((rank, m), src=rank, dest=dest)
        received = []
        for src in range(num_ranks):
            if src != rank:
                for _ in messages:
                    received.append((yield from comm.recv(source=src, dst=rank)))
        return received

    procs = [engine.process(rank_fn(r)) for r in range(num_ranks)]
    results = engine.run_all(procs)
    for rank, received in enumerate(results):
        expected = [
            (src, m)
            for src in range(num_ranks)
            if src != rank
            for m in messages
        ]
        assert received == expected


@settings(max_examples=15, deadline=None)
@given(num_ranks=st.integers(min_value=1, max_value=12), rounds=st.integers(1, 4))
def test_repeated_barriers_stay_synchronized(num_ranks, rounds):
    engine, comm = make_comm(num_ranks)
    times: list[list[float]] = [[] for _ in range(num_ranks)]

    def rank_fn(rank):
        for round_ in range(rounds):
            yield engine.timeout((rank * 7 % 5) * 0.1 + 0.01)
            yield from comm.barrier(rank=rank)
            times[rank].append(engine.now)
        return True

    procs = [engine.process(rank_fn(r)) for r in range(num_ranks)]
    engine.run_all(procs)
    for round_ in range(rounds):
        instants = {times[rank][round_] for rank in range(num_ranks)}
        assert len(instants) == 1, f"barrier {round_} released at {instants}"
