"""Tests for the paper's extension features.

§III-C sketches variable lifetimes beyond the run (workflow / in-situ
sharing); §III-E sketches user-controlled checkpoint layout and draining
checkpoints to the PFS in the background; §II requires benefactor status
monitoring.  All four are implemented and tested here.
"""

import numpy as np
import pytest

from repro.core import NVMalloc
from repro.errors import (
    AllocationError,
    BenefactorDownError,
    CheckpointError,
    NVMallocError,
)
from repro.pfs import ParallelFileSystem
from repro.store import CHUNK_SIZE
from repro.util.units import KiB, MiB
from tests.conftest import run


class TestPersistentVariables:
    def test_survives_ssdfree(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(
                10_000, persistent_name="wf/stage1"
            )
            yield from var.write(0, b"handed to the next job")
            yield from nvmalloc.ssdfree(var)
            again = yield from nvmalloc.open_persistent("wf/stage1")
            data = yield from again.read(0, 22)
            yield from nvmalloc.ssdfree(again)
            yield from nvmalloc.unlink_persistent("wf/stage1")
            return data

        assert run(engine, proc()) == b"handed to the next job"

    def test_cross_node_sharing(self, engine, small_cluster, store):
        """The workflow case: a producer on one node, an in-situ consumer
        on another."""
        producer = NVMalloc(
            small_cluster.node(1), store,
            fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
        )
        consumer = NVMalloc(
            small_cluster.node(2), store,
            fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
        )

        def proc():
            var = yield from producer.ssdmalloc(
                CHUNK_SIZE, persistent_name="sim/field"
            )
            yield from var.write(100, b"simulation output")
            yield from producer.ssdfree(var)  # producer job ends

            view = yield from consumer.open_persistent("sim/field")
            data = yield from view.read(100, 17)
            yield from consumer.ssdfree(view)
            yield from consumer.unlink_persistent("sim/field")
            return data

        assert run(engine, proc()) == b"simulation output"

    def test_create_twice_rejected(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(100, persistent_name="p")
            yield from nvmalloc.ssdfree(var)
            yield from nvmalloc.ssdmalloc(100, persistent_name="p")

        with pytest.raises(AllocationError):
            run(engine, proc())

    def test_open_missing_rejected(self, engine, nvmalloc):
        with pytest.raises(AllocationError):
            run(engine, nvmalloc.open_persistent("nope"))

    def test_unlink_while_mapped_rejected(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(100, persistent_name="live")
            try:
                yield from nvmalloc.unlink_persistent("live")
            finally:
                yield from nvmalloc.ssdfree(var)

        with pytest.raises(NVMallocError):
            run(engine, proc())

    def test_exclusive_with_shared_key(self, engine, nvmalloc):
        with pytest.raises(AllocationError):
            run(
                engine,
                nvmalloc.ssdmalloc(100, shared_key="s", persistent_name="p"),
            )

    def test_checkpointable(self, engine, nvmalloc):
        """Persistent variables checkpoint and restore like any other."""

        def proc():
            var = yield from nvmalloc.ssdmalloc(
                CHUNK_SIZE, persistent_name="ckpt-me"
            )
            yield from var.write(0, b"state")
            yield from nvmalloc.ssdcheckpoint("t", 0, b"", [("v", var)])
            yield from var.write(0, b"later")
            _, variables = yield from nvmalloc.restore("t", 0)
            yield from nvmalloc.ssdfree(var)
            yield from nvmalloc.unlink_persistent("ckpt-me")
            return variables["v"][:5]

        assert run(engine, proc()) == b"state"


class TestCheckpointLayout:
    def test_custom_order(self, engine, nvmalloc):
        def proc():
            v1 = yield from nvmalloc.ssdmalloc(CHUNK_SIZE)
            v2 = yield from nvmalloc.ssdmalloc(CHUNK_SIZE)
            yield from v1.write(0, b"one")
            yield from v2.write(0, b"two")
            record = yield from nvmalloc.ssdcheckpoint(
                "t", 0, b"dram", [("v1", v1), ("v2", v2)],
                layout=["v2", "__dram__", "v1"],
            )
            dram, variables = yield from nvmalloc.restore("t", 0)
            return record, dram, variables

        record, dram, variables = run(engine, proc())
        assert [s.name for s in record.sections] == ["v2", "__dram__", "v1"]
        offsets = {s.name: s.offset for s in record.sections}
        assert offsets["v2"] < offsets["__dram__"] < offsets["v1"]
        assert dram == b"dram"
        assert variables["v1"][:3] == b"one"
        assert variables["v2"][:3] == b"two"

    def test_layout_must_be_permutation(self, engine, nvmalloc):
        def proc():
            v1 = yield from nvmalloc.ssdmalloc(CHUNK_SIZE)
            yield from nvmalloc.ssdcheckpoint(
                "t", 0, b"", [("v1", v1)], layout=["v1"]
            )

        with pytest.raises(CheckpointError):
            run(engine, proc())

    def test_empty_dram_state(self, engine, nvmalloc):
        def proc():
            v1 = yield from nvmalloc.ssdmalloc(CHUNK_SIZE)
            yield from v1.write(0, b"only-var")
            yield from nvmalloc.ssdcheckpoint("t", 0, b"", [("v", v1)])
            dram, variables = yield from nvmalloc.restore("t", 0)
            return dram, variables["v"][:8]

        dram, v = run(engine, proc())
        assert dram == b""
        assert v == b"only-var"


class TestDrainToPfs:
    def test_drain_roundtrip(self, engine, small_cluster, nvmalloc):
        pfs = ParallelFileSystem(engine, small_cluster.network, num_servers=2)

        def proc():
            var = yield from nvmalloc.ssdmalloc(2 * CHUNK_SIZE)
            yield from var.write(0, b"drained to scratch")
            yield from nvmalloc.ssdcheckpoint("t", 0, b"DRAM!", [("v", var)])
            dest = yield from nvmalloc.drain_checkpoint_to_pfs(
                "t", 0, pfs, block_bytes=64 * KiB
            )
            return dest

        dest = run(engine, proc())
        record = nvmalloc.checkpoint_record("t", 0)
        raw = pfs.read_raw(dest)
        dram_sec = record.dram_section
        assert raw[dram_sec.offset : dram_sec.offset + 5] == b"DRAM!"
        var_sec = record.section("v")
        assert raw[var_sec.offset : var_sec.offset + 18] == b"drained to scratch"

    def test_background_drain_overlaps_compute(self, engine, small_cluster, nvmalloc):
        """Spawned as its own process, the drain costs (almost) no
        foreground time."""
        pfs = ParallelFileSystem(engine, small_cluster.network, num_servers=2)
        core = small_cluster.node(1).cores[0]

        def proc():
            var = yield from nvmalloc.ssdmalloc(4 * CHUNK_SIZE)
            yield from var.write(0, bytes(4 * CHUNK_SIZE))
            yield from nvmalloc.ssdcheckpoint("t", 0, b"x", [("v", var)])
            drain = engine.process(
                nvmalloc.drain_checkpoint_to_pfs("t", 0, pfs)
            )
            start = engine.now
            yield from core.compute(core.spec.flops)  # 1 virtual second
            compute_elapsed = engine.now - start
            yield drain  # join
            return compute_elapsed

        compute_elapsed = run(engine, proc())
        assert compute_elapsed == pytest.approx(1.0, rel=0.01)


class TestBenefactorMonitoring:
    def test_heartbeat_marks_crashed_offline(self, engine, store, client):
        def proc():
            yield from client.create("/f", 4 * CHUNK_SIZE)
            victim = store.benefactors()[0]
            victim.crash()
            marked = yield from store.monitor(0.01, rounds=2)
            return victim, marked

        victim, marked = run(engine, proc())
        assert marked == 1
        assert not victim.online

    def test_resolution_fails_fast_after_monitoring(self, engine, store, client):
        def proc():
            yield from client.create("/f", 4 * CHUNK_SIZE)
            _, owner = store.resolve_chunk("/f", 0)
            owner.crash()
            yield from store.monitor(0.01, rounds=1)
            store.resolve_chunk("/f", 0)

        with pytest.raises(BenefactorDownError):
            run(engine, proc())

    def test_new_allocations_avoid_failed_benefactor(self, engine, store, client):
        def proc():
            victim = store.benefactors()[0]
            victim.crash()
            yield from store.monitor(0.01, rounds=1)
            yield from client.create("/g", 6 * CHUNK_SIZE)
            return victim.reserved

        assert run(engine, proc()) == 0

    def test_healthy_benefactors_untouched(self, engine, store, client):
        def proc():
            marked = yield from store.monitor(0.01, rounds=3)
            return marked

        assert run(engine, proc()) == 0
        assert all(b.online for b in store.benefactors())
