"""Tests for the simulated MPI layer and job launcher."""

import numpy as np
import pytest

from repro.errors import CommError, StoreError
from repro.parallel import Communicator, Job, JobConfig
from repro.parallel.comm import payload_bytes
from repro.util.units import KiB, MiB


class TestPayloadBytes:
    def test_numpy(self):
        assert payload_bytes(np.zeros(100, dtype=np.float64)) == 800

    def test_bytes(self):
        assert payload_bytes(b"abc") == 3

    def test_list_sums(self):
        assert payload_bytes([b"ab", b"cd"]) == 4 + 16

    def test_object_default(self):
        assert payload_bytes(42) == 64


@pytest.fixture
def comm(engine, small_cluster):
    # 8 ranks: 2 per node on 4 nodes.
    nodes = [small_cluster.node(r // 2) for r in range(8)]
    return Communicator(engine, nodes)


def launch(engine, comm, rank_fn):
    procs = [engine.process(rank_fn(rank)) for rank in range(comm.size)]
    return engine.run_all(procs)


class TestPointToPoint:
    def test_send_recv(self, engine, comm):
        def rank_fn(rank):
            if rank == 0:
                yield from comm.send(
                    np.arange(10), src=0, dest=3, tag=7
                )
                return None
            if rank == 3:
                data = yield from comm.recv(source=0, dst=3, tag=7)
                return np.asarray(data).sum()
            return (yield from _noop(engine))

        results = launch(engine, comm, rank_fn)
        assert results[3] == 45

    def test_message_order_preserved(self, engine, comm):
        def rank_fn(rank):
            if rank == 0:
                for i in range(5):
                    yield from comm.send(i, src=0, dest=1)
                return None
            if rank == 1:
                out = []
                for _ in range(5):
                    out.append((yield from comm.recv(source=0, dst=1)))
                return out
            return (yield from _noop(engine))

        assert launch(engine, comm, rank_fn)[1] == [0, 1, 2, 3, 4]

    def test_same_node_uses_no_network(self, engine, comm, small_cluster):
        def rank_fn(rank):
            if rank == 0:  # ranks 0,1 share node000
                yield from comm.send(np.zeros(1000), src=0, dest=1)
            elif rank == 1:
                yield from comm.recv(source=0, dst=1)
            else:
                yield from _noop(engine)
            return None

        launch(engine, comm, rank_fn)
        assert small_cluster.metrics.value("network.bytes") == 0

    def test_bad_rank_rejected(self, engine, comm):
        with pytest.raises(CommError):
            engine.run(engine.process(comm.send(1, src=0, dest=99)))


class TestCollectives:
    @pytest.mark.parametrize("root", [0, 3, 7])
    def test_bcast(self, engine, comm, root):
        payload = np.arange(50)

        def rank_fn(rank):
            data = payload if rank == root else None
            received = yield from comm.bcast(data, root=root, rank=rank)
            return np.asarray(received).sum()

        results = launch(engine, comm, rank_fn)
        assert all(r == payload.sum() for r in results)

    def test_scatter(self, engine, comm):
        def rank_fn(rank):
            chunks = [i * 10 for i in range(8)] if rank == 0 else None
            piece = yield from comm.scatter(chunks, root=0, rank=rank)
            return piece

        assert launch(engine, comm, rank_fn) == [i * 10 for i in range(8)]

    def test_scatter_wrong_count(self, engine, comm):
        def rank_fn(rank):
            chunks = [1, 2] if rank == 0 else None
            return (yield from comm.scatter(chunks, root=0, rank=rank))

        with pytest.raises(CommError):
            launch(engine, comm, rank_fn)

    def test_gather(self, engine, comm):
        def rank_fn(rank):
            return (yield from comm.gather(rank * rank, root=0, rank=rank))

        results = launch(engine, comm, rank_fn)
        assert results[0] == [r * r for r in range(8)]
        assert all(r is None for r in results[1:])

    def test_allgather(self, engine, comm):
        def rank_fn(rank):
            return (yield from comm.allgather(chr(ord("a") + rank), rank=rank))

        results = launch(engine, comm, rank_fn)
        expected = [chr(ord("a") + r) for r in range(8)]
        assert all(r == expected for r in results)

    def test_barrier_synchronizes(self, engine, comm):
        def rank_fn(rank):
            yield engine.timeout(rank * 1.0)  # stagger arrivals
            yield from comm.barrier(rank=rank)
            return engine.now

        results = launch(engine, comm, rank_fn)
        assert all(t == pytest.approx(7.0) for t in results)

    def test_barrier_reusable(self, engine, comm):
        def rank_fn(rank):
            for _ in range(3):
                yield from comm.barrier(rank=rank)
            return True

        assert all(launch(engine, comm, rank_fn))

    def test_bcast_nonpow2(self, engine, small_cluster):
        nodes = [small_cluster.node(r % 4) for r in range(6)]
        comm = Communicator(engine, nodes)

        def rank_fn(rank):
            data = "payload" if rank == 2 else None
            return (yield from comm.bcast(data, root=2, rank=rank))

        results = [
            engine.process(rank_fn(r)) for r in range(6)
        ]
        assert engine.run_all(results) == ["payload"] * 6


def _noop(engine):
    yield engine.timeout(0)
    return None


class TestJob:
    def test_labels(self):
        assert JobConfig(2, 16, 0).label() == "DRAM(2:16:0)"
        assert JobConfig(8, 16, 16).label() == "L-SSD(8:16:16)"
        assert JobConfig(8, 8, 4, remote_ssd=True).label() == "R-SSD(8:8:4)"

    def test_rank_placement(self, small_cluster):
        job = Job(small_cluster, JobConfig(
            2, 4, 2, fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
            benefactor_contribution=4 * MiB,
        ))
        assert job.comm.node_of(0).node_id == 0
        assert job.comm.node_of(1).node_id == 0
        assert job.comm.node_of(2).node_id == 1
        assert job.config.num_ranks == 8

    def test_too_many_nodes_rejected(self, small_cluster):
        with pytest.raises(CommError):
            Job(small_cluster, JobConfig(1, 99, 0))

    def test_too_many_procs_rejected(self, small_cluster):
        with pytest.raises(CommError):
            Job(small_cluster, JobConfig(99, 1, 0))

    def test_remote_benefactors_disjoint(self, small_cluster):
        job = Job(small_cluster, JobConfig(
            2, 2, 2, remote_ssd=True,
            fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
            benefactor_contribution=4 * MiB,
        ))
        compute = {n.name for n in job.compute_nodes}
        benefactors = {b.name for b in job.benefactors}
        assert compute.isdisjoint(benefactors)

    def test_remote_needs_spare_nodes(self, small_cluster):
        with pytest.raises(StoreError):
            Job(small_cluster, JobConfig(
                2, 4, 2, remote_ssd=True,
                benefactor_contribution=4 * MiB,
            ))

    def test_dram_only_has_no_store(self, small_cluster):
        job = Job(small_cluster, JobConfig(2, 2, 0))
        assert job.manager is None
        with pytest.raises(StoreError):
            job.nvmalloc_for(0)

    def test_run_times_job(self, small_cluster):
        job = Job(small_cluster, JobConfig(2, 2, 0))

        def rank_main(ctx):
            yield from ctx.compute(ctx.core.spec.flops)  # exactly 1 second
            return ctx.rank

        elapsed, results = job.run(rank_main)
        assert elapsed == pytest.approx(1.0)
        assert results == [0, 1, 2, 3]

    def test_nvmalloc_shared_per_node(self, small_cluster):
        job = Job(small_cluster, JobConfig(
            2, 2, 2, fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
            benefactor_contribution=4 * MiB,
        ))
        assert job.nvmalloc_for(0) is job.nvmalloc_for(1)  # same node
        assert job.nvmalloc_for(0) is not job.nvmalloc_for(2)
