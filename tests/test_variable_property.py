"""Property-based tests: typed arrays behave exactly like numpy arrays."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.variable import DRAMArray, NVMArray
from tests.conftest import run

ROWS, COLS = 24, 36


ops_2d = st.lists(
    st.one_of(
        # write_row
        st.tuples(st.just("row"), st.integers(0, ROWS - 1), st.integers(0, 2**31)),
        # write_block
        st.tuples(
            st.just("block"),
            st.tuples(
                st.integers(0, ROWS - 1), st.integers(0, COLS - 1),
                st.integers(1, 8), st.integers(1, 8),
            ),
            st.integers(0, 2**31),
        ),
        # set element
        st.tuples(st.just("set"), st.integers(0, ROWS * COLS - 1), st.integers(0, 2**31)),
    ),
    min_size=1,
    max_size=20,
)


def _apply(reference: np.ndarray, array, op, arg, seed):
    """Apply one op to both the reference and the device array; returns
    a generator for the device part."""
    rng = np.random.default_rng(seed)
    kind = op
    if kind == "row":
        row = arg
        values = rng.random(COLS)
        reference[row] = values
        return array.write_row(row, values)
    if kind == "block":
        r0, c0, h, w = arg
        h = min(h, ROWS - r0)
        w = min(w, COLS - c0)
        tile = rng.random((h, w))
        reference[r0 : r0 + h, c0 : c0 + w] = tile
        return array.write_block(r0, c0, tile)
    index = arg
    value = float(rng.random())
    reference.flat[index] = value
    return array.set(index, value)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(ops=ops_2d, data=st.data())
def test_nvm_array_matches_numpy(engine, nvmalloc, ops, data):
    reference = np.zeros((ROWS, COLS))
    seed_base = data.draw(st.integers(0, 2**16))

    def scenario():
        array = yield from nvmalloc.ssdmalloc_array(
            (ROWS, COLS), np.float64, owner=f"prop{seed_base}"
        )
        for i, (op, arg, _) in enumerate(ops):
            yield from _apply(reference, array, op, arg, seed_base + i)
        # Full-content equality plus a few structured views.
        whole = yield from array.read_rows(0, ROWS)
        assert np.array_equal(whole, reference)
        col = yield from array.read_column(COLS // 2)
        assert np.array_equal(col, reference[:, COLS // 2])
        block = yield from array.read_block(2, 9, 3, 11)
        assert np.array_equal(block, reference[2:9, 3:11])
        yield from nvmalloc.ssdfree(array.variable)
        return True

    assert run(engine, scenario())


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(ops=ops_2d, data=st.data())
def test_dram_array_matches_numpy(engine, small_cluster, ops, data):
    reference = np.zeros((ROWS, COLS))
    seed_base = data.draw(st.integers(0, 2**16))
    array = DRAMArray(small_cluster.node(3).dram, (ROWS, COLS), np.dtype(np.float64))

    def scenario():
        for i, (op, arg, _) in enumerate(ops):
            yield from _apply(reference, array, op, arg, seed_base + i)
        whole = yield from array.read_rows(0, ROWS)
        assert np.array_equal(whole, reference)
        return True

    try:
        assert run(engine, scenario())
    finally:
        array.free()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    dtype=st.sampled_from([np.float64, np.float32, np.int64, np.int32, np.uint8]),
    n=st.integers(1, 300),
    seed=st.integers(0, 2**16),
)
def test_dtype_roundtrip(engine, nvmalloc, dtype, n, seed):
    """Every supported dtype round-trips bit-exactly through the store."""
    rng = np.random.default_rng(seed)
    if np.issubdtype(dtype, np.floating):
        values = rng.random(n).astype(dtype)
    else:
        info = np.iinfo(dtype)
        values = rng.integers(
            info.min, info.max, size=n, dtype=dtype, endpoint=True
        )

    def scenario():
        array = yield from nvmalloc.ssdmalloc_array(
            (n,), dtype, owner=f"dt{seed}"
        )
        yield from array.write_slice(0, values)
        back = yield from array.read_slice(0, n)
        yield from nvmalloc.ssdfree(array.variable)
        return back

    back = run(engine, scenario())
    assert back.dtype == np.dtype(dtype)
    assert np.array_equal(back, values)
