"""Tests for the aggregate NVM store: benefactor, manager, client."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (
    BenefactorDownError,
    CapacityError,
    ChunkNotFoundError,
    FileExistsInStoreError,
    FileNotFoundInStoreError,
    StoreError,
)
from repro.store import (
    CHUNK_SIZE,
    Benefactor,
    LocalFirstStriping,
    Manager,
    RoundRobinStriping,
    StoreClient,
    chunk_count,
)
from repro.util.units import KiB, MiB
from tests.conftest import run


class TestChunkCount:
    @pytest.mark.parametrize(
        "size,expected",
        [(0, 0), (1, 1), (CHUNK_SIZE, 1), (CHUNK_SIZE + 1, 2), (10 * CHUNK_SIZE, 10)],
    )
    def test_values(self, size, expected):
        assert chunk_count(size) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            chunk_count(-1)


class TestBenefactor:
    def test_requires_ssd(self, small_cluster):
        node = small_cluster.node(0)
        node_no_ssd = type(node).__new__(type(node))  # bare instance
        node_no_ssd.ssd = None
        node_no_ssd.name = "fake"
        with pytest.raises(StoreError):
            Benefactor(node_no_ssd)

    def test_contribution_capped_by_ssd(self, small_cluster):
        with pytest.raises(CapacityError):
            Benefactor(small_cluster.node(0), contribution=10**12)

    def test_reserve_accounting(self, small_cluster):
        b = Benefactor(small_cluster.node(0), contribution=1 * MiB)
        b.reserve(512 * KiB)
        assert b.available == 512 * KiB
        with pytest.raises(CapacityError):
            b.reserve(1 * MiB)
        b.unreserve(512 * KiB)
        assert b.available == 1 * MiB

    def test_store_fetch_roundtrip(self, engine, small_cluster):
        b = Benefactor(small_cluster.node(0), contribution=1 * MiB)
        payload = bytes(range(256)) * 4

        def proc():
            yield from b.store_chunk("node001", 1, payload, offset=100)
            return (yield from b.fetch_chunk("node001", 1, 100, len(payload)))

        assert run(engine, proc()) == payload

    def test_unmaterialized_reads_zero(self, engine, small_cluster):
        b = Benefactor(small_cluster.node(0), contribution=1 * MiB)

        def proc():
            return (yield from b.fetch_chunk("node001", 99, 0, 64))

        assert run(engine, proc()) == bytes(64)

    def test_out_of_chunk_write_rejected(self, engine, small_cluster):
        b = Benefactor(small_cluster.node(0), contribution=1 * MiB)
        with pytest.raises(StoreError):
            run(engine, b.store_chunk("node001", 1, b"x" * 10, offset=CHUNK_SIZE))

    def test_offline_refuses_service(self, engine, small_cluster):
        b = Benefactor(small_cluster.node(0), contribution=1 * MiB)
        b.online = False
        with pytest.raises(BenefactorDownError):
            run(engine, b.fetch_chunk("node001", 1, 0, 1))

    def test_delete_recycles_extent(self, engine, small_cluster):
        b = Benefactor(small_cluster.node(0), contribution=512 * KiB)  # 2 extents

        def proc():
            yield from b.store_chunk("node001", 1, b"a")
            yield from b.store_chunk("node001", 2, b"b")
            b.delete_chunk(1)
            yield from b.store_chunk("node001", 3, b"c")  # reuses extent

        run(engine, proc())
        assert b.stored_chunks == 2

    def test_copy_chunk_local(self, engine, small_cluster):
        b = Benefactor(small_cluster.node(0), contribution=1 * MiB)

        def proc():
            yield from b.store_chunk("node001", 1, b"original")
            yield from b.copy_chunk_local(1, 2)
            yield from b.store_chunk("node001", 2, b"MUTATED!")
            one = yield from b.fetch_chunk("node001", 1, 0, 8)
            two = yield from b.fetch_chunk("node001", 2, 0, 8)
            return one, two

        one, two = run(engine, proc())
        assert one == b"original"
        assert two == b"MUTATED!"


class TestManagerFiles:
    def test_create_reserves_chunks(self, engine, store, client):
        def proc():
            return (yield from client.create("/f", 3 * CHUNK_SIZE + 5))

        meta = run(engine, proc())
        assert meta.num_chunks == 4
        reserved = sum(b.reserved for b in store.benefactors())
        assert reserved == 4 * CHUNK_SIZE

    def test_duplicate_create_rejected(self, engine, client):
        def proc():
            yield from client.create("/f", 10)
            yield from client.create("/f", 10)

        with pytest.raises(FileExistsInStoreError):
            run(engine, proc())

    def test_lookup_missing(self, store):
        with pytest.raises(FileNotFoundInStoreError):
            store.lookup("/missing")

    def test_round_robin_spread(self, engine, store, client):
        def proc():
            yield from client.create("/f", 8 * CHUNK_SIZE)

        run(engine, proc())
        perbenefactor = [b.reserved // CHUNK_SIZE for b in store.benefactors()]
        assert perbenefactor == [2, 2, 2, 2]

    def test_resolve_out_of_range(self, engine, store, client):
        def proc():
            yield from client.create("/f", CHUNK_SIZE)

        run(engine, proc())
        with pytest.raises(ChunkNotFoundError):
            store.resolve_chunk("/f", 5)

    def test_resolve_offline_benefactor(self, engine, store, client):
        def proc():
            yield from client.create("/f", CHUNK_SIZE)

        run(engine, proc())
        _, owner = store.resolve_chunk("/f", 0)
        store.mark_offline(owner.name)
        with pytest.raises(BenefactorDownError):
            store.resolve_chunk("/f", 0)
        store.mark_online(owner.name)
        store.resolve_chunk("/f", 0)

    def test_delete_frees_space(self, engine, store, client):
        def proc():
            yield from client.create("/f", 4 * CHUNK_SIZE)
            yield from client.write("/f", 0, b"data")
            yield from client.delete("/f")

        run(engine, proc())
        assert store.total_available() == store.total_capacity()
        assert all(b.stored_chunks == 0 for b in store.benefactors())

    def test_store_full(self, engine, store, client):
        total = store.total_available()

        def proc():
            yield from client.create("/big", total + CHUNK_SIZE)

        with pytest.raises(StoreError):
            run(engine, proc())


class TestClientDataPath:
    def test_read_after_write(self, engine, client):
        payload = b"hello, aggregate store" * 100

        def proc():
            yield from client.create("/f", 2 * CHUNK_SIZE)
            yield from client.write("/f", CHUNK_SIZE - 50, payload)
            return (yield from client.read("/f", CHUNK_SIZE - 50, len(payload)))

        assert run(engine, proc()) == payload

    def test_reserved_reads_zero(self, engine, client):
        def proc():
            yield from client.create("/f", CHUNK_SIZE)
            return (yield from client.read("/f", 10, 20))

        assert run(engine, proc()) == bytes(20)

    def test_bounds_checked(self, engine, client):
        def proc():
            yield from client.create("/f", 100)
            yield from client.read("/f", 90, 20)

        with pytest.raises(StoreError):
            run(engine, proc())

    def test_map_cache_avoids_rpcs(self, engine, small_cluster, store, client):
        def proc():
            yield from client.create("/f", CHUNK_SIZE)
            yield from client.write("/f", 0, b"x")
            before = small_cluster.metrics.value("store.manager.rpcs")
            for _ in range(10):
                yield from client.read("/f", 0, 1)
            return small_cluster.metrics.value("store.manager.rpcs") - before

        assert run(engine, proc()) == 0

    def test_cross_client_visibility(self, engine, small_cluster, store):
        writer = StoreClient(small_cluster.node(1), store)
        reader = StoreClient(small_cluster.node(2), store)

        def proc():
            yield from writer.create("/shared", CHUNK_SIZE)
            yield from writer.write("/shared", 7, b"published")
            return (yield from reader.read("/shared", 7, 9))

        assert run(engine, proc()) == b"published"


class TestCheckpointLinking:
    def test_linked_chunks_shared(self, engine, store, client):
        def proc():
            yield from client.create("/var", 2 * CHUNK_SIZE)
            yield from client.write("/var", 0, b"v0")
            yield from client.create("/ckpt", CHUNK_SIZE)
            store.link_chunks("/ckpt", "/var")
            return store.lookup("/ckpt")

        meta = run(engine, proc())
        assert meta.num_chunks == 3
        assert store.is_shared("/var", 0)
        assert store.is_shared("/var", 1)

    def test_cow_preserves_checkpoint(self, engine, store, client):
        def proc():
            yield from client.create("/var", CHUNK_SIZE)
            yield from client.write("/var", 0, b"frozen")
            yield from client.create("/ckpt", CHUNK_SIZE)
            store.link_chunks("/ckpt", "/var")
            yield from client.write("/var", 0, b"MUTANT")
            live = yield from client.read("/var", 0, 6)
            # checkpoint section 2 = linked chunk at chunk-aligned offset
            frozen = yield from client.read("/ckpt", CHUNK_SIZE, 6)
            return live, frozen

        live, frozen = run(engine, proc())
        assert live == b"MUTANT"
        assert frozen == b"frozen"

    def test_cow_on_unshared_rejected(self, engine, store, client):
        def proc():
            yield from client.create("/var", CHUNK_SIZE)

        run(engine, proc())
        with pytest.raises(StoreError):
            store.cow_chunk("/var", 0)

    def test_delete_var_keeps_checkpoint(self, engine, store, client):
        def proc():
            yield from client.create("/var", CHUNK_SIZE)
            yield from client.write("/var", 0, b"persist")
            yield from client.create("/ckpt", CHUNK_SIZE)
            store.link_chunks("/ckpt", "/var")
            yield from client.delete("/var")
            return (yield from client.read("/ckpt", CHUNK_SIZE, 7))

        assert run(engine, proc()) == b"persist"

    def test_refcount_lifecycle(self, engine, store, client):
        def proc():
            yield from client.create("/var", CHUNK_SIZE)
            yield from client.write("/var", 0, b"x")
            chunk_id = store.lookup("/var").chunk_ids[0]
            yield from client.create("/ck", CHUNK_SIZE)
            store.link_chunks("/ck", "/var")
            assert store.chunk_refcount(chunk_id) == 2
            yield from client.delete("/var")
            assert store.chunk_refcount(chunk_id) == 1
            yield from client.delete("/ck")
            with pytest.raises(ChunkNotFoundError):
                store.chunk_refcount(chunk_id)

        run(engine, proc())


class TestStriping:
    def test_local_first(self, engine, small_cluster):
        manager = Manager(small_cluster.node(0), striping=LocalFirstStriping())
        for node in small_cluster.nodes:
            manager.register_benefactor(Benefactor(node, contribution=4 * MiB))
        client = StoreClient(small_cluster.node(1), manager)

        def proc():
            yield from client.create("/f", 4 * CHUNK_SIZE)

        run(engine, proc())
        local = next(
            b for b in manager.benefactors() if b.name == "node001"
        )
        assert local.reserved == 4 * CHUNK_SIZE

    def test_local_first_spills(self, engine, small_cluster):
        manager = Manager(small_cluster.node(0), striping=LocalFirstStriping())
        for node in small_cluster.nodes:
            manager.register_benefactor(
                Benefactor(node, contribution=2 * CHUNK_SIZE)
            )
        client = StoreClient(small_cluster.node(1), manager)

        def proc():
            yield from client.create("/f", 4 * CHUNK_SIZE)

        run(engine, proc())
        local = next(b for b in manager.benefactors() if b.name == "node001")
        assert local.reserved == 2 * CHUNK_SIZE  # filled, rest spread

    def test_no_online_benefactors(self):
        with pytest.raises(StoreError):
            RoundRobinStriping().place([], 1, CHUNK_SIZE, "x")


# ----------------------------------------------------------------------
# Property-based: the store behaves like a byte array.
# ----------------------------------------------------------------------

@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3 * CHUNK_SIZE - 1),
            st.binary(min_size=1, max_size=2000),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_store_matches_bytearray(engine, client, ops):
    size = 3 * CHUNK_SIZE
    reference = bytearray(size)
    name = f"/prop/{id(ops)}"

    def proc():
        yield from client.create(name, size)
        for offset, payload in ops:
            payload = payload[: size - offset]
            yield from client.write(name, offset, payload)
            reference[offset : offset + len(payload)] = payload
        whole = yield from client.read(name, 0, size)
        yield from client.delete(name)
        return whole

    assert run(engine, proc()) == bytes(reference)
