"""Tests for resources and channels."""

import pytest

from repro.errors import SimulationError
from repro.sim import Channel, Engine, Resource


@pytest.fixture
def engine():
    return Engine()


class TestResource:
    def test_capacity_validation(self, engine):
        with pytest.raises(SimulationError):
            Resource(engine, capacity=0)

    def test_grant_when_free(self, engine):
        res = Resource(engine, capacity=2)

        def proc():
            req = res.request()
            yield req
            return res.in_use

        assert engine.run(engine.process(proc())) == 1

    def test_fifo_queueing(self, engine):
        res = Resource(engine, capacity=1)
        order = []

        def worker(tag, hold):
            yield from res.use(hold)
            order.append((tag, engine.now))

        engine.run_all(
            [
                engine.process(worker("a", 2.0)),
                engine.process(worker("b", 1.0)),
                engine.process(worker("c", 1.0)),
            ]
        )
        # a holds [0,2), b [2,3), c [3,4) — strict arrival order.
        assert order == [("a", 2.0), ("b", 3.0), ("c", 4.0)]

    def test_parallel_capacity(self, engine):
        res = Resource(engine, capacity=3)

        def worker():
            yield from res.use(1.0)
            return engine.now

        results = engine.run_all([engine.process(worker()) for _ in range(3)])
        assert results == [1.0, 1.0, 1.0]

    def test_release_wakes_waiter(self, engine):
        res = Resource(engine, capacity=1)

        def first():
            req = res.request()
            yield req
            yield engine.timeout(5.0)
            res.release(req)

        def second():
            req = res.request()
            yield req
            res.release(req)
            return engine.now

        engine.process(first())
        proc = engine.process(second())
        assert engine.run(proc) == 5.0

    def test_release_without_hold_rejected(self, engine):
        res = Resource(engine, capacity=1)

        def proc():
            req = res.request()
            yield req
            res.release(req)
            with pytest.raises(SimulationError):
                res.release(req)

        engine.run(engine.process(proc()))

    def test_busy_accounting(self, engine):
        res = Resource(engine, capacity=1)

        def worker():
            yield from res.use(4.0)

        engine.run(engine.process(worker()))
        assert res.busy_seconds() == pytest.approx(4.0)

    def test_use_releases_on_exception(self, engine):
        res = Resource(engine, capacity=1)

        def bad():
            gen = res.use(10.0)
            yield next(gen)  # acquire
            gen.throw(RuntimeError("abort"))

        with pytest.raises(RuntimeError):
            engine.run(engine.process(bad()))
        assert res.in_use == 0

    def test_queue_length(self, engine):
        res = Resource(engine, capacity=1)

        def holder():
            yield from res.use(10.0)

        def waiter():
            yield from res.use(1.0)

        engine.process(holder())
        engine.process(waiter())
        engine.run(until=1.0)
        assert res.queue_length == 1


class TestChannel:
    def test_put_then_get(self, engine):
        chan = Channel(engine)
        chan.put("hello")

        def proc():
            msg = yield chan.get()
            return msg

        assert engine.run(engine.process(proc())) == "hello"

    def test_get_blocks_until_put(self, engine):
        chan = Channel(engine)

        def consumer():
            msg = yield chan.get()
            return (msg, engine.now)

        def producer():
            yield engine.timeout(3.0)
            chan.put(42)

        proc = engine.process(consumer())
        engine.process(producer())
        assert engine.run(proc) == (42, 3.0)

    def test_fifo_message_order(self, engine):
        chan = Channel(engine)
        for i in range(5):
            chan.put(i)

        def proc():
            out = []
            for _ in range(5):
                out.append((yield chan.get()))
            return out

        assert engine.run(engine.process(proc())) == [0, 1, 2, 3, 4]

    def test_multiple_waiters_fifo(self, engine):
        chan = Channel(engine)
        results = []

        def consumer(tag):
            msg = yield chan.get()
            results.append((tag, msg))

        def producer():
            yield engine.timeout(1.0)
            chan.put("first")
            chan.put("second")

        engine.process(consumer("a"))
        engine.process(consumer("b"))
        engine.process(producer())
        engine.run()
        assert results == [("a", "first"), ("b", "second")]

    def test_len(self, engine):
        chan = Channel(engine)
        chan.put(1)
        chan.put(2)
        assert len(chan) == 2
