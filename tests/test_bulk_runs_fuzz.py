"""Fuzzed identity of the bulk page-run fast paths vs per-page routes.

The model layers carry three gated fast paths — the page cache's
no-yield bulk fault/write runs (``pagecache.BULK_PAGE_RUNS``), the FTL's
frontier bulk-write run (``ftl.BULK_WRITE_RUNS``), and the resource
layer's synchronous grants (``resources.SYNC_GRANTS``).  Each is
eligible only where the general path would have behaved identically, so
the whole stack must produce byte-identical data and a bit-identical
virtual timeline with every gate flipped off.  These tests replay random
read/write/msync schedules both ways and compare everything observable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.devices.ftl as ftl_mod
import repro.mem.pagecache as pagecache_mod
import repro.sim.resources as resources_mod
from repro.cluster import make_hal_cluster
from repro.cluster.hal import HalConfig
from repro.core import NVMalloc
from repro.sim import Engine
from repro.store import CHUNK_SIZE, PAGE_SIZE, Benefactor, Manager
from repro.util.intervals import IntervalSet
from repro.util.units import KiB, MiB

REGION = 48 * KiB  # spans 12 pages across chunk boundaries at offset

# One op: (kind, offset_frac, length_frac, fill byte)
op = st.tuples(
    st.sampled_from(["write", "read", "msync"]),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.01, max_value=0.5),
    st.integers(min_value=1, max_value=255),
)


def _run_schedule(ops, *, bulk: bool):
    """One full stack run; returns (virtual_now, final_bytes, counters)."""
    engine = Engine()
    cluster = make_hal_cluster(
        engine,
        HalConfig(num_nodes=2, cores_per_node=2, dram_per_node=16 * MiB,
                  ssd_per_node=64 * MiB),
    )
    store = Manager(cluster.node(0))
    for node in cluster.nodes:
        store.register_benefactor(Benefactor(node, contribution=16 * MiB))
    # A page cache far smaller than the region forces evictions, so the
    # per-page fallback (``_insert`` with flush waits) really runs.
    lib = NVMalloc(
        cluster.node(1), store,
        fuse_cache_bytes=2 * CHUNK_SIZE, page_cache_bytes=16 * KiB,
    )

    def driver():
        var = yield from lib.ssdmalloc(REGION, owner="bulkfuzz")
        region = var.region
        for kind, off_frac, len_frac, fill in ops:
            offset = int(off_frac * (REGION - 1))
            length = max(1, min(int(len_frac * REGION), REGION - offset))
            if kind == "write":
                yield from region.write(offset, bytes([fill]) * length)
            elif kind == "read":
                yield from region.read(offset, length)
            else:
                yield from region.msync()
        final = yield from region.read(0, REGION)
        yield from lib.ssdfree(var)
        return bytes(final)

    final = engine.run(engine.process(driver()))
    counters = dict(cluster.metrics.snapshot(""))
    return engine.now, final, counters


@settings(max_examples=10, deadline=None)
@given(ops=st.lists(op, min_size=3, max_size=16))
def test_bulk_runs_match_per_page_paths(ops):
    fast = _run_schedule(ops, bulk=True)
    try:
        pagecache_mod.BULK_PAGE_RUNS = False
        ftl_mod.BULK_WRITE_RUNS = False
        resources_mod.SYNC_GRANTS = False
        slow = _run_schedule(ops, bulk=False)
    finally:
        pagecache_mod.BULK_PAGE_RUNS = True
        ftl_mod.BULK_WRITE_RUNS = True
        resources_mod.SYNC_GRANTS = True
    assert fast[1] == slow[1], "bulk and per-page paths returned different bytes"
    assert fast[0] == slow[0], (
        f"virtual time drifted: bulk {fast[0]!r} vs per-page {slow[0]!r}"
    )
    assert fast[2] == slow[2], {
        k: (fast[2].get(k), slow[2].get(k))
        for k in set(fast[2]) | set(slow[2])
        if fast[2].get(k) != slow[2].get(k)
    }


# ----------------------------------------------------------------------
# The vectorized page-align run computation vs a per-interval reference
# ----------------------------------------------------------------------

interval = st.tuples(
    st.integers(min_value=0, max_value=CHUNK_SIZE - 1),
    st.integers(min_value=1, max_value=8 * PAGE_SIZE),
)


def _reference_page_align(dirty, page_size, chunk_size):
    """The pre-vectorization per-interval coalescing loop."""
    out = []
    for start, stop in dirty:
        a = (start // page_size) * page_size
        b = min(-(-stop // page_size) * page_size, chunk_size)
        if out and a <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], b))
        else:
            out.append((a, b))
    return out


@settings(max_examples=50, deadline=None)
@given(spans=st.lists(interval, min_size=0, max_size=20))
def test_page_align_matches_reference(spans):
    from repro.fusefs.cache import ChunkCache

    dirty = IntervalSet()
    for start, length in spans:
        dirty.add(start, min(start + length, CHUNK_SIZE))

    class _Shim:
        page_size = PAGE_SIZE
        chunk_size = CHUNK_SIZE

    got = ChunkCache._page_align(_Shim(), dirty)
    want = _reference_page_align(list(dirty), PAGE_SIZE, CHUNK_SIZE)
    assert got == want


def test_access_run_is_one_summed_access():
    """``access_run``/``use_run`` equal one access of the summed size."""
    from repro.devices.base import AccessKind

    sizes = [4096, 4096, 123, 8192]

    def one(engine, device, gen):
        return engine.run(engine.process(gen))

    results = []
    for mode in ("run", "sum"):
        engine = Engine()
        cluster = make_hal_cluster(
            engine,
            HalConfig(num_nodes=1, cores_per_node=1, dram_per_node=1 * MiB,
                      ssd_per_node=1 * MiB),
        )
        dram = cluster.node(0).dram
        if mode == "run":
            one(engine, dram, dram.access_run(AccessKind.READ, sizes))
        else:
            one(engine, dram, dram.access(AccessKind.READ, sum(sizes)))
        results.append((engine.now, dict(cluster.metrics.snapshot("device."))))
    assert results[0] == results[1]
