"""Generative concurrency fuzzing of the full NVMalloc stack.

Earlier development found three real interleaving bugs (stale refetch
during eviction write-back, dirty-clear after the flush yield, fault-in
racing an in-flight page flush).  This test keeps hunting that class:
hypothesis generates per-rank operation scripts that run *concurrently*
on one node's shared caches, with private and node-shared variables, and
every read is checked against a reference model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import make_hal_cluster
from repro.cluster.hal import HalConfig
from repro.core import NVMalloc
from repro.sim import Engine
from repro.store import CHUNK_SIZE, Benefactor, Manager
from repro.util.units import KiB, MiB

NRANKS = 4
VAR_ELEMENTS = 24 * 1024  # 192 KiB per rank: spans pages and chunks

# One op: (kind, offset_frac, length_frac, value_seed)
op = st.tuples(
    st.sampled_from(["write", "read", "msync", "shared_write", "shared_read"]),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.01, max_value=0.3),
    st.integers(min_value=1, max_value=255),
)
script = st.lists(op, min_size=2, max_size=12)


@settings(max_examples=15, deadline=None)
@given(scripts=st.lists(script, min_size=NRANKS, max_size=NRANKS),
       seed=st.integers(0, 2**16))
def test_concurrent_ranks_never_corrupt(scripts, seed):
    # A fresh testbed per example: hypothesis shrinking re-runs with
    # repeated seeds, so no state may leak between examples.
    engine = Engine()
    cluster = make_hal_cluster(
        engine,
        HalConfig(num_nodes=4, cores_per_node=4, dram_per_node=16 * MiB,
                  ssd_per_node=64 * MiB),
    )
    store = Manager(cluster.node(0))
    for node in cluster.nodes:
        store.register_benefactor(Benefactor(node, contribution=16 * MiB))
    # Tiny caches maximize eviction pressure and interleaving windows.
    lib = NVMalloc(
        cluster.node(1 + seed % 3), store,
        fuse_cache_bytes=2 * CHUNK_SIZE, page_cache_bytes=64 * KiB,
    )
    shared_reference = np.zeros(VAR_ELEMENTS, dtype=np.float64)
    shared_key = f"fuzz.{seed}"
    barrier_count = [0]

    def rank(rank_id, ops):
        reference = np.zeros(VAR_ELEMENTS, dtype=np.float64)
        private = yield from lib.ssdmalloc_array(
            (VAR_ELEMENTS,), np.float64, owner=f"fz{seed}.r{rank_id}"
        )
        shared = yield from lib.ssdmalloc_array(
            (VAR_ELEMENTS,), np.float64, owner=f"fz{seed}.r{rank_id}",
            shared_key=shared_key,
        )
        for kind, off_frac, len_frac, value in ops:
            start = int(off_frac * (VAR_ELEMENTS - 1))
            length = max(1, int(len_frac * VAR_ELEMENTS))
            stop = min(start + length, VAR_ELEMENTS)
            if kind == "write":
                payload = np.full(stop - start, float(value * 1000 + rank_id))
                yield from private.write_slice(start, payload)
                reference[start:stop] = payload
            elif kind == "read":
                got = yield from private.read_slice(start, stop)
                assert np.array_equal(got, reference[start:stop]), (
                    f"rank {rank_id} private corruption at [{start}:{stop}]"
                )
            elif kind == "msync":
                yield from private.variable.region.msync()
            elif kind == "shared_write":
                # Each rank writes only its own stripe of the shared
                # variable, so concurrent writers never overlap.
                stripe = VAR_ELEMENTS // NRANKS
                s = rank_id * stripe + (start % max(1, stripe - 8))
                e = min(s + 8, (rank_id + 1) * stripe)
                payload = np.full(e - s, float(value))
                yield from shared.write_slice(s, payload)
                shared_reference[s:e] = payload
            elif kind == "shared_read":
                stripe = VAR_ELEMENTS // NRANKS
                s, e = rank_id * stripe, (rank_id + 1) * stripe
                got = yield from shared.read_slice(s, e)
                assert np.array_equal(got, shared_reference[s:e]), (
                    f"rank {rank_id} shared-stripe corruption"
                )
        # Final full verification of the private variable.
        final = yield from private.read_slice(0, VAR_ELEMENTS)
        assert np.array_equal(final, reference)
        yield from lib.ssdfree(private.variable)
        yield from lib.ssdfree(shared.variable)
        return True

    procs = [
        engine.process(rank(i, ops)) for i, ops in enumerate(scripts)
    ]
    assert all(engine.run_all(procs))
    _assert_index_consistent(lib)


def _assert_index_consistent(lib):
    """The per-path key indexes must mirror the LRU dicts exactly.

    Path-scoped operations (flush/sync/drop/invalidate) trust
    ``_by_path`` instead of scanning all entries, so any divergence —
    a stale bucket, an unindexed entry, a stamp out of LRU order —
    silently corrupts flushes under exactly the interleavings this
    fuzz generates.  Checked at quiescence, when nothing is in flight.
    """
    for cache, entries in (
        (lib.mount.cache, lib.mount.cache._entries),
        (lib.pagecache, lib.pagecache._pages),
    ):
        indexed = {
            (path, index)
            for path, bucket in cache._by_path.items()
            for index in bucket
        }
        assert indexed == set(entries), "per-path index diverged from LRU dict"
        assert all(cache._by_path.values()), "empty per-path bucket leaked"
        stamps = [entry.lru for entry in entries.values()]
        assert stamps == sorted(stamps), "LRU stamps out of dict order"
        assert not cache._inflight, "in-flight op survived quiescence"
        assert not cache._inflight_by_path, "stale in-flight bucket"
