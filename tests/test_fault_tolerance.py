"""Fault tolerance: replication, failover, re-replication, data loss."""

import pytest

from repro.errors import (
    BenefactorDownError,
    CheckpointError,
    ChunkUnavailableError,
    ReplicationError,
    StoreError,
)
from repro.faults import BenefactorCrash, FaultPlan, TransientSlowdown
from repro.store import CHUNK_SIZE, Benefactor, Manager, StoreClient
from repro.util.units import MiB
from tests.conftest import run


@pytest.fixture
def rstore(small_cluster):
    """Replicated aggregate store (r=2) over the 4-node cluster."""
    manager = Manager(small_cluster.node(0), replication=2)
    for node in small_cluster.nodes:
        manager.register_benefactor(Benefactor(node, contribution=16 * MiB))
    return manager


@pytest.fixture
def rclient(small_cluster, rstore):
    return StoreClient(small_cluster.node(1), rstore)


class TestReplicatedPlacement:
    def test_replicas_distinct_and_accounted(self, engine, rstore, rclient):
        def proc():
            return (yield from rclient.create("/f", 4 * CHUNK_SIZE))

        meta = run(engine, proc())
        for chunk_id in meta.chunk_ids:
            replicas = rstore.chunk_replicas(chunk_id)
            assert len(replicas) == 2
            assert len({b.name for b in replicas}) == 2
        # Capacity is accounted per replica: every copy debits its host.
        reserved = sum(b.reserved for b in rstore.benefactors())
        assert reserved == 2 * 4 * CHUNK_SIZE

    def test_r1_is_single_replica(self, engine, store, client):
        def proc():
            return (yield from client.create("/f", 2 * CHUNK_SIZE))

        meta = run(engine, proc())
        for chunk_id in meta.chunk_ids:
            assert len(store.chunk_replicas(chunk_id)) == 1
        assert sum(b.reserved for b in store.benefactors()) == 2 * CHUNK_SIZE

    def test_too_few_benefactors_rejected(self, engine, small_cluster):
        manager = Manager(small_cluster.node(0), replication=2)
        manager.register_benefactor(
            Benefactor(small_cluster.node(0), contribution=16 * MiB)
        )
        client = StoreClient(small_cluster.node(1), manager)

        def proc():
            yield from client.create("/f", CHUNK_SIZE)

        with pytest.raises(ReplicationError):
            run(engine, proc())

    def test_bad_replication_degree_rejected(self, small_cluster):
        with pytest.raises(StoreError):
            Manager(small_cluster.node(0), replication=0)


class TestFailover:
    def test_read_fails_over_to_surviving_replica(
        self, engine, small_cluster, rstore, rclient
    ):
        payload = b"replicated bytes" * 512

        def proc():
            yield from rclient.create("/f", CHUNK_SIZE)
            yield from rclient.write("/f", 0, payload)
            _, preferred = rstore.resolve_chunk("/f", 0, client="node001")
            preferred.crash()
            return (yield from rclient.read("/f", 0, len(payload)))

        assert run(engine, proc()) == payload
        metrics = small_cluster.metrics
        assert metrics.count("store.client.retries") >= 1
        # The failure report forfeited the crashed benefactor's space.
        crashed = [b for b in rstore.benefactors() if b.crashed]
        assert crashed and all(b.reserved == 0 for b in crashed)

    def test_write_fails_over_and_data_survives(
        self, engine, rstore, rclient
    ):
        payload = b"written after crash" * 256

        def proc():
            yield from rclient.create("/f", CHUNK_SIZE)
            chunk_id = rstore.lookup("/f").chunk_ids[0]
            rstore.chunk_replicas(chunk_id)[0].crash()
            yield from rclient.write("/f", 64, payload)
            return (yield from rclient.read("/f", 64, len(payload)))

        assert run(engine, proc()) == payload

    def test_r1_crash_raises_chunk_unavailable(self, engine, store, client):
        def proc():
            yield from client.create("/f", CHUNK_SIZE)
            yield from client.write("/f", 0, b"doomed")
            _, owner = store.resolve_chunk("/f", 0)
            owner.crash()
            yield from client.read("/f", 0, 6)

        with pytest.raises(ChunkUnavailableError):
            run(engine, proc())
        assert store.metrics.value("store.manager.chunks_lost") >= 1

    def test_admin_offline_keeps_reservations_and_data(
        self, engine, store, client
    ):
        def proc():
            yield from client.create("/f", CHUNK_SIZE)
            yield from client.write("/f", 0, b"still here")
            return store.resolve_chunk("/f", 0)

        _, owner = run(engine, proc())
        reserved = owner.reserved
        store.mark_offline(owner.name)  # administrative: not crashed
        assert owner.reserved == reserved
        with pytest.raises(BenefactorDownError):
            store.resolve_chunk("/f", 0)
        store.mark_online(owner.name)
        store.resolve_chunk("/f", 0)

        def readback():
            return (yield from client.read("/f", 0, 10))

        assert run(engine, readback()) == b"still here"


class TestRereplication:
    def _crash_and_detect(self, engine, rstore, victim):
        victim.crash()

        def detect():
            return (yield from rstore.monitor(0.01, rounds=1))

        assert run(engine, detect()) == 1

    def test_degree_restored_with_reservations_moved(
        self, engine, rstore, rclient
    ):
        def proc():
            yield from rclient.create("/f", 4 * CHUNK_SIZE)
            yield from rclient.write("/f", 0, b"x" * 4 * CHUNK_SIZE)

        run(engine, proc())
        meta = rstore.lookup("/f")
        victim = rstore.chunk_replicas(meta.chunk_ids[0])[0]
        held = victim.reserved
        assert held > 0
        self._crash_and_detect(engine, rstore, victim)
        assert victim.reserved == 0  # forfeited space released

        def repair():
            return (yield from rstore.rereplicate_pending())

        repaired = run(engine, repair())
        assert repaired == held // CHUNK_SIZE
        assert rstore.under_replicated() == ()
        assert rstore.rereplication_pending == 0
        for chunk_id in meta.chunk_ids:
            replicas = rstore.chunk_replicas(chunk_id)
            assert len(replicas) == 2
            assert victim not in replicas
        # The re-replication targets now hold the moved reservations.
        live_reserved = sum(b.reserved for b in rstore.benefactors())
        assert live_reserved == 2 * 4 * CHUNK_SIZE
        metrics = rstore.metrics
        assert metrics.value("store.manager.chunks_rereplicated") == repaired
        assert metrics.value("store.manager.rereplication_bytes") > 0

    def test_repaired_replica_serves_reads(self, engine, rstore, rclient):
        payload = b"survives two crashes" * 128

        def proc():
            yield from rclient.create("/f", CHUNK_SIZE)
            yield from rclient.write("/f", 0, payload)

        run(engine, proc())
        chunk_id = rstore.lookup("/f").chunk_ids[0]
        original = set(rstore.chunk_replicas(chunk_id))
        self._crash_and_detect(engine, rstore, rstore.chunk_replicas(chunk_id)[0])

        def repair():
            yield from rstore.rereplicate_pending()

        run(engine, repair())
        # Kill the surviving original too: only the repaired copy remains.
        survivor = next(
            b for b in rstore.chunk_replicas(chunk_id) if b in original
        )
        self._crash_and_detect(engine, rstore, survivor)

        def readback():
            return (yield from rclient.read("/f", 0, len(payload)))

        assert run(engine, readback()) == payload

    def test_write_during_fill_not_clobbered(self, engine, small_cluster):
        b = Benefactor(small_cluster.node(0), contribution=1 * MiB)
        snapshot = bytes([7]) * CHUNK_SIZE

        def proc():
            b.begin_fill(1)
            # A write-through lands while the bulk copy is in flight...
            yield from b.store_chunk("node001", 1, b"NEW!", offset=0)
            # ...then the copy's (stale at [0, 4)) snapshot arrives.
            yield from b.complete_fill(1, snapshot)
            return (yield from b.fetch_chunk("node001", 1, 0, 8))

        assert run(engine, proc()) == b"NEW!" + bytes([7]) * 4

    def test_no_target_stalls_until_capacity_returns(
        self, engine, small_cluster
    ):
        # Two benefactors, r=2: a crash leaves no fresh target.
        manager = Manager(small_cluster.node(0), replication=2)
        for node in small_cluster.nodes[:2]:
            manager.register_benefactor(Benefactor(node, contribution=16 * MiB))
        client = StoreClient(small_cluster.node(1), manager)

        def proc():
            yield from client.create("/f", CHUNK_SIZE)
            yield from client.write("/f", 0, b"parked")

        run(engine, proc())
        victim = manager.benefactors()[0]
        victim.crash()

        def detect_and_drain():
            yield from manager.monitor(0.01, rounds=1)
            yield from manager.rereplicate_pending()

        run(engine, detect_and_drain())
        assert manager.rereplication_stalled == 1
        assert manager.under_replicated() != ()
        # Capacity returns: a fresh benefactor re-queues the stalled chunk.
        manager.register_benefactor(
            Benefactor(small_cluster.node(2), contribution=16 * MiB)
        )

        def drain():
            yield from manager.rereplicate_pending()

        run(engine, drain())
        assert manager.rereplication_stalled == 0
        assert manager.under_replicated() == ()


class TestCheckpointUnderFaults:
    def test_lost_chunk_fails_checkpoint_with_lost_set(
        self, engine, small_cluster, store, nvmalloc
    ):
        def alloc():
            return (yield from nvmalloc.ssdmalloc(2 * CHUNK_SIZE, owner="t"))

        variable = run(engine, alloc())
        chunk_id = store.lookup(variable.backing_path).chunk_ids[0]
        owner = store.chunk_replicas(chunk_id)[0]
        owner.crash()
        store.mark_offline(owner.name)  # r=1: chunk is now lost
        assert chunk_id in store.lost_chunks(variable.backing_path)

        def ckpt():
            yield from nvmalloc.ssdcheckpoint("app", 0, b"d", [("v", variable)])

        with pytest.raises(CheckpointError) as excinfo:
            run(engine, ckpt())
        assert chunk_id in excinfo.value.lost_chunk_ids
        (lost,) = excinfo.value.lost_chunks
        assert lost.chunk_id == chunk_id
        assert lost.epoch == 0
        assert lost.replicas == (owner.name,)

    def test_degraded_but_readable_checkpoint_succeeds(
        self, engine, small_cluster, rstore
    ):
        from repro.core import NVMalloc
        from repro.util.units import KiB

        lib = NVMalloc(
            small_cluster.node(1),
            rstore,
            fuse_cache_bytes=1 * MiB,
            page_cache_bytes=512 * KiB,
        )

        def proc():
            variable = yield from lib.ssdmalloc(CHUNK_SIZE, owner="t")
            yield from variable.write(0, b"degraded but alive")
            chunk_id = rstore.lookup(variable.backing_path).chunk_ids[0]
            rstore.chunk_replicas(chunk_id)[0].crash()
            yield from rstore.monitor(0.01, rounds=1)
            record = yield from lib.ssdcheckpoint(
                "app", 0, b"d", [("v", variable)]
            )
            dram, variables = yield from lib.restore("app", 0)
            return record, dram, variables["v"][:18]

        record, dram, head = run(engine, proc())
        assert dram == b"d"
        assert head == b"degraded but alive"
        assert record.bytes_linked == CHUNK_SIZE

    def test_restore_after_crash_rides_failover(self, engine, small_cluster, rstore):
        """r=2: a cold restart restores through the surviving replicas."""
        from repro.core import NVMalloc
        from repro.util.units import KiB

        lib = NVMalloc(
            small_cluster.node(1),
            rstore,
            fuse_cache_bytes=1 * MiB,
            page_cache_bytes=512 * KiB,
        )

        def proc():
            variable = yield from lib.ssdmalloc(2 * CHUNK_SIZE, owner="t")
            yield from variable.write(0, b"survives the crash")
            record = yield from lib.ssdcheckpoint("app", 0, b"d", [("v", variable)])
            victim = rstore.chunk_replicas(
                rstore.lookup(record.path).chunk_ids[-1]
            )[0]
            victim.crash()
            yield from rstore.monitor(0.01, rounds=1)
            # A restarted context: cold caches, no client-side records —
            # restore resolves purely against the manager's commit chain.
            restarted = NVMalloc(
                small_cluster.node(2),
                rstore,
                fuse_cache_bytes=256 * KiB,
                page_cache_bytes=256 * KiB,
            )
            dram, variables = yield from restarted.restore("app", 0)
            return dram, variables["v"][:18]

        dram, head = run(engine, proc())
        assert dram == b"d"
        assert head == b"survives the crash"
        assert rstore.metrics.value("store.manager.benefactors_failed") >= 1

    def test_r1_crash_restore_raises_typed_error(
        self, engine, small_cluster, store, nvmalloc
    ):
        """r=1: losing the only replica fails restores with loss details."""
        from repro.core import NVMalloc
        from repro.errors import RestoreError
        from repro.util.units import KiB

        def proc():
            variable = yield from nvmalloc.ssdmalloc(CHUNK_SIZE, owner="t")
            yield from variable.write(0, b"doomed")
            record = yield from nvmalloc.ssdcheckpoint(
                "app", 0, b"d", [("v", variable)]
            )
            victims = {
                b.name: b
                for chunk_id in store.lookup(record.path).chunk_ids
                for b in store.chunk_replicas(chunk_id)
            }
            for victim in victims.values():
                victim.crash()
                store.mark_offline(victim.name)
            restarted = NVMalloc(
                small_cluster.node(2),
                store,
                fuse_cache_bytes=256 * KiB,
                page_cache_bytes=256 * KiB,
            )
            yield from restarted.restore("app", 0)

        with pytest.raises(RestoreError) as excinfo:
            run(engine, proc())
        assert excinfo.value.epoch == 0
        assert excinfo.value.lost_chunks
        for lost in excinfo.value.lost_chunks:
            assert lost.epoch == 0
            assert lost.replicas  # names the replica set that held it

    def test_gc_free_deferred_behind_inflight_repair(
        self, engine, small_cluster, rstore
    ):
        """Chain GC of a chunk mid-re-replication defers the physical free
        until the fill settles: GC never races repair."""
        from repro.core import NVMalloc
        from repro.util.units import KiB

        lib = NVMalloc(
            small_cluster.node(1),
            rstore,
            fuse_cache_bytes=1 * MiB,
            page_cache_bytes=512 * KiB,
        )
        observed = {}

        def proc():
            variable = yield from lib.ssdmalloc(CHUNK_SIZE, owner="t")
            yield from variable.write(0, b"repair me")
            for step in range(2):
                yield from lib.ssdcheckpoint(
                    "app", step, b"d%d" % step, [("v", variable)], mode="full"
                )
            old = rstore.epoch_record("app", 0)
            chunk_id = rstore.lookup(old.path).chunk_ids[-1]
            rstore.chunk_replicas(chunk_id)[0].crash()
            yield from rstore.monitor(0.01, rounds=1)
            repair = engine.process(rstore.rereplicate_pending())
            # The repair queue holds every chunk the crash degraded; poll
            # until the fill of *our* chunk is in flight.
            for _ in range(100_000):
                if any(
                    b.filling(chunk_id)
                    for b in rstore.chunk_replicas(chunk_id)
                ):
                    break
                yield engine.timeout(1e-6)
            else:
                raise AssertionError("fill never started")
            reclaimed = yield from lib.gc_checkpoints("app", keep_last=1)
            observed["deferred"] = chunk_id in rstore._deferred_release
            observed["still_known"] = rstore.chunk_known(chunk_id)
            yield repair
            observed["reclaimed_then"] = reclaimed
            observed["known_after"] = rstore.chunk_known(chunk_id)

        run(engine, proc())
        assert observed["deferred"] is True
        assert observed["still_known"] is True  # data intact under the fill
        assert observed["known_after"] is False  # freed once the fill settled
        # The deferred free still counts as GC reclamation.
        assert rstore.metrics.value("store.manager.gc_reclaimed_bytes") > 0
        assert rstore.under_replicated() == ()


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        names = ["node000", "node001", "node002", "node003"]
        one = FaultPlan.seeded(42, names, crashes=2, slowdowns=1)
        two = FaultPlan.seeded(42, names, crashes=2, slowdowns=1)
        assert one == two
        crash_victims = [
            e.benefactor for e in one.events if isinstance(e, BenefactorCrash)
        ]
        assert len(set(crash_victims)) == 2  # without replacement
        for event in one.events:
            assert 0.25 <= event.at <= 1.0  # default window

    def test_too_many_crashes_rejected(self):
        with pytest.raises(StoreError):
            FaultPlan.seeded(1, ["a"], crashes=2)

    def test_inject_applies_at_virtual_times(self, engine, store):
        victim = store.benefactors()[2]
        slowed = store.benefactors()[3]
        plan = FaultPlan(
            events=(
                BenefactorCrash(at=0.5, benefactor=victim.name),
                TransientSlowdown(
                    at=0.2, benefactor=slowed.name,
                    duration=0.3, extra_per_op=0.01,
                ),
            )
        )
        engine.process(plan.inject(store))

        def probe():
            yield engine.timeout(0.4)
            assert not victim.crashed  # crash is at 0.5, not yet
            assert slowed._slow_until == pytest.approx(0.5)
            yield engine.timeout(0.2)
            assert victim.crashed

        run(engine, probe())

    def test_inject_unknown_benefactor_rejected(self, engine, store):
        plan = FaultPlan(events=(BenefactorCrash(at=0.1, benefactor="ghost"),))
        with pytest.raises(StoreError):
            run(engine, plan.inject(store))

    def test_slowdown_charges_extra_time(self, engine, small_cluster):
        b = Benefactor(small_cluster.node(0), contribution=1 * MiB)

        def proc():
            yield from b.store_chunk("node001", 1, b"x" * 4096)
            b.slow_down(engine.now + 1.0, 0.25)
            before = engine.now
            yield from b.fetch_chunk("node001", 1, 0, 4096)
            slow = engine.now - before
            yield engine.timeout(1.0)  # slowdown expired
            before = engine.now
            yield from b.fetch_chunk("node001", 1, 0, 4096)
            return slow, engine.now - before

        slow, fast = run(engine, proc())
        assert slow - fast == pytest.approx(0.25)


class TestCrashInPhase:
    NAMES = ["node000", "node001", "node002", "node003"]
    WINDOWS = {"ckpt1": (10.0, 20.0), "restore": (30.0, 31.0)}

    def test_events_land_inside_named_phase(self):
        plan = FaultPlan.crash_in_phase(
            7, self.NAMES, self.WINDOWS, "ckpt1", position=(0.5, 1.0)
        )
        assert len(plan.events) == 1
        (event,) = plan.events
        assert isinstance(event, BenefactorCrash)
        assert 15.0 <= event.at <= 20.0  # narrowed to the back half

    def test_deterministic_for_seed(self):
        one = FaultPlan.crash_in_phase(42, self.NAMES, self.WINDOWS, "restore")
        two = FaultPlan.crash_in_phase(42, self.NAMES, self.WINDOWS, "restore")
        assert one == two

    def test_unknown_phase_rejected(self):
        with pytest.raises(StoreError, match="unknown phase"):
            FaultPlan.crash_in_phase(1, self.NAMES, self.WINDOWS, "ghost")

    def test_inverted_window_rejected(self):
        with pytest.raises(StoreError, match="inverted"):
            FaultPlan.crash_in_phase(1, self.NAMES, {"p": (5.0, 4.0)}, "p")

    def test_bad_position_rejected(self):
        with pytest.raises(StoreError):
            FaultPlan.crash_in_phase(
                1, self.NAMES, self.WINDOWS, "ckpt1", position=(0.9, 0.1)
            )
