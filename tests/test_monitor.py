"""Manager heartbeat monitoring: detection, accounting, network charges."""

from repro.store import Benefactor
from repro.util.units import MiB
from tests.conftest import run


class TestMonitorRounds:
    def test_bounded_rounds_report_marked_count(self, engine, store):
        store.benefactors()[1].crash()
        store.benefactors()[3].crash()

        def proc():
            return (yield from store.monitor(0.01, rounds=1))

        assert run(engine, proc()) == 2
        online = [b for b in store.benefactors() if b.online]
        assert len(online) == 2

    def test_healthy_fleet_marks_nothing(self, engine, store):
        def proc():
            return (yield from store.monitor(0.01, rounds=3))

        assert run(engine, proc()) == 0
        assert all(b.online for b in store.benefactors())


class TestDetectionLatency:
    def test_detection_within_one_interval(self, engine, store):
        victim = store.benefactors()[1]

        def crasher():
            yield engine.timeout(0.25)
            victim.crash()

        engine.process(crasher())
        engine.process(store.monitor(0.1, rounds=None))

        def probe():
            # Crash lands at 0.25, between the 0.2 and 0.3 heartbeats:
            # at 0.29 the store still believes the benefactor is up...
            yield engine.timeout(0.29)
            assert victim.crashed and victim.online
            # ...and by 0.35 the 0.3 heartbeat has taken it offline.
            yield engine.timeout(0.06)
            assert not victim.online

        run(engine, probe())


class TestMonitorNetworkCharges:
    def test_crashed_benefactor_never_replies(
        self, engine, small_cluster, store
    ):
        metrics = small_cluster.metrics
        # node002 hosts only a benefactor (manager lives on node000, so
        # its own pings are same-endpoint and free).
        victim = next(b for b in store.benefactors() if b.name == "node002")
        victim.crash()

        def one_round():
            return (yield from store.monitor(0.01, rounds=1))

        assert run(engine, one_round()) == 1
        rx = metrics.value("network.node002.rx.bytes")
        assert rx == 256  # the ping arrived...
        assert metrics.value("network.node002.tx.bytes") == 0  # ...no reply

        # Out-of-service benefactors are skipped in later rounds: no
        # further ping traffic to a node already marked down.
        assert run(engine, one_round()) == 0
        assert metrics.value("network.node002.rx.bytes") == rx

    def test_healthy_benefactor_ping_pong(self, engine, small_cluster, store):
        metrics = small_cluster.metrics

        def one_round():
            return (yield from store.monitor(0.01, rounds=1))

        run(engine, one_round())
        assert metrics.value("network.node002.rx.bytes") == 256
        assert metrics.value("network.node002.tx.bytes") == 256


class TestSkipRegisteredOffline:
    def test_admin_offline_is_not_pinged(self, engine, small_cluster):
        from repro.store import Manager

        manager = Manager(small_cluster.node(0))
        for node in small_cluster.nodes:
            manager.register_benefactor(Benefactor(node, contribution=16 * MiB))
        manager.mark_offline("node003")
        metrics = small_cluster.metrics

        def one_round():
            return (yield from manager.monitor(0.01, rounds=1))

        assert run(engine, one_round()) == 0
        assert metrics.value("network.node003.rx.bytes") == 0
