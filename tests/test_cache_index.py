"""Per-path index behaviour of the chunk cache and the page cache.

The fast path replaced O(all-entries) scans in the path-scoped
operations (``flush_path`` / ``drop_path`` / ``invalidate_path``) with a
``dict[path, set[index]]`` index.  These tests pin that property by
counting which keys each operation actually visits, and cover the
satellites that ride on the same machinery: ``flush_all`` draining
in-flight eviction write-backs, MAP_PRIVATE overlay reads skipping
backing fetches, and read-ahead accounting in ``prefetched_bytes``.
"""

from collections import OrderedDict

import pytest

from repro.fusefs import FuseMount, OpenFlags
from repro.mem import MmapRegion, PageCache
from repro.store import CHUNK_SIZE, PAGE_SIZE
from repro.util.units import KiB, MiB
from tests.conftest import run


class CountingDict(OrderedDict):
    """OrderedDict that tallies per-key visits and whole-dict scans."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.key_visits = 0
        self.full_scans = 0

    def reset(self):
        self.key_visits = 0
        self.full_scans = 0

    def __getitem__(self, key):
        self.key_visits += 1
        return super().__getitem__(key)

    def get(self, key, default=None):
        self.key_visits += 1
        return super().get(key, default)

    def __delitem__(self, key):
        self.key_visits += 1
        super().__delitem__(key)

    def pop(self, key, *default):
        self.key_visits += 1
        return super().pop(key, *default)

    def __iter__(self):
        self.full_scans += 1
        return super().__iter__()

    def keys(self):
        self.full_scans += 1
        return super().keys()

    def values(self):
        self.full_scans += 1
        return super().values()

    def items(self):
        self.full_scans += 1
        return super().items()


@pytest.fixture
def mount(small_cluster, store):
    # Roomy enough that three files x three chunks stay resident.
    return FuseMount(small_cluster.node(1), store, cache_bytes=16 * CHUNK_SIZE)


def make_file(engine, mount, name, size):
    def proc():
        return (
            yield from mount.open(
                name, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=size
            )
        )

    return run(engine, proc())


PATHS = ["/idx/a", "/idx/b", "/idx/c"]
CHUNKS_PER_PATH = 3


def _populate_chunk_cache(engine, mount):
    """Dirty CHUNKS_PER_PATH chunks of every path in the chunk cache."""
    for name in PATHS:
        make_file(engine, mount, name, CHUNKS_PER_PATH * CHUNK_SIZE)

        def proc(name=name):
            for chunk in range(CHUNKS_PER_PATH):
                yield from mount.cache.write(
                    name, chunk, 0, bytes([chunk + 1]) * PAGE_SIZE
                )

        run(engine, proc())


class TestChunkCacheVisitsOnlyItsPath:
    def _instrument(self, mount):
        cache = mount.cache
        counting = CountingDict(cache._entries)
        cache._entries = counting
        return cache, counting

    def test_flush_path_skips_other_paths(self, engine, mount):
        _populate_chunk_cache(engine, mount)
        cache, counting = self._instrument(mount)
        run(engine, cache.flush_path(PATHS[0]))
        assert counting.full_scans == 0
        # flush_path looks each of the path's entries up a couple of
        # times (LRU sort + revalidation); the other paths' six entries
        # must not be visited at all.
        assert counting.key_visits <= 4 * CHUNKS_PER_PATH
        assert len(cache._entries) == len(PATHS) * CHUNKS_PER_PATH

    def test_invalidate_path_skips_other_paths(self, engine, mount):
        _populate_chunk_cache(engine, mount)
        cache, counting = self._instrument(mount)
        cache.invalidate_path(PATHS[1])
        assert counting.full_scans == 0
        assert counting.key_visits <= 2 * CHUNKS_PER_PATH
        remaining = {path for path, _ in cache._entries}
        assert remaining == {PATHS[0], PATHS[2]}

    def test_index_matches_entries(self, engine, mount):
        _populate_chunk_cache(engine, mount)
        cache = mount.cache
        indexed = {
            (path, index)
            for path, bucket in cache._by_path.items()
            for index in bucket
        }
        assert indexed == set(cache._entries)
        assert all(bucket for bucket in cache._by_path.values())


class TestPageCacheVisitsOnlyItsPath:
    PAGES_PER_PATH = 8

    def _populate(self, engine, mount, pagecache):
        for name in PATHS:
            make_file(engine, mount, name, CHUNK_SIZE)

            def proc(name=name):
                for page in range(self.PAGES_PER_PATH):
                    yield from pagecache.write(
                        name, page * PAGE_SIZE, bytes([page + 1]) * PAGE_SIZE
                    )

            run(engine, proc())

    def test_drop_path_skips_other_paths(self, engine, mount):
        pagecache = PageCache(mount, capacity_bytes=256 * KiB)
        self._populate(engine, mount, pagecache)
        counting = CountingDict(pagecache._pages)
        pagecache._pages = counting
        run(engine, pagecache.drop_path(PATHS[0], sync=False))
        assert counting.full_scans == 0
        assert counting.key_visits <= 2 * self.PAGES_PER_PATH
        remaining = {path for path, _ in pagecache._pages}
        assert remaining == {PATHS[1], PATHS[2]}

    def test_sync_path_skips_other_paths(self, engine, mount):
        pagecache = PageCache(mount, capacity_bytes=256 * KiB)
        self._populate(engine, mount, pagecache)
        counting = CountingDict(pagecache._pages)
        pagecache._pages = counting
        run(engine, pagecache.sync_path(PATHS[2]))
        assert counting.full_scans == 0
        # One lookup per page to snapshot, plus per-page revalidation
        # while the batched flush goes out.
        assert counting.key_visits <= 4 * self.PAGES_PER_PATH
        assert len(pagecache._pages) == len(PATHS) * self.PAGES_PER_PATH

    def test_index_matches_pages(self, engine, mount):
        pagecache = PageCache(mount, capacity_bytes=256 * KiB)
        self._populate(engine, mount, pagecache)
        indexed = {
            (path, page)
            for path, bucket in pagecache._by_path.items()
            for page in bucket
        }
        assert indexed == set(pagecache._pages)
        assert all(bucket for bucket in pagecache._by_path.values())


class TestFlushAllDrainsInflight:
    def test_flush_all_waits_for_eviction_writebacks(
        self, engine, small_cluster, store
    ):
        # A 2-chunk cache: dirtying a third chunk starts an eviction
        # write-back that is still in flight when flush_all begins.
        mount = FuseMount(
            small_cluster.node(1), store, cache_bytes=2 * CHUNK_SIZE
        )
        make_file(engine, mount, "/drain", 3 * CHUNK_SIZE)
        payload = {c: bytes([c + 65]) * PAGE_SIZE for c in range(3)}

        def writer():
            for chunk in range(3):
                yield from mount.cache.write(
                    "/drain", chunk, 0, payload[chunk]
                )

        def flusher():
            # Enter flush_all at a moment when an eviction write-back
            # is mid-flight (virtual-time polling is deterministic).
            while not mount.cache._inflight:
                yield engine.timeout(1e-7)
            yield from mount.cache.flush_all()
            # Nothing may still be shipping once a global flush returns.
            assert not mount.cache._inflight
            assert not mount.cache._inflight_by_path

        engine.run_all([engine.process(writer()), engine.process(flusher())])
        # Settle any write racing the sweep, then verify durability of
        # every chunk through a cold cache.
        run(engine, mount.cache.flush_path("/drain"))
        mount.cache.invalidate_path("/drain")

        def check():
            for chunk in range(3):
                got = yield from mount.cache.read(
                    "/drain", chunk, 0, PAGE_SIZE
                )
                assert got == payload[chunk], f"chunk {chunk} lost"

        run(engine, check())


class TestPrivateOverlayReads:
    def test_overlaid_pages_skip_backing_fetch(self, engine, mount):
        pagecache = PageCache(mount, capacity_bytes=256 * KiB)
        make_file(engine, mount, "/priv", CHUNK_SIZE)
        region = MmapRegion(pagecache, "/priv", CHUNK_SIZE, shared=False)

        def proc():
            # COW the first two pages (the overlay build itself may
            # fault the backing pages in — that is expected).
            yield from region.write(0, b"p" * (2 * PAGE_SIZE))
            # Cold caches: any backing read from here on would fetch.
            yield from pagecache.drop_path("/priv", sync=False)
            mount.cache.invalidate_path("/priv")
            fetched_before = mount.cache.stats.fetched_bytes
            misses_before = pagecache.stats.misses
            got = yield from region.read(0, 2 * PAGE_SIZE)
            assert bytes(got) == b"p" * (2 * PAGE_SIZE)
            # Fully-overlaid pages are served from the COW copies: no
            # page-cache miss, no chunk fetch.
            assert pagecache.stats.misses == misses_before
            assert mount.cache.stats.fetched_bytes == fetched_before
            # A range reaching past the overlay still reads the backing
            # file for the uncovered pages only.
            yield from region.read(0, 3 * PAGE_SIZE)
            assert pagecache.stats.misses > misses_before

        run(engine, proc())


class TestPrefetchAccounting:
    def test_readahead_counts_prefetched_bytes(
        self, engine, small_cluster, store
    ):
        mount = FuseMount(
            small_cluster.node(1),
            store,
            cache_bytes=8 * CHUNK_SIZE,
            readahead_chunks=1,
        )
        make_file(engine, mount, "/ra", 4 * CHUNK_SIZE)

        def proc():
            yield from mount.cache.read("/ra", 0, 0, PAGE_SIZE)

        run(engine, proc())
        engine.run_all([])  # let the background prefetch complete
        stats = mount.cache.stats
        assert stats.prefetched_bytes == CHUNK_SIZE
        assert stats.prefetched_bytes <= stats.fetched_bytes
