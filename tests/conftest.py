"""Shared fixtures: a small simulated testbed with an aggregate store."""

import pytest

from repro.cluster import make_hal_cluster
from repro.cluster.hal import HalConfig
from repro.core import NVMalloc
from repro.sim import Engine
from repro.store import Benefactor, Manager, StoreClient
from repro.util.units import KiB, MiB


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def small_cluster(engine):
    """4 nodes x 4 cores, tiny capacities, all SSD-equipped."""
    config = HalConfig(
        num_nodes=4,
        cores_per_node=4,
        dram_per_node=16 * MiB,
        ssd_per_node=64 * MiB,
    )
    return make_hal_cluster(engine, config)


@pytest.fixture
def store(engine, small_cluster):
    """Aggregate store: manager on node 0, benefactors on all 4 nodes."""
    manager = Manager(small_cluster.node(0))
    for node in small_cluster.nodes:
        manager.register_benefactor(
            Benefactor(node, contribution=16 * MiB)
        )
    return manager


@pytest.fixture
def client(small_cluster, store):
    """Store client on node 1 (manager is remote to it)."""
    return StoreClient(small_cluster.node(1), store)


@pytest.fixture
def nvmalloc(small_cluster, store):
    """NVMalloc context on node 1 with small caches."""
    return NVMalloc(
        small_cluster.node(1),
        store,
        fuse_cache_bytes=1 * MiB,
        page_cache_bytes=512 * KiB,
    )


def run(engine, generator):
    """Drive a process generator to completion, returning its value."""
    return engine.run(engine.process(generator))
