"""Tests for the FUSE-like layer: mount, chunk cache, dirty tracking."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import BadFileDescriptorError, FuseError
from repro.fusefs import FuseMount, OpenFlags
from repro.store import CHUNK_SIZE, PAGE_SIZE
from repro.util.units import KiB, MiB
from tests.conftest import run


@pytest.fixture
def mount(small_cluster, store):
    return FuseMount(small_cluster.node(1), store, cache_bytes=1 * MiB)


class TestOpenFlags:
    def test_rdonly(self):
        assert OpenFlags.O_RDONLY.readable
        assert not OpenFlags.O_RDONLY.writable

    def test_rdwr(self):
        flags = OpenFlags.O_RDWR
        assert flags.readable and flags.writable

    def test_wronly(self):
        assert not OpenFlags.O_WRONLY.readable
        assert OpenFlags.O_WRONLY.writable


class TestMountLifecycle:
    def test_create_open_close(self, engine, mount):
        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=1000
            )
            assert mount.stat_size("/f") == 1000
            yield from mount.close(fd)
            fd2 = yield from mount.open("/f", OpenFlags.O_RDONLY)
            yield from mount.close(fd2)

        run(engine, proc())

    def test_create_requires_size(self, engine, mount):
        def proc():
            yield from mount.open("/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT)

        with pytest.raises(FuseError):
            run(engine, proc())

    def test_bad_fd(self, engine, mount):
        with pytest.raises(BadFileDescriptorError):
            run(engine, mount.pread(99, 0, 1))

    def test_unlink_open_file_rejected(self, engine, mount):
        def proc():
            yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=10
            )
            yield from mount.unlink("/f")

        with pytest.raises(FuseError):
            run(engine, proc())

    def test_write_to_readonly_rejected(self, engine, mount):
        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_CREAT | OpenFlags.O_RDONLY, size=10
            )
            yield from mount.pwrite(fd, 0, b"x")

        with pytest.raises(FuseError):
            run(engine, proc())

    def test_fallocate_within_reservation(self, engine, mount):
        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=1000
            )
            yield from mount.fallocate(fd, 500)
            with pytest.raises(FuseError):
                yield from mount.fallocate(fd, 2000)

        run(engine, proc())


class TestDataPath:
    def test_o_rdwr_read_your_writes(self, engine, mount):
        """The paper's O_RDWR requirement: written data is immediately
        readable (§III-C)."""

        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=2 * CHUNK_SIZE
            )
            yield from mount.pwrite(fd, 1234, b"immediate")
            return (yield from mount.pread(fd, 1234, 9))

        assert run(engine, proc()) == b"immediate"

    def test_sequential_read_write(self, engine, mount):
        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=100
            )
            yield from mount.write(fd, b"abc")
            yield from mount.write(fd, b"def")
            fd2 = yield from mount.open("/f", OpenFlags.O_RDONLY)
            return (yield from mount.read(fd2, 6))

        assert run(engine, proc()) == b"abcdef"

    def test_read_past_eof_truncates(self, engine, mount):
        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=10
            )
            yield from mount.pwrite(fd, 0, b"0123456789")
            return (yield from mount.read(fd, 100))

        assert run(engine, proc()) == b"0123456789"

    def test_cross_chunk_write(self, engine, mount):
        payload = bytes(range(256)) * ((CHUNK_SIZE // 256) + 10)

        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=3 * CHUNK_SIZE
            )
            yield from mount.pwrite(fd, CHUNK_SIZE - 100, payload)
            return (yield from mount.pread(fd, CHUNK_SIZE - 100, len(payload)))

        assert run(engine, proc()) == payload

    def test_persists_through_cache_flush(self, engine, mount, store):
        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=CHUNK_SIZE
            )
            yield from mount.pwrite(fd, 0, b"durable")
            yield from mount.fsync(fd)
            mount.cache.invalidate_path("/f")  # drop the cache entirely
            return (yield from mount.pread(fd, 0, 7))

        assert run(engine, proc()) == b"durable"


class TestChunkCacheBehaviour:
    def test_whole_chunk_fetched_on_byte_read(self, engine, mount):
        """One byte of access pulls a full 256 KB chunk (granularity
        bridging, §III-D)."""

        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=CHUNK_SIZE
            )
            yield from mount.pwrite(fd, 0, bytes(CHUNK_SIZE))
            yield from mount.fsync(fd)
            mount.cache.invalidate_path("/f")
            before = mount.cache.stats.fetched_bytes
            yield from mount.pread(fd, 5000, 1)
            return mount.cache.stats.fetched_bytes - before

        assert run(engine, proc()) == CHUNK_SIZE

    def test_reuse_hits_cache(self, engine, mount):
        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=CHUNK_SIZE
            )
            yield from mount.pread(fd, 0, 100)
            before = mount.cache.stats.fetched_bytes
            for offset in range(0, CHUNK_SIZE, PAGE_SIZE):
                yield from mount.pread(fd, offset, 10)
            return mount.cache.stats.fetched_bytes - before

        assert run(engine, proc()) == 0

    def test_lru_eviction_order(self, engine, mount):
        capacity = mount.cache.capacity_chunks

        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT,
                size=(capacity + 1) * CHUNK_SIZE,
            )
            for index in range(capacity + 1):
                yield from mount.pread(fd, index * CHUNK_SIZE, 1)
            return mount.cache.cached_keys()

        keys = run(engine, proc())
        # Chunk 0 (oldest) was evicted; the rest remain in LRU order.
        assert ("/f", 0) not in keys
        assert keys == [("/f", i) for i in range(1, capacity + 1)]

    def test_dirty_page_writeback_volume(self, engine, mount, small_cluster):
        """Evicting a chunk with one dirty byte ships one page, not 256 KB
        (the Table VII optimization)."""

        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=CHUNK_SIZE
            )
            yield from mount.pwrite(fd, 10_000, b"z")
            before = mount.cache.stats.writeback_bytes
            yield from mount.fsync(fd)
            return mount.cache.stats.writeback_bytes - before

        assert run(engine, proc()) == PAGE_SIZE

    def test_unoptimized_writes_whole_chunk(self, engine, small_cluster, store):
        mount = FuseMount(
            small_cluster.node(2), store, cache_bytes=1 * MiB,
            dirty_page_writeback=False,
        )

        def proc():
            fd = yield from mount.open(
                "/g", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=CHUNK_SIZE
            )
            yield from mount.pwrite(fd, 10_000, b"z")
            before = mount.cache.stats.writeback_bytes
            yield from mount.fsync(fd)
            return mount.cache.stats.writeback_bytes - before

        assert run(engine, proc()) == CHUNK_SIZE

    def test_readahead_prefetches(self, engine, small_cluster, store):
        mount = FuseMount(
            small_cluster.node(3), store, cache_bytes=1 * MiB,
            readahead_chunks=1,
        )

        def proc():
            fd = yield from mount.open(
                "/h", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=3 * CHUNK_SIZE
            )
            yield from mount.pread(fd, 0, 1)
            return mount.cache.cached_keys()

        keys = run(engine, proc())
        assert ("/h", 0) in keys and ("/h", 1) in keys

    def test_write_allocate_skips_fetch_for_whole_pages(self, engine, mount):
        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=CHUNK_SIZE
            )
            before = mount.cache.stats.fetched_bytes
            yield from mount.pwrite(fd, 0, bytes(PAGE_SIZE))  # page-aligned
            return mount.cache.stats.fetched_bytes - before

        assert run(engine, proc()) == 0

    def test_partial_page_write_read_modify_write(self, engine, mount):
        def proc():
            fd = yield from mount.open(
                "/f", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=CHUNK_SIZE
            )
            before = mount.cache.stats.fetched_bytes
            yield from mount.pwrite(fd, 100, b"partial")  # unaligned
            return mount.cache.stats.fetched_bytes - before

        assert run(engine, proc()) == CHUNK_SIZE


class TestConcurrentCacheIntegrity:
    def test_many_ranks_private_files(self, engine, small_cluster, store):
        """Concurrent processes thrashing one small cache never corrupt
        or lose data (regression: eviction/refetch and flush/fault races)."""
        mount = FuseMount(
            small_cluster.node(1), store, cache_bytes=2 * CHUNK_SIZE
        )

        def worker(tag):
            path = f"/conc/{tag}"
            fd = yield from mount.open(
                path, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=2 * CHUNK_SIZE
            )
            pattern = bytes([tag]) * 1000
            for round_ in range(3):
                for offset in range(0, 2 * CHUNK_SIZE - 1000, 50_000):
                    yield from mount.pwrite(fd, offset, pattern)
                for offset in range(0, 2 * CHUNK_SIZE - 1000, 50_000):
                    data = yield from mount.pread(fd, offset, 1000)
                    assert data == pattern, f"corruption for {tag} at {offset}"
            yield from mount.close(fd)
            return True

        results = engine.run_all(
            [engine.process(worker(tag)) for tag in range(1, 9)]
        )
        assert all(results)


# ----------------------------------------------------------------------
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),  # write?
            st.integers(min_value=0, max_value=2 * CHUNK_SIZE - 1),
            st.integers(min_value=1, max_value=5000),
        ),
        min_size=1,
        max_size=30,
    ),
    data=st.data(),
)
def test_property_mount_matches_bytearray(engine, small_cluster, store, ops, data):
    """Arbitrary pread/pwrite interleavings behave like a byte array,
    including through fsync and cache invalidation."""
    mount = FuseMount(
        small_cluster.node(2), store, cache_bytes=2 * CHUNK_SIZE
    )
    size = 2 * CHUNK_SIZE
    reference = bytearray(size)
    name = f"/prop/{data.draw(st.integers(min_value=0, max_value=10**9))}"

    def proc():
        fd = yield from mount.open(
            name, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=size
        )
        for i, (is_write, offset, length) in enumerate(ops):
            length = min(length, size - offset)
            if length <= 0:
                continue
            if is_write:
                payload = bytes([(i * 37 + 11) % 256]) * length
                yield from mount.pwrite(fd, offset, payload)
                reference[offset : offset + length] = payload
            else:
                got = yield from mount.pread(fd, offset, length)
                assert got == bytes(reference[offset : offset + length])
            if i % 7 == 3:
                yield from mount.fsync(fd)
            if i % 11 == 5:
                yield from mount.fsync(fd)
                mount.cache.invalidate_path(name)
        whole = yield from mount.pread(fd, 0, size)
        assert whole == bytes(reference)
        yield from mount.close(fd)
        yield from mount.unlink(name)

    run(engine, proc())
