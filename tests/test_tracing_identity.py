"""Tracing-identity gate (CI): tracing must never change results.

Runs real experiments with tracing off and on and asserts virtual
times, byte-flow counters, and report digests are bit-identical — the
contract that lets ``--trace`` be flipped on any run without invalidating
it.  Marked ``obs`` (excluded from tier-1) because each experiment runs
twice.
"""

import pytest

from repro import obs
from repro.experiments.configs import TINY
from repro.experiments.parallel import execute_experiment

pytestmark = pytest.mark.obs


@pytest.fixture
def restore_tracing():
    was = obs.enabled()
    yield
    obs.enable(was)
    obs.clear_collected()


def _run(name, trace):
    obs.clear_collected()
    obs.enable(trace)
    report, testbeds = execute_experiment(name, TINY)
    return report, testbeds


@pytest.mark.parametrize("name", ["faults", "fig2"])
def test_digest_identical_with_tracing_on(name, restore_tracing):
    report_off, testbeds_off = _run(name, False)
    report_on, testbeds_on = _run(name, True)
    assert testbeds_on == testbeds_off
    assert report_on.counters == report_off.counters
    assert report_on.rows == report_off.rows
    assert report_on.digest() == report_off.digest()
    # The traced run actually traced: spans were harvested into the
    # report, while the untraced run carries none.
    assert report_on.trace_lines and not report_off.trace_lines
    assert any("critical path" in line for line in report_on.trace_lines)


def test_faults_retry_failover_replica_share_one_trace(restore_tracing):
    """Acceptance: one trace id follows a request through the client's
    retry, its failover to another replica, and the benefactor that
    finally served it."""
    _run("faults", True)
    hits = []
    for label, tracer in obs.collected():
        for retry in (s for s in tracer.spans if s.name == "retry"):
            relatives = tracer.by_trace(retry.trace_id)
            failed = retry.args["failed"]
            served_by = {
                s.args["benefactor"]
                for s in relatives
                if s.layer == "benefactor" and s.name == "fetch_chunk"
            }
            if served_by - {failed}:
                hits.append((label, retry.trace_id, failed, served_by))
    assert hits, "no trace shows retry -> failover -> replica"
