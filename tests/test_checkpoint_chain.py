"""Checkpoint chains: epoch records, incremental diffs, fallback, GC."""

import pytest

from repro.errors import (
    CheckpointError,
    FileExistsInStoreError,
    FileNotFoundInStoreError,
    RestoreError,
    StoreError,
)
from repro.store import CHUNK_SIZE
from tests.conftest import run

SECTIONS = (("__dram__", 0, 4, False),)


class TestEpochRecords:
    def test_parent_links_chain_to_newest_committed(self, store):
        e0 = store.begin_epoch("app", 0, "/ckpt/app.0")
        assert e0.parent is None and not e0.committed
        store.commit_epoch("app", 0, sections=SECTIONS)
        e1 = store.begin_epoch("app", 1, "/ckpt/app.1")
        assert e1.parent == 0
        store.commit_epoch("app", 1, sections=SECTIONS)
        assert store.committed_epochs("app") == (0, 1)
        assert store.latest_committed_epoch("app") == 1
        assert store.chain_length("app") == 2
        # An in-flight epoch is known but not part of the live chain.
        e2 = store.begin_epoch("app", 2, "/ckpt/app.2")
        assert e2.parent == 1
        assert store.chain_length("app") == 2

    def test_committed_epoch_may_not_be_rebegun(self, store):
        store.begin_epoch("app", 0, "/ckpt/app.0")
        store.commit_epoch("app", 0, sections=SECTIONS)
        with pytest.raises(FileExistsInStoreError):
            store.begin_epoch("app", 0, "/ckpt/app.0")

    def test_failed_attempt_may_be_rebegun(self, store):
        store.begin_epoch("app", 0, "/ckpt/app.0")
        record = store.begin_epoch("app", 0, "/ckpt/app.0-retry")
        assert record.path == "/ckpt/app.0-retry"

    def test_resolve_walks_past_truncated_epochs(self, store):
        store.begin_epoch("app", 0, "/ckpt/app.0")
        store.commit_epoch("app", 0, sections=SECTIONS)
        store.begin_epoch("app", 1, "/ckpt/app.1")  # never commits
        assert store.resolve_restore_epoch("app", 1) == 0
        assert store.resolve_restore_epoch("app") == 0
        assert store.resolve_restore_epoch("app", 0) == 0

    def test_resolve_unknown_tag_and_epoch(self, store):
        with pytest.raises(FileNotFoundInStoreError):
            store.resolve_restore_epoch("ghost")
        store.begin_epoch("app", 0, "/ckpt/app.0")
        with pytest.raises(FileNotFoundInStoreError):
            store.resolve_restore_epoch("app", 99)

    def test_resolve_none_when_no_complete_epoch(self, store):
        store.begin_epoch("app", 0, "/ckpt/app.0")
        assert store.resolve_restore_epoch("app", 0) is None
        assert store.resolve_restore_epoch("app") is None

    def test_epochs_committed_metric(self, store):
        store.begin_epoch("app", 0, "/ckpt/app.0")
        store.commit_epoch("app", 0, sections=SECTIONS)
        assert store.metrics.value("checkpoint.epochs_committed") == 1


class TestCheckpointModes:
    def test_full_mode_physically_copies(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(2 * CHUNK_SIZE)
            yield from var.write(0, b"full copy")
            return (
                yield from nvmalloc.ssdcheckpoint(
                    "app", 0, b"dram", [("v", var)], mode="full"
                )
            )

        record = run(engine, proc())
        assert record.bytes_written == 4 + 2 * CHUNK_SIZE
        assert record.bytes_linked == 0
        assert all(not s.linked for s in record.sections)

    def test_incremental_writes_strictly_less_than_full(self, engine, nvmalloc):
        def proc(tag, mode):
            var = yield from nvmalloc.ssdmalloc(4 * CHUNK_SIZE)
            yield from var.write(0, b"x" * (4 * CHUNK_SIZE))
            yield from nvmalloc.ssdcheckpoint(tag, 0, b"d", [("v", var)], mode=mode)
            yield from var.write(CHUNK_SIZE, b"touch")
            record = yield from nvmalloc.ssdcheckpoint(
                tag, 1, b"d", [("v", var)], mode=mode
            )
            return record

        full = run(engine, proc("full", "full"))
        inc = run(engine, proc("inc", "incremental"))
        assert inc.bytes_written < full.bytes_written
        assert inc.bytes_linked == 4 * CHUNK_SIZE
        assert full.bytes_linked == 0

    def test_dirty_chunk_accounting(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(4 * CHUNK_SIZE)
            yield from var.write(0, b"y" * (4 * CHUNK_SIZE))
            first = yield from nvmalloc.ssdcheckpoint("app", 0, b"", [("v", var)])
            yield from var.write(2 * CHUNK_SIZE, b"one chunk")
            second = yield from nvmalloc.ssdcheckpoint("app", 1, b"", [("v", var)])
            return first, second

        first, second = run(engine, proc())
        assert (first.dirty_chunks, first.total_chunks) == (4, 4)
        assert (second.dirty_chunks, second.total_chunks) == (1, 4)

    def test_unknown_mode_rejected(self, engine, nvmalloc):
        with pytest.raises(CheckpointError, match="unknown checkpoint mode"):
            run(engine, nvmalloc.ssdcheckpoint("app", 0, b"", mode="bogus"))

    def test_restore_defaults_to_newest_epoch(self, engine, nvmalloc):
        def proc():
            for step in range(3):
                yield from nvmalloc.ssdcheckpoint("app", step, b"epoch-%d" % step)
            dram, _ = yield from nvmalloc.restore("app")
            return dram

        assert run(engine, proc()) == b"epoch-2"
        assert nvmalloc.last_restore_epoch == 2
        assert nvmalloc.last_restore_fallback is False

    def test_restore_unknown_tag_or_epoch(self, engine, nvmalloc):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            run(engine, nvmalloc.restore("ghost"))

        def proc():
            yield from nvmalloc.ssdcheckpoint("app", 0, b"x")
            yield from nvmalloc.restore("app", 7)

        with pytest.raises(CheckpointError, match="no checkpoint app@7"):
            run(engine, proc())


class TestTruncatedFallback:
    def test_truncated_epoch_falls_back_to_parent(self, engine, nvmalloc, store):
        def proc():
            yield from nvmalloc.ssdcheckpoint("app", 0, b"epoch-0")
            yield from nvmalloc.ssdcheckpoint("app", 1, b"epoch-1")
            # A crash mid-checkpoint leaves epoch 2 begun but uncommitted.
            store.begin_epoch("app", 2, "/mnt/aggregatenvm/checkpoints/app.2")
            dram, _ = yield from nvmalloc.restore("app", 2)
            return dram

        assert run(engine, proc()) == b"epoch-1"
        assert nvmalloc.last_restore_epoch == 1
        assert nvmalloc.last_restore_fallback is True

    def test_no_complete_epoch_raises_typed_restore_error(
        self, engine, nvmalloc, store
    ):
        store.begin_epoch("app", 0, "/mnt/aggregatenvm/checkpoints/app.0")
        with pytest.raises(RestoreError) as excinfo:
            run(engine, nvmalloc.restore("app", 0))
        assert excinfo.value.epoch == 0
        assert isinstance(excinfo.value, CheckpointError)


class TestChainGC:
    def test_gc_keeps_newest_and_reclaims_bytes(self, engine, nvmalloc, store):
        def proc():
            var = yield from nvmalloc.ssdmalloc(2 * CHUNK_SIZE)
            yield from var.write(0, b"z" * (2 * CHUNK_SIZE))
            for step in range(4):
                yield from nvmalloc.ssdcheckpoint(
                    "app", step, b"dram", [("v", var)], mode="full"
                )
            reclaimed = yield from nvmalloc.gc_checkpoints("app", keep_last=2)
            dram, variables = yield from nvmalloc.restore("app")
            return reclaimed, dram, variables["v"]

        reclaimed, dram, v = run(engine, proc())
        assert reclaimed > 0
        assert store.committed_epochs("app") == (2, 3)
        assert store.chain_length("app") == 2
        assert dram == b"dram" and v == b"z" * (2 * CHUNK_SIZE)
        assert store.metrics.value("store.manager.gc_reclaimed_bytes") == reclaimed
        with pytest.raises(FileNotFoundInStoreError):
            store.epoch_record("app", 0)

    def test_gc_spares_chunks_still_referenced(self, engine, nvmalloc, store):
        def proc():
            var = yield from nvmalloc.ssdmalloc(2 * CHUNK_SIZE)
            yield from var.write(0, b"shared" * 10)
            # Both epochs link the same untouched variable chunks.
            yield from nvmalloc.ssdcheckpoint("app", 0, b"dram0", [("v", var)])
            yield from nvmalloc.ssdcheckpoint("app", 1, b"dram1", [("v", var)])
            reclaimed = yield from nvmalloc.gc_checkpoints("app", keep_last=1)
            _, variables = yield from nvmalloc.restore("app", 1)
            live = yield from var.read(0, 6)
            return reclaimed, variables["v"][:6], live

        reclaimed, restored, live = run(engine, proc())
        # Only epoch 0's private DRAM chunk is physically freed; the
        # linked variable chunks survive in epoch 1 and the live mapping.
        assert 0 < reclaimed <= CHUNK_SIZE
        assert restored == b"shared" and live == b"shared"

    def test_chunks_freed_exactly_when_unreferenced(self, engine, nvmalloc, store):
        before = store.total_available()

        def proc():
            var = yield from nvmalloc.ssdmalloc(2 * CHUNK_SIZE)
            yield from var.write(0, b"w" * (2 * CHUNK_SIZE))
            yield from nvmalloc.ssdcheckpoint("app", 0, b"d", [("v", var)])
            yield from nvmalloc.ssdcheckpoint("app", 1, b"d", [("v", var)])
            # Retiring every epoch releases the checkpoint references but
            # must not free chunks the live variable still uses.
            yield from nvmalloc.gc_checkpoints("app", keep_last=0)
            mid = store.total_available()
            live = yield from var.read(0, 4)
            yield from nvmalloc.ssdfree(var)
            return mid, live

        mid, live = run(engine, proc())
        assert live == b"wwww"
        assert mid == before - 2 * CHUNK_SIZE  # only the live mapping remains
        assert store.total_available() == before
        assert not store.has_epochs("app")

    def test_pinned_epoch_survives_gc(self, engine, nvmalloc, store):
        def proc():
            yield from nvmalloc.ssdcheckpoint("app", 0, b"epoch-0")
            yield from nvmalloc.ssdcheckpoint("app", 1, b"epoch-1")
            store.pin_epoch("app", 0)
            assert store.gc_candidates("app", keep_last=1) == ()
            yield from nvmalloc.gc_checkpoints("app", keep_last=1)
            assert store.committed_epochs("app") == (0, 1)
            with pytest.raises(StoreError, match="pinned"):
                store.retire_epoch("app", 0)
            store.unpin_epoch("app", 0)
            yield from nvmalloc.gc_checkpoints("app", keep_last=1)
            return store.committed_epochs("app")

        assert run(engine, proc()) == (1,)

    def test_retire_refuses_uncommitted_epoch(self, store):
        store.begin_epoch("app", 0, "/ckpt/app.0")
        with pytest.raises(StoreError, match="not committed"):
            store.retire_epoch("app", 0)

    def test_gc_shields_fallback_ancestor_of_inflight_epoch(self, store):
        store.begin_epoch("app", 0, "/ckpt/app.0")
        store.commit_epoch("app", 0, sections=SECTIONS)
        store.begin_epoch("app", 1, "/ckpt/app.1")
        store.commit_epoch("app", 1, sections=SECTIONS)
        store.begin_epoch("app", 2, "/ckpt/app.2")  # in flight
        # Epoch 1 is what a crash of epoch 2 falls back to: not a candidate.
        assert store.gc_candidates("app", keep_last=0) == (0,)
