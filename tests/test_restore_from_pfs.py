"""Disaster recovery: restore a checkpoint from its drained PFS copy."""

import pytest

from repro.core import NVMalloc
from repro.errors import CheckpointError
from repro.pfs import ParallelFileSystem
from repro.store import CHUNK_SIZE
from repro.util.units import KiB
from tests.conftest import run


@pytest.fixture
def lib(small_cluster, store):
    return NVMalloc(
        small_cluster.node(1), store,
        fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
    )


@pytest.fixture
def pfs(engine, small_cluster):
    return ParallelFileSystem(engine, small_cluster.network, num_servers=2)


class TestRestoreFromPfs:
    def test_roundtrip_after_store_copy_deleted(self, engine, lib, pfs):
        def scenario():
            var = yield from lib.ssdmalloc(2 * CHUNK_SIZE)
            yield from var.write(0, b"survives the store")
            yield from lib.ssdcheckpoint("dr", 0, b"STEP=0", [("v", var)])
            yield from lib.drain_checkpoint_to_pfs("dr", 0, pfs)
            # Disaster: the live variable AND the store's checkpoint file
            # are gone; only the PFS copy remains.
            yield from lib.ssdfree(var)
            yield from lib.mount.unlink(lib.checkpoint_record("dr", 0).path)
            dram, variables = yield from lib.restore_from_pfs("dr", 0, pfs)
            return dram, variables["v"][:18]

        dram, v = run(engine, scenario())
        assert dram == b"STEP=0"
        assert v == b"survives the store"

    def test_matches_store_restore_bit_exactly(self, engine, lib, pfs):
        def scenario():
            var = yield from lib.ssdmalloc(CHUNK_SIZE + 777)
            yield from var.write(100, bytes(range(256)) * 4)
            yield from lib.ssdcheckpoint("eq", 3, b"m" * 5000, [("v", var)])
            yield from lib.drain_checkpoint_to_pfs("eq", 3, pfs)
            from_store = yield from lib.restore("eq", 3)
            from_pfs = yield from lib.restore_from_pfs("eq", 3, pfs)
            yield from lib.ssdfree(var)
            return from_store, from_pfs

        from_store, from_pfs = run(engine, scenario())
        assert from_store == from_pfs

    def test_missing_drain_rejected(self, engine, lib, pfs):
        def scenario():
            var = yield from lib.ssdmalloc(CHUNK_SIZE)
            yield from lib.ssdcheckpoint("nope", 0, b"", [("v", var)])
            yield from lib.restore_from_pfs("nope", 0, pfs)

        with pytest.raises(CheckpointError):
            run(engine, scenario())

    def test_pfs_copy_survives_store_data_loss(self, engine, lib, pfs, store):
        """Crash-based loss (r=1): the store restore fails with a typed
        RestoreError, but the drained PFS copy still recovers the bytes."""
        from repro.errors import RestoreError

        def scenario():
            var = yield from lib.ssdmalloc(CHUNK_SIZE)
            yield from var.write(0, b"only on the pfs")
            record = yield from lib.ssdcheckpoint("dr", 1, b"STEP=1", [("v", var)])
            yield from lib.drain_checkpoint_to_pfs("dr", 1, pfs)
            # Lose every replica of the checkpoint's store copy.
            victims = {
                b.name: b
                for chunk_id in store.lookup(record.path).chunk_ids
                for b in store.chunk_replicas(chunk_id)
            }
            for victim in victims.values():
                victim.crash()
                store.mark_offline(victim.name)
            lib.mount.cache.invalidate_path(record.path)
            failed = None
            try:
                yield from lib.restore("dr", 1)
            except RestoreError as error:
                failed = error
            dram, variables = yield from lib.restore_from_pfs("dr", 1, pfs)
            return failed, dram, variables["v"][:15]

        failed, dram, v = run(engine, scenario())
        assert failed is not None and failed.epoch == 1
        assert failed.lost_chunks
        assert dram == b"STEP=1"
        assert v == b"only on the pfs"

    def test_custom_source_name(self, engine, lib, pfs):
        def scenario():
            var = yield from lib.ssdmalloc(CHUNK_SIZE)
            yield from var.write(0, b"aliased")
            yield from lib.ssdcheckpoint("al", 0, b"d", [("v", var)])
            yield from lib.drain_checkpoint_to_pfs(
                "al", 0, pfs, dest="archive/al-final"
            )
            _, variables = yield from lib.restore_from_pfs(
                "al", 0, pfs, source="archive/al-final"
            )
            yield from lib.ssdfree(var)
            return variables["v"][:7]

        assert run(engine, scenario()) == b"aliased"
