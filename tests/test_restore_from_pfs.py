"""Disaster recovery: restore a checkpoint from its drained PFS copy."""

import pytest

from repro.core import NVMalloc
from repro.errors import CheckpointError
from repro.pfs import ParallelFileSystem
from repro.store import CHUNK_SIZE
from repro.util.units import KiB
from tests.conftest import run


@pytest.fixture
def lib(small_cluster, store):
    return NVMalloc(
        small_cluster.node(1), store,
        fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
    )


@pytest.fixture
def pfs(engine, small_cluster):
    return ParallelFileSystem(engine, small_cluster.network, num_servers=2)


class TestRestoreFromPfs:
    def test_roundtrip_after_store_copy_deleted(self, engine, lib, pfs):
        def scenario():
            var = yield from lib.ssdmalloc(2 * CHUNK_SIZE)
            yield from var.write(0, b"survives the store")
            yield from lib.ssdcheckpoint("dr", 0, b"STEP=0", [("v", var)])
            yield from lib.drain_checkpoint_to_pfs("dr", 0, pfs)
            # Disaster: the live variable AND the store's checkpoint file
            # are gone; only the PFS copy remains.
            yield from lib.ssdfree(var)
            yield from lib.mount.unlink(lib.checkpoint_record("dr", 0).path)
            dram, variables = yield from lib.restore_from_pfs("dr", 0, pfs)
            return dram, variables["v"][:18]

        dram, v = run(engine, scenario())
        assert dram == b"STEP=0"
        assert v == b"survives the store"

    def test_matches_store_restore_bit_exactly(self, engine, lib, pfs):
        def scenario():
            var = yield from lib.ssdmalloc(CHUNK_SIZE + 777)
            yield from var.write(100, bytes(range(256)) * 4)
            yield from lib.ssdcheckpoint("eq", 3, b"m" * 5000, [("v", var)])
            yield from lib.drain_checkpoint_to_pfs("eq", 3, pfs)
            from_store = yield from lib.restore("eq", 3)
            from_pfs = yield from lib.restore_from_pfs("eq", 3, pfs)
            yield from lib.ssdfree(var)
            return from_store, from_pfs

        from_store, from_pfs = run(engine, scenario())
        assert from_store == from_pfs

    def test_missing_drain_rejected(self, engine, lib, pfs):
        def scenario():
            var = yield from lib.ssdmalloc(CHUNK_SIZE)
            yield from lib.ssdcheckpoint("nope", 0, b"", [("v", var)])
            yield from lib.restore_from_pfs("nope", 0, pfs)

        with pytest.raises(CheckpointError):
            run(engine, scenario())

    def test_custom_source_name(self, engine, lib, pfs):
        def scenario():
            var = yield from lib.ssdmalloc(CHUNK_SIZE)
            yield from var.write(0, b"aliased")
            yield from lib.ssdcheckpoint("al", 0, b"d", [("v", var)])
            yield from lib.drain_checkpoint_to_pfs(
                "al", 0, pfs, dest="archive/al-final"
            )
            _, variables = yield from lib.restore_from_pfs(
                "al", 0, pfs, source="archive/al-final"
            )
            yield from lib.ssdfree(var)
            return variables["v"][:7]

        assert run(engine, scenario()) == b"aliased"
