"""Stateful property test: checkpoint history stays frozen forever.

Random interleavings of writes, checkpoints, restores, and checkpoint
deletions must never corrupt any surviving checkpoint's frozen view or
the live variable.  This exercises chunk linking, refcounting, and COW
under arbitrary schedules (paper §III-E's core guarantee).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import NVMalloc
from repro.store import CHUNK_SIZE
from repro.util.units import KiB
from tests.conftest import run

VAR_BYTES = 3 * CHUNK_SIZE

op_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(min_value=0, max_value=VAR_BYTES - 1),
            st.integers(min_value=1, max_value=8 * 1024),
        ),
        st.tuples(st.just("checkpoint"), st.just(0), st.just(0)),
        st.tuples(st.just("restore_check"), st.just(0), st.just(0)),
        st.tuples(st.just("delete_oldest"), st.just(0), st.just(0)),
    ),
    min_size=3,
    max_size=25,
)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(ops=op_strategy, seed=st.integers(0, 2**16))
def test_checkpoint_history_is_immutable(engine, small_cluster, store, ops, seed):
    lib = NVMalloc(
        small_cluster.node(2 + seed % 2), store,
        fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
    )
    tag = f"prop{seed}"
    rng = np.random.default_rng(seed)

    def scenario():
        var = yield from lib.ssdmalloc(VAR_BYTES, owner=f"prop{seed}")
        live = bytearray(VAR_BYTES)
        frozen: dict[int, bytes] = {}  # timestep -> expected snapshot
        dram_images: dict[int, bytes] = {}
        next_step = 0
        for op, offset, length in ops:
            if op == "write":
                length = min(length, VAR_BYTES - offset)
                payload = bytes(rng.integers(1, 256, size=length, dtype=np.uint8))
                yield from var.write(offset, payload)
                live[offset : offset + length] = payload
            elif op == "checkpoint":
                dram = bytes(rng.integers(0, 256, size=64, dtype=np.uint8))
                yield from lib.ssdcheckpoint(tag, next_step, dram, [("v", var)])
                frozen[next_step] = bytes(live)
                dram_images[next_step] = dram
                next_step += 1
            elif op == "restore_check":
                for step, expected in frozen.items():
                    dram, variables = yield from lib.restore(tag, step)
                    assert dram == dram_images[step], f"dram diverged @ {step}"
                    assert variables["v"] == expected, f"var diverged @ {step}"
            elif op == "delete_oldest" and frozen:
                oldest = min(frozen)
                yield from lib.delete_checkpoint(tag, oldest)
                del frozen[oldest]
                del dram_images[oldest]
        # Final invariants: live variable and every surviving checkpoint.
        current = yield from var.read(0, VAR_BYTES)
        assert current == bytes(live)
        for step, expected in frozen.items():
            _, variables = yield from lib.restore(tag, step)
            assert variables["v"] == expected
        # Teardown keeps the store leak-free for the next example.
        for step in list(frozen):
            yield from lib.delete_checkpoint(tag, step)
        yield from lib.ssdfree(var)
        return True

    assert run(engine, scenario())
