"""Tests for the raw local-SSD array (the Table III baseline)."""

import numpy as np
import pytest

from repro.devices.base import AccessKind
from repro.errors import DeviceError
from repro.util.units import KiB
from repro.workloads.rawssd import KERNEL_READAHEAD, RawSSDArray
from tests.conftest import run


@pytest.fixture
def raw_array(small_cluster):
    # Cache comfortably larger than the readahead window so hot pages
    # are not evicted by their own window's tail.
    return RawSSDArray(
        small_cluster.node(1),
        (32 * 1024,),
        np.dtype(np.float64),
        cache_bytes=256 * KiB,
    )


class TestRawSSDArray:
    def test_requires_local_ssd(self, small_cluster):
        node = small_cluster.node(0)
        fake = type(node).__new__(type(node))
        fake.ssd = None
        fake.name = "bare"
        with pytest.raises(DeviceError):
            RawSSDArray(fake, (10,), np.dtype(np.float64), cache_bytes=4096)

    def test_capacity_checked(self, small_cluster):
        node = small_cluster.node(1)
        with pytest.raises(DeviceError):
            RawSSDArray(
                node, (10**12,), np.dtype(np.float64), cache_bytes=4096
            )

    def test_roundtrip(self, engine, raw_array):
        def proc():
            yield from raw_array.write_slice(100, np.arange(50.0))
            return (yield from raw_array.read_slice(100, 150))

        assert np.array_equal(run(engine, proc()), np.arange(50.0))

    def test_readahead_fetches_window(self, engine, raw_array):
        ssd = raw_array.ssd

        def proc():
            before = ssd.bytes_read()
            yield from raw_array.read_slice(0, 1)  # one element
            return ssd.bytes_read() - before

        fetched = run(engine, proc())
        assert fetched == KERNEL_READAHEAD

    def test_cache_hit_skips_device(self, engine, raw_array):
        ssd = raw_array.ssd

        def proc():
            yield from raw_array.read_slice(0, 512)
            before = ssd.bytes_read()
            yield from raw_array.read_slice(0, 512)  # same pages
            return ssd.bytes_read() - before

        assert run(engine, proc()) == 0

    def test_eviction_persists_dirty_pages(self, engine, small_cluster):
        # Cache of 2 pages: writing 8 pages forces dirty evictions.
        arr = RawSSDArray(
            small_cluster.node(1), (4096,), np.dtype(np.float64),
            cache_bytes=8 * KiB,
        )

        def proc():
            yield from arr.write_slice(0, np.arange(4096.0))
            return (yield from arr.read_slice(0, 4096))

        assert np.array_equal(run(engine, proc()), np.arange(4096.0))

    def test_flush_writes_all_dirty(self, engine, raw_array):
        ssd = raw_array.ssd

        def proc():
            yield from raw_array.write_slice(0, np.ones(1024))
            before = ssd.bytes_written()
            yield from raw_array.flush()
            return ssd.bytes_written() - before

        assert run(engine, proc()) == 1024 * 8

    def test_bounds(self, engine, raw_array):
        with pytest.raises(IndexError):
            run(engine, raw_array.read_bytes(raw_array.nbytes, 1))
        with pytest.raises(IndexError):
            run(engine, raw_array.write_bytes(raw_array.nbytes - 1, b"xx"))

    def test_fault_overhead_charged(self, engine, small_cluster):
        arr = RawSSDArray(
            small_cluster.node(2), (1024,), np.dtype(np.float64),
            cache_bytes=64 * KiB, fault_overhead=1e-3,
        )

        def proc():
            start = engine.now
            yield from arr.read_slice(0, 512)  # 1 page
            return engine.now - start

        assert run(engine, proc()) >= 1e-3
