"""Tests for the pluggable chunk-cache eviction policy (LRU vs ARC).

Covers the ARC bookkeeping in isolation (ghost adaptation direction,
list invariants, victim preference), the cache-visible behaviour the
policy exists for (scan resistance LRU lacks), the determinism promise
(eviction order identical across ``PYTHONHASHSEED`` values), and the
pin contract (a pinned entry is never evicted from either tier).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import FuseError
from repro.fusefs import FuseMount, OpenFlags
from repro.fusefs.cache import CacheStats
from repro.fusefs.policy import ARCPolicy, make_policy
from repro.store import CHUNK_SIZE
from tests.conftest import run

REPO_ROOT = Path(__file__).resolve().parent.parent


def key(i):
    return ("/f", i)


class FakeEntry:
    def __init__(self, pins=0):
        self.pins = pins


def resident(policy, pins=()):
    """A fake entry dict matching the policy's resident key set."""
    entries = {}
    for k in list(policy.t1) + list(policy.t2):
        entries[k] = FakeEntry(pins=1 if k in pins else 0)
    return entries


class TestMakePolicy:
    def test_lru_is_inline(self):
        assert make_policy("lru", 4) is None

    def test_arc(self):
        assert isinstance(make_policy("arc", 4), ARCPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(FuseError):
            make_policy("mru", 4)

    def test_zero_capacity_rejected(self):
        with pytest.raises(FuseError):
            ARCPolicy(0)


class TestARCAdaptation:
    def test_b1_ghost_hit_grows_recency_target(self):
        """A hit in B1 means T1 was evicted too eagerly: p must rise."""
        policy = ARCPolicy(4)
        for i in range(4):
            policy.record_insert(key(i))
        policy.record_evict(key(0))
        assert key(0) in policy.b1
        before = policy.p
        assert policy.record_miss(key(0)) is True
        assert policy.p > before
        assert policy.ghost_hits == 1
        assert key(0) not in policy.b1

    def test_b2_ghost_hit_shrinks_recency_target(self):
        """A hit in B2 means frequency deserved the space: p must fall."""
        policy = ARCPolicy(4)
        policy.record_insert(key(0))
        policy.record_hit(key(0))  # promote to T2
        assert key(0) in policy.t2
        policy.record_evict(key(0))
        assert key(0) in policy.b2
        policy.p = 3
        assert policy.record_miss(key(0)) is True
        assert policy.p < 3

    def test_plain_miss_does_not_adapt(self):
        policy = ARCPolicy(4)
        assert policy.record_miss(key(7)) is False
        assert policy.p == 0
        assert policy.ghost_hits == 0

    def test_ghost_insert_lands_in_t2(self):
        """A key resurrected from a ghost list proved reuse: it joins T2."""
        policy = ARCPolicy(4)
        policy.record_insert(key(0))
        policy.record_evict(key(0))
        policy.record_miss(key(0))
        policy.record_insert(key(0))
        assert key(0) in policy.t2
        assert key(0) not in policy.t1

    def test_prefetch_insert_scrubs_ghosts(self):
        """record_insert without record_miss (prefetch path) must still
        guarantee a key is never resident and ghostly at once."""
        policy = ARCPolicy(4)
        policy.record_insert(key(0))
        policy.record_evict(key(0))
        assert key(0) in policy.b1
        policy.record_insert(key(0))  # prefetch fill: no record_miss
        assert key(0) not in policy.b1
        assert key(0) in policy.t1
        assert policy.p == 0  # and no adaptation happened

    def test_remove_forgets_everywhere(self):
        policy = ARCPolicy(4)
        policy.record_insert(key(0))
        policy.record_insert(key(1))
        policy.record_evict(key(1))
        policy.record_remove(key(0))
        policy.record_remove(key(1))
        sizes = policy.sizes()
        assert sizes["t1"] == sizes["t2"] == sizes["b1"] == sizes["b2"] == 0

    def test_ghost_lists_bounded(self):
        policy = ARCPolicy(2)
        for i in range(20):
            policy.record_insert(key(i))
            policy.record_evict(key(i))
        sizes = policy.sizes()
        assert sizes["t1"] + sizes["b1"] <= 2
        assert sum(sizes[k] for k in ("t1", "t2", "b1", "b2")) <= 4

    def test_sizes_reports_all_lists_and_p(self):
        policy = ARCPolicy(4)
        assert set(policy.sizes()) == {"t1", "t2", "b1", "b2", "p", "ghost_hits"}


class TestARCVictim:
    def test_prefers_t1_lru_when_over_target(self):
        policy = ARCPolicy(4)
        for i in range(4):
            policy.record_insert(key(i))
        assert policy.p == 0
        assert policy.victim(resident(policy), ()) == key(0)

    def test_prefers_t2_when_t1_within_target(self):
        policy = ARCPolicy(4)
        for i in range(4):
            policy.record_insert(key(i))
        policy.record_hit(key(0))  # T2 LRU
        policy.record_hit(key(1))
        policy.p = 4  # recency window covers all of T1
        assert policy.victim(resident(policy), ()) == key(0)

    def test_skips_pinned_and_falls_back_across_lists(self):
        policy = ARCPolicy(4)
        for i in range(3):
            policy.record_insert(key(i))
        policy.record_hit(key(2))  # key 2 in T2
        # All of T1 pinned: the victim must come from T2.
        entries = resident(policy, pins=(key(0), key(1)))
        assert policy.victim(entries, ()) == key(2)

    def test_none_when_everything_pinned(self):
        policy = ARCPolicy(4)
        policy.record_insert(key(0))
        entries = resident(policy, pins=(key(0),))
        assert policy.victim(entries, ()) is None

    def test_skips_inflight_keys(self):
        policy = ARCPolicy(4)
        policy.record_insert(key(0))
        policy.record_insert(key(1))
        assert policy.victim(resident(policy), {key(0)}) == key(1)


class TestCacheStatsAccounting:
    """The satellite stats contract: demand-only rates, prefetch accuracy."""

    def test_hit_rate_is_demand_only_and_counts_l2(self):
        stats = CacheStats(hits=6, misses=2, l2_hits=2, prefetches=50)
        # Prefetch traffic (the 50 issued fills) must not dilute the
        # rate; a local-tier hit avoided the store, so it counts.
        assert stats.hit_rate == (6 + 2) / 10
        assert stats.l1_hit_rate == 6 / 10
        assert stats.l2_hit_rate == 2 / 4

    def test_seed_shape_when_tier_off(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_rate == 0.75

    def test_prefetch_accuracy(self):
        assert CacheStats(prefetches=8, prefetch_hits=6).prefetch_accuracy == 0.75
        assert CacheStats().prefetch_accuracy == 0.0

    def test_demand_fill_latency_averages_both_tiers(self):
        stats = CacheStats(
            store_fills=3, store_fill_seconds=0.3,
            l2_fills=1, l2_fill_seconds=0.02,
        )
        assert stats.demand_fill_latency == pytest.approx(0.32 / 4)
        assert CacheStats().demand_fill_latency == 0.0


def make_mount(cluster, store, *, policy, chunks=4):
    return FuseMount(
        cluster.node(1), store,
        cache_bytes=chunks * CHUNK_SIZE, cache_policy=policy,
    )


def scan_workload(engine, mount, path):
    """A reused hot set interleaved with a one-pass scan, then re-reads."""
    def proc():
        fd = yield from mount.open(
            path, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=32 * CHUNK_SIZE
        )
        # Establish the hot set (chunks 0 and 1) as frequently reused.
        for _ in range(3):
            for hot in (0, 1):
                yield from mount.pread(fd, hot * CHUNK_SIZE, 64)
        # One-pass scan over 12 cold chunks — 3x the cache capacity.
        for i in range(4, 16):
            yield from mount.pread(fd, i * CHUNK_SIZE, 64)
        # The hot set again: ARC should still hold it, LRU flushed it.
        hits_before = mount.cache.stats.hits
        for hot in (0, 1):
            yield from mount.pread(fd, hot * CHUNK_SIZE, 64)
        yield from mount.close(fd)
        return mount.cache.stats.hits - hits_before

    return run(engine, proc())


class TestScanResistance:
    def test_arc_survives_scan_lru_does_not(self, engine, small_cluster, store):
        lru = make_mount(small_cluster, store, policy="lru")
        arc = make_mount(small_cluster, store, policy="arc")
        lru_hot_hits = scan_workload(engine, lru, "/lru")
        arc_hot_hits = scan_workload(engine, arc, "/arc")
        # After the scan, LRU holds only scan tail chunks; ARC kept the
        # frequency list, so both hot re-reads hit.
        assert lru_hot_hits == 0
        assert arc_hot_hits == 2
        assert arc.cache.stats.hits > lru.cache.stats.hits


class TestPinnedNeverEvicted:
    @pytest.mark.parametrize("policy", ["lru", "arc"])
    def test_dram_pin_blocks_eviction(self, engine, small_cluster, store, policy):
        mount = make_mount(small_cluster, store, policy=policy, chunks=2)
        cache = mount.cache

        def proc():
            fd = yield from mount.open(
                "/p", OpenFlags.O_RDWR | OpenFlags.O_CREAT,
                size=8 * CHUNK_SIZE,
            )
            yield from mount.pread(fd, 0, 64)
            cache._entries[("/p", 0)].pins += 1
            try:
                # 6 more chunks through a 2-chunk cache: plenty of
                # evictions, none of them the pinned key.
                for i in range(1, 7):
                    yield from mount.pread(fd, i * CHUNK_SIZE, 64)
            finally:
                cache._entries[("/p", 0)].pins -= 1
            yield from mount.close(fd)

        run(engine, proc())
        assert ("/p", 0) in cache._entries
        assert cache.stats.evictions > 0

    def test_staged_l2_entry_survives_pressure(self, engine, small_cluster, store):
        """The local tier's equivalent of a pin: a staged entry is the
        only durable copy of its dirty pages, so pressure must evict
        around it (covered in depth in test_localtier.py; this pins the
        cross-tier contract alongside the DRAM case)."""
        from repro.fusefs.localtier import LocalCacheTier

        tier = LocalCacheTier(
            small_cluster.node(1),
            capacity_bytes=2 * CHUNK_SIZE, chunk_size=CHUNK_SIZE,
        )

        def proc():
            yield from tier.put(("/s", 0), b"d" * CHUNK_SIZE, staged=True)
            for i in range(1, 5):
                yield from tier.put(("/s", i), b"c" * CHUNK_SIZE)

        run(engine, proc())
        assert tier.contains(("/s", 0))
        assert tier.staged_keys() == [("/s", 0)]


DETERMINISM_SCRIPT = """
import sys

from repro.cluster import make_hal_cluster
from repro.cluster.hal import HalConfig
from repro.fusefs import FuseMount, OpenFlags
from repro.sim import Engine
from repro.store import CHUNK_SIZE, Benefactor, Manager
from repro.util.units import MiB

engine = Engine()
cluster = make_hal_cluster(engine, HalConfig(
    num_nodes=2, cores_per_node=2, dram_per_node=16 * MiB,
    ssd_per_node=64 * MiB,
))
manager = Manager(cluster.node(0))
for node in cluster.nodes:
    manager.register_benefactor(Benefactor(node, contribution=16 * MiB))
mount = FuseMount(
    cluster.node(1), manager,
    cache_bytes=3 * CHUNK_SIZE, cache_policy="arc",
    local_cache_bytes=4 * CHUNK_SIZE,
)
evictions = []
original = mount.cache._make_room

def spying_make_room():
    before = set(mount.cache._entries)
    yield from original()
    evictions.extend(sorted(before - set(mount.cache._entries)))

mount.cache._make_room = spying_make_room

def proc():
    fd = yield from mount.open(
        "/d", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=24 * CHUNK_SIZE
    )
    trace = [0, 1, 0, 2, 3, 4, 0, 5, 1, 6, 7, 2, 8, 9, 0, 10, 11, 3]
    for i in trace:
        yield from mount.pread(fd, i * CHUNK_SIZE, 64)
        if i % 3 == 0:
            yield from mount.pwrite(fd, i * CHUNK_SIZE, b"x" * 128)
    yield from mount.close(fd)

engine.run(engine.process(proc()))
sizes = mount.cache.policy.sizes()
print(repr((evictions, sorted(sizes.items()), engine.now)))
"""


class TestHashSeedDeterminism:
    def test_eviction_order_identical_across_hash_seeds(self):
        """The ISSUE's determinism gate: the full hierarchy's eviction
        sequence, ARC list state, and virtual clock must be pure
        functions of the access sequence — PYTHONHASHSEED-independent."""
        outputs = []
        for seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            result = subprocess.run(
                [sys.executable, "-c", DETERMINISM_SCRIPT],
                capture_output=True, text=True, env=env, cwd=REPO_ROOT,
                check=True,
            )
            outputs.append(result.stdout.strip())
        assert outputs[0]
        assert outputs[0] == outputs[1] == outputs[2]


def test_all_ratio_properties_guard_empty_stats():
    """Every ratio-shaped property is total when nothing happened yet.

    A report rendered before any traffic (or for a disabled feature)
    must not raise ZeroDivisionError anywhere in the stats surface.
    """
    from repro.devices.ftl import FTLStats
    from repro.mem.pagecache import PageCacheStats

    empty_cache = CacheStats()
    assert empty_cache.hit_rate == 0.0
    assert empty_cache.l1_hit_rate == 0.0
    assert empty_cache.l2_hit_rate == 0.0
    assert empty_cache.prefetch_accuracy == 0.0
    assert empty_cache.demand_fill_latency == 0.0
    assert PageCacheStats().hit_rate == 0.0
    assert FTLStats().write_amplification == 1.0
