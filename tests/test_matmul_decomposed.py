"""Tests for the ring-decomposed matrix multiplication."""

import numpy as np
import pytest

from repro.errors import CapacityError, NVMallocError
from repro.experiments.configs import TINY
from repro.experiments.runner import Testbed
from repro.util.units import MiB
from repro.workloads import (
    MatmulConfig,
    run_matmul,
    run_matmul_decomposed,
)


def make_job(x=2, y=2, dram=None):
    scale = TINY.with_(cpu_slowdown=1.0)
    if dram is not None:
        scale = scale.with_(dram_per_node=dram)
    testbed = Testbed(scale)
    return testbed, testbed.job(x, y, 0)


class TestDecomposedMM:
    def test_product_is_exact(self):
        testbed, job = make_job()
        config = MatmulConfig(n=64, tile=16, b_placement="dram")
        result = run_matmul_decomposed(job, testbed.pfs, config)
        assert result.verified
        assert set(result.stage_times) == set(
            ("input_a", "input_b", "compute", "collect_c")
        )

    def test_output_on_pfs(self):
        testbed, job = make_job()
        config = MatmulConfig(n=32, tile=8, b_placement="dram")
        run_matmul_decomposed(job, testbed.pfs, config)
        from repro.workloads.matmul import _input_matrices

        a, b = _input_matrices(config)
        out = np.frombuffer(testbed.pfs.read_raw("mm/C"), dtype=np.float64)
        assert np.array_equal(out.reshape(32, 32), a @ b)

    def test_rank_count_must_divide(self):
        testbed, job = make_job(x=2, y=2)  # 4 ranks
        with pytest.raises(NVMallocError):
            run_matmul_decomposed(
                job, testbed.pfs, MatmulConfig(n=30, tile=10)
            )

    def test_memory_footprint_is_decomposed(self):
        """Per-rank memory is 3 n^2/P, not n^2 — the variant fits where
        the replicated algorithm cannot."""
        n = 256  # full B = 512 KiB; 3n^2/P per rank = 24 KiB at 8 ranks
        testbed, job = make_job(x=4, y=2, dram=1 * MiB)
        config = MatmulConfig(n=n, tile=64, b_placement="dram", verify=True)
        # Replicated DRAM mode cannot hold 4 copies of B per node...
        with pytest.raises(CapacityError):
            run_matmul(job, testbed.pfs, config)
        # ...but the decomposed variant runs and verifies.
        testbed2, job2 = make_job(x=4, y=2, dram=1 * MiB)
        result = run_matmul_decomposed(job2, testbed2.pfs, config)
        assert result.verified
        assert result.peak_rank_bytes == 3 * (n // 8) * n * 8

    def test_ring_traffic_exceeds_bcast(self):
        """The decomposition's price: far more network traffic than the
        replicated algorithm's broadcast tree."""
        n = 128
        testbed_d, job_d = make_job(x=2, y=2)
        decomposed = run_matmul_decomposed(
            job_d, testbed_d.pfs, MatmulConfig(n=n, tile=32, b_placement="dram")
        )
        testbed_r = Testbed(TINY.with_(cpu_slowdown=1.0))
        job_r = testbed_r.job(2, 2, 2)
        net_before = testbed_r.cluster.metrics.value("network.bytes")
        replicated = run_matmul(
            job_r, testbed_r.pfs, MatmulConfig(n=n, tile=32, b_placement="nvm")
        )
        replicated_net = (
            testbed_r.cluster.metrics.value("network.bytes") - net_before
        )
        assert decomposed.verified and replicated.verified
        # Ring circulation moves (P-1)/P of B per rank across nodes; the
        # shared-file broadcast moves B once per node (plus store I/O).
        assert decomposed.network_bytes > 0
        assert decomposed.compute_time > 0
