"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Engine, Event, Interrupt, Timeout


@pytest.fixture
def engine():
    return Engine()


class TestEventBasics:
    def test_starts_pending(self, engine):
        event = engine.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_until_triggered(self, engine):
        event = engine.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_succeed_then_process(self, engine):
        event = engine.event()
        event.succeed(42)
        assert event.triggered
        engine.run()
        assert event.processed
        assert event.value == 42

    def test_double_trigger_rejected(self, engine):
        event = engine.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()
        with pytest.raises(SimulationError):
            event.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, engine):
        with pytest.raises(SimulationError):
            engine.event().fail("not an exception")  # type: ignore[arg-type]

    def test_callback_after_processed_runs_immediately(self, engine):
        event = engine.event()
        event.succeed("done")
        engine.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["done"]


class TestClock:
    def test_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_timeout_advances_clock(self, engine):
        engine.timeout(5.0)
        engine.run()
        assert engine.now == 5.0

    def test_negative_timeout_rejected(self, engine):
        with pytest.raises(SimulationError):
            Timeout(engine, -1.0)

    def test_run_until_time(self, engine):
        engine.timeout(1.0)
        engine.timeout(10.0)
        engine.run(until=5.0)
        assert engine.now == 5.0

    def test_run_until_past_rejected(self, engine):
        engine.timeout(10.0)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run(until=5.0)

    def test_events_fire_in_time_order(self, engine):
        order = []
        for delay in (3.0, 1.0, 2.0):
            engine.timeout(delay).add_callback(
                lambda e, d=delay: order.append(d)
            )
        engine.run()
        assert order == [1.0, 2.0, 3.0]

    def test_fifo_for_simultaneous_events(self, engine):
        order = []
        for tag in range(5):
            engine.timeout(1.0).add_callback(lambda e, t=tag: order.append(t))
        engine.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcess:
    def test_return_value(self, engine):
        def proc():
            yield engine.timeout(1.0)
            return "result"

        assert engine.run(engine.process(proc())) == "result"

    def test_requires_generator(self, engine):
        with pytest.raises(SimulationError):
            engine.process(lambda: None)  # type: ignore[arg-type]

    def test_receives_event_value(self, engine):
        def proc():
            value = yield engine.timeout(0.5, value="payload")
            return value

        assert engine.run(engine.process(proc())) == "payload"

    def test_sequential_timeouts_accumulate(self, engine):
        def proc():
            yield engine.timeout(1.0)
            yield engine.timeout(2.0)
            return engine.now

        assert engine.run(engine.process(proc())) == 3.0

    def test_exception_propagates_to_runner(self, engine):
        def proc():
            yield engine.timeout(1.0)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            engine.run(engine.process(proc()))

    def test_failed_event_raises_inside_process(self, engine):
        def proc():
            event = engine.event()
            event.fail(RuntimeError("inner"))
            try:
                yield event
            except RuntimeError as exc:
                return f"caught {exc}"

        assert engine.run(engine.process(proc())) == "caught inner"

    def test_yielding_non_event_is_an_error(self, engine):
        def proc():
            yield 42  # type: ignore[misc]

        with pytest.raises(SimulationError, match="may only yield"):
            engine.run(engine.process(proc()))

    def test_process_waits_on_process(self, engine):
        def child():
            yield engine.timeout(2.0)
            return "child-result"

        def parent():
            result = yield engine.process(child())
            return (engine.now, result)

        assert engine.run(engine.process(parent())) == (2.0, "child-result")

    def test_yield_from_composition(self, engine):
        def helper(duration):
            yield engine.timeout(duration)
            return duration * 2

        def proc():
            a = yield from helper(1.0)
            b = yield from helper(2.0)
            return a + b

        assert engine.run(engine.process(proc())) == 6.0

    def test_deadlock_detected(self, engine):
        def proc():
            yield engine.event()  # nobody will trigger this

        with pytest.raises(SimulationError, match="deadlock"):
            engine.run(engine.process(proc()))

    def test_interrupt(self, engine):
        def victim():
            try:
                yield engine.timeout(100.0)
            except Interrupt as stop:
                return ("interrupted", stop.cause, engine.now)
            return "finished"

        target = engine.process(victim())

        def attacker():
            yield engine.timeout(1.0)
            target.interrupt("because")

        engine.process(attacker())
        assert engine.run(target) == ("interrupted", "because", 1.0)

    def test_interrupt_finished_process_rejected(self, engine):
        def quick():
            yield engine.timeout(0.1)

        proc = engine.process(quick())
        engine.run(proc)
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_run_all_returns_in_order(self, engine):
        def proc(delay, tag):
            yield engine.timeout(delay)
            return tag

        procs = [
            engine.process(proc(3.0, "a")),
            engine.process(proc(1.0, "b")),
        ]
        assert engine.run_all(procs) == ["a", "b"]


class TestConditions:
    def test_allof_waits_for_everything(self, engine):
        def proc():
            t1 = engine.timeout(1.0, value="x")
            t2 = engine.timeout(3.0, value="y")
            results = yield AllOf(engine, [t1, t2])
            return (engine.now, sorted(results.values()))

        assert engine.run(engine.process(proc())) == (3.0, ["x", "y"])

    def test_anyof_fires_on_first(self, engine):
        def proc():
            t1 = engine.timeout(1.0, value="fast")
            t2 = engine.timeout(5.0, value="slow")
            results = yield AnyOf(engine, [t1, t2])
            return (engine.now, list(results.values()))

        assert engine.run(engine.process(proc())) == (1.0, ["fast"])

    def test_empty_allof_fires_immediately(self, engine):
        def proc():
            yield AllOf(engine, [])
            return engine.now

        assert engine.run(engine.process(proc())) == 0.0

    def test_allof_fails_on_first_failure(self, engine):
        def failer():
            yield engine.timeout(1.0)
            raise KeyError("nope")

        def proc():
            yield AllOf(engine, [engine.process(failer()), engine.timeout(9.0)])

        with pytest.raises(KeyError):
            engine.run(engine.process(proc()))

    def test_cross_engine_rejected(self, engine):
        other = Engine()
        with pytest.raises(SimulationError):
            AllOf(engine, [other.timeout(1.0)])
