"""Tests for the flash translation layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.ftl import FlashTranslationLayer
from repro.errors import CapacityError, EnduranceExceededError
from repro.util.units import MiB


def make_ftl(**kwargs):
    defaults = dict(
        capacity=1 * MiB, page_size=4096, pages_per_block=16, overprovision=0.1
    )
    defaults.update(kwargs)
    return FlashTranslationLayer(**defaults)


class TestGeometry:
    def test_logical_smaller_than_physical(self):
        ftl = make_ftl()
        assert ftl.logical_pages < ftl.physical_pages
        assert ftl.logical_pages >= 0.85 * ftl.physical_pages

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_ftl(capacity=0)

    def test_bad_overprovision_rejected(self):
        with pytest.raises(ValueError):
            make_ftl(overprovision=0.9)


class TestMapping:
    def test_unwritten_page_unmapped(self):
        ftl = make_ftl()
        assert not ftl.read_page(0)

    def test_write_maps(self):
        ftl = make_ftl()
        ftl.write_pages([0, 1, 2])
        assert ftl.read_page(0)
        assert ftl.mapped_pages() == 3

    def test_out_of_range_rejected(self):
        ftl = make_ftl()
        with pytest.raises(CapacityError):
            ftl.write_pages([ftl.logical_pages])
        with pytest.raises(CapacityError):
            ftl.read_page(-1)

    def test_rewrite_is_out_of_place(self):
        ftl = make_ftl()
        ftl.write_pages([5])
        first = ftl._l2p[5]
        ftl.write_pages([5])
        assert ftl._l2p[5] != first
        assert ftl.mapped_pages() == 1

    def test_trim_unmaps(self):
        ftl = make_ftl()
        ftl.write_pages([0, 1])
        ftl.trim_pages([0])
        assert not ftl.read_page(0)
        assert ftl.read_page(1)

    def test_l2p_stays_bijective(self):
        ftl = make_ftl()
        for round_ in range(5):
            ftl.write_pages(list(range(0, ftl.logical_pages, 3)))
            ppns = list(ftl._l2p.values())
            assert len(ppns) == len(set(ppns)), "two LPNs share a PPN"


class TestGarbageCollection:
    def test_sustained_overwrite_triggers_gc(self):
        ftl = make_ftl()
        hot = list(range(32))
        for _ in range(50):
            ftl.write_pages(hot)
        assert ftl.stats.blocks_erased > 0
        assert ftl.stats.write_amplification >= 1.0
        # Hot overwrites invalidate whole blocks: amplification stays low.
        assert ftl.stats.write_amplification < 2.0

    def test_write_amplification_grows_with_fill(self):
        """A nearly full device with random overwrites relocates more."""
        ftl = make_ftl(capacity=1 * MiB, overprovision=0.1)
        # Fill most of the logical space.
        live = int(ftl.logical_pages * 0.95)
        ftl.write_pages(list(range(live)))
        import random

        rng = random.Random(5)
        for _ in range(40):
            ftl.write_pages([rng.randrange(live) for _ in range(16)])
        assert ftl.stats.write_amplification > 1.05

    def test_overprovision_sustains_full_logical_rewrites(self):
        """With overprovisioning, rewriting the whole logical space
        repeatedly always finds GC victims."""
        ftl = make_ftl(overprovision=0.2)
        everything = list(range(ftl.logical_pages))
        for _ in range(5):
            ftl.write_pages(everything)
        assert ftl.mapped_pages() == ftl.logical_pages

    def test_zero_overprovision_fills_up(self):
        """Without overprovisioning a fully live device cannot GC."""
        ftl = make_ftl(overprovision=0.0)
        with pytest.raises(CapacityError):
            for _ in range(3):
                ftl.write_pages(list(range(ftl.logical_pages)))


class TestWearLeveling:
    def test_spread_is_bounded(self):
        ftl = make_ftl(wear_leveling=True)
        hot = list(range(16))
        for _ in range(200):
            ftl.write_pages(hot)
        low, high = ftl.erase_count_spread()
        assert high - low <= max(3, high // 2)

    def test_endurance_enforced(self):
        ftl = make_ftl(
            capacity=256 * 1024, pages_per_block=8, endurance_cycles=5
        )
        hot = list(range(8))
        with pytest.raises(EnduranceExceededError):
            for _ in range(10_000):
                ftl.write_pages(hot)

    def test_stats_consistency(self):
        ftl = make_ftl()
        for _ in range(30):
            ftl.write_pages(list(range(48)))
        stats = ftl.stats
        assert stats.flash_pages_written == (
            stats.host_pages_written + stats.pages_relocated
        )


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
        min_size=1,
        max_size=40,
    )
)
def test_property_mapping_tracks_reference(write_batches):
    """After any write/trim sequence, the mapped set and bijectivity hold."""
    ftl = make_ftl(capacity=2 * MiB)
    mapped: set[int] = set()
    for batch in write_batches:
        lpns = [p % ftl.logical_pages for p in batch]
        if len(mapped) > 80:
            victims = sorted(mapped)[:40]
            ftl.trim_pages(victims)
            mapped.difference_update(victims)
        ftl.write_pages(lpns)
        mapped.update(lpns)
        assert ftl.mapped_pages() == len(mapped)
        ppns = list(ftl._l2p.values())
        assert len(ppns) == len(set(ppns))
        for lpn in mapped:
            assert ftl.read_page(lpn)
