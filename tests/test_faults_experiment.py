"""The fault-injection experiment: verified outcomes, digest determinism.

Marked ``faults`` (excluded from the default tier-1 run, like
``wallclock``): each leg simulates full STREAM/checkpoint workloads, so
this file costs noticeably more wall time than the unit tests.  CI runs
it in a dedicated job alongside a two-process digest comparison.
"""

import pytest

from repro.experiments import TINY, faults

pytestmark = pytest.mark.faults


def test_faults_report_verified_and_digest_stable():
    first = faults(TINY)
    assert first.verified

    statuses = {(row[0], row[1]): row[3] for row in first.rows}
    # r=2 rides through the crash on both workloads.
    assert statuses[("STREAM", 2)] == "ok"
    assert statuses[("checkpoint", 2)] == "ok"
    # r=1 fails cleanly (a typed error, not a hang or silent corruption).
    assert statuses[("STREAM", 1)] == "ChunkUnavailableError"
    assert statuses[("checkpoint", 1)] in (
        "ChunkUnavailableError",
        "CheckpointError",
    )
    # Recovery actually happened at r=2: chunks were re-replicated.
    rereplicated = {(row[0], row[1]): row[7] for row in first.rows}
    assert rereplicated[("STREAM", 2)] > 0
    assert rereplicated[("checkpoint", 2)] > 0

    # Identical seed + identical FaultPlan => identical digest.  The
    # digest covers rows, claims, and the byte-flow counters the
    # orchestrator folds in, so this is the same invariant the result
    # cache and the serial/parallel identity check rely on.
    second = faults(TINY)
    assert second.digest() == first.digest()
