"""Property test: numpy IntervalSet vs the pure-python bisect reference.

The reference below is the pre-vectorization implementation (sorted
python lists + ``bisect``).  Random operation sequences — including
empty, adjacent-coalesce, and multi-interval-merge cases — must leave
both implementations with identical canonical interval lists and
identical query answers.
"""

from __future__ import annotations

import bisect
import random

import pytest

from repro.util.intervals import IntervalSet


class ReferenceIntervalSet:
    """The original pure-python implementation, kept as the test oracle."""

    def __init__(self, intervals=()):
        self._starts = []
        self._stops = []
        for start, stop in intervals:
            self.add(start, stop)

    def add(self, start, stop):
        if start > stop:
            raise ValueError(f"invalid interval [{start}, {stop})")
        if start == stop:
            return
        lo = bisect.bisect_left(self._stops, start)
        hi = bisect.bisect_right(self._starts, stop)
        if lo < hi:
            start = min(start, self._starts[lo])
            stop = max(stop, self._stops[hi - 1])
        self._starts[lo:hi] = [start]
        self._stops[lo:hi] = [stop]

    def discard(self, start, stop):
        if start > stop:
            raise ValueError(f"invalid interval [{start}, {stop})")
        if start == stop or not self._starts:
            return
        lo = bisect.bisect_right(self._stops, start)
        hi = bisect.bisect_left(self._starts, stop)
        if lo >= hi:
            return
        new_starts = []
        new_stops = []
        if self._starts[lo] < start:
            new_starts.append(self._starts[lo])
            new_stops.append(start)
        if self._stops[hi - 1] > stop:
            new_starts.append(stop)
            new_stops.append(self._stops[hi - 1])
        self._starts[lo:hi] = new_starts
        self._stops[lo:hi] = new_stops

    def __iter__(self):
        return iter(zip(self._starts, self._stops))

    def total(self):
        return sum(b - a for a, b in self)

    def contains(self, point):
        idx = bisect.bisect_right(self._starts, point) - 1
        return idx >= 0 and point < self._stops[idx]

    def overlaps(self, start, stop):
        if start >= stop:
            return False
        lo = bisect.bisect_right(self._stops, start)
        return lo < len(self._starts) and self._starts[lo] < stop

    def intersection(self, start, stop):
        result = []
        if start >= stop:
            return result
        lo = bisect.bisect_right(self._stops, start)
        for i in range(lo, len(self._starts)):
            a, b = self._starts[i], self._stops[i]
            if a >= stop:
                break
            result.append((max(a, start), min(b, stop)))
        return result

    def gaps(self, start, stop):
        result = []
        cursor = start
        for a, b in self.intersection(start, stop):
            if a > cursor:
                result.append((cursor, a))
            cursor = b
        if cursor < stop:
            result.append((cursor, stop))
        return result

    def covers(self, start, stop):
        if start >= stop:
            return True
        inner = self.intersection(start, stop)
        return len(inner) == 1 and inner[0] == (start, stop)


def _rand_interval(rng, span=64):
    start = rng.randrange(0, span)
    stop = start + rng.randrange(0, span // 4)
    return start, stop


def _assert_same(subject: IntervalSet, oracle: ReferenceIntervalSet):
    assert list(subject) == list(oracle)
    assert subject.total() == oracle.total()
    assert len(subject) == len(oracle._starts)
    assert bool(subject) == bool(oracle._starts)
    # Canonical form: sorted, disjoint, coalesced, no empties.
    spans = list(subject)
    for (a, b) in spans:
        assert a < b
        assert isinstance(a, int) and not hasattr(a, "dtype")
        assert isinstance(b, int) and not hasattr(b, "dtype")
    for (_, b0), (a1, _) in zip(spans, spans[1:]):
        assert b0 < a1


@pytest.mark.parametrize("seed", range(30))
def test_random_mutation_sequences_match_reference(seed):
    rng = random.Random(seed)
    subject = IntervalSet()
    oracle = ReferenceIntervalSet()
    for _ in range(120):
        op = rng.random()
        start, stop = _rand_interval(rng)
        if op < 0.55:
            subject.add(start, stop)
            oracle.add(start, stop)
        elif op < 0.85:
            subject.discard(start, stop)
            oracle.discard(start, stop)
        else:
            qa, qb = _rand_interval(rng)
            assert subject.intersection(qa, qb) == oracle.intersection(qa, qb)
            assert subject.gaps(qa, qb) == oracle.gaps(qa, qb)
            assert subject.covers(qa, qb) == oracle.covers(qa, qb)
            assert subject.overlaps(qa, qb) == oracle.overlaps(qa, qb)
            assert subject.contains(qa) == oracle.contains(qa)
        _assert_same(subject, oracle)


@pytest.mark.parametrize("seed", range(15))
def test_add_many_matches_sequential_adds(seed):
    rng = random.Random(1000 + seed)
    base = [(a, b) for a, b in (_rand_interval(rng) for _ in range(10))]
    subject = IntervalSet(base)
    serial = IntervalSet(base)
    oracle = ReferenceIntervalSet(base)
    batch = [_rand_interval(rng) for _ in range(rng.randrange(0, 20))]
    subject.add_many([a for a, _ in batch], [b for _, b in batch])
    for a, b in batch:
        serial.add(a, b)
        oracle.add(a, b)
    assert list(subject) == list(serial)
    _assert_same(subject, oracle)


@pytest.mark.parametrize("seed", range(15))
def test_gaps_many_matches_per_range_gaps(seed):
    rng = random.Random(2000 + seed)
    spans = [_rand_interval(rng) for _ in range(8)]
    subject = IntervalSet(spans)
    oracle = ReferenceIntervalSet(spans)
    queries = [_rand_interval(rng) for _ in range(12)]
    bulk = subject.gaps_many(queries)
    assert bulk == [oracle.gaps(a, b) for a, b in queries]


def test_adjacent_and_merge_edges():
    s = IntervalSet()
    ref = ReferenceIntervalSet()
    for a, b in [(0, 0), (4, 8), (8, 12), (0, 2), (2, 4), (20, 24),
                 (14, 16), (12, 30), (0, 30)]:
        s.add(a, b)
        ref.add(a, b)
        _assert_same(s, ref)
    assert list(s) == [(0, 30)]
    for a, b in [(5, 5), (0, 1), (29, 30), (10, 20), (0, 30)]:
        s.discard(a, b)
        ref.discard(a, b)
        _assert_same(s, ref)
    assert list(s) == []


def test_copy_eq_and_clear():
    s = IntervalSet([(1, 3), (5, 9)])
    c = s.copy()
    assert s == c
    c.add(3, 5)
    assert s != c
    assert list(c) == [(1, 9)]
    assert list(s) == [(1, 3), (5, 9)]
    s.clear()
    assert not s and list(s) == []


def test_add_many_rejects_inverted_interval():
    s = IntervalSet()
    with pytest.raises(ValueError):
        s.add_many([3], [1])
    assert list(s) == []
