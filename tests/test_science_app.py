"""Tests for the GTS-like science-application workload."""

import numpy as np
import pytest

from repro.errors import CapacityError, NVMallocError
from repro.experiments.configs import TINY
from repro.experiments.runner import Testbed
from repro.util.units import KiB, MiB
from repro.workloads import ScienceAppConfig, run_science_app
from repro.workloads.science_app import reference_run


def make_job(x=2, y=2, z=2, dram=None):
    scale = TINY.with_(cpu_slowdown=1.0)
    if dram is not None:
        scale = scale.with_(dram_per_node=dram)
    testbed = Testbed(scale)
    return testbed, testbed.job(x, y, z)


class TestConfig:
    def test_validation(self):
        with pytest.raises(NVMallocError):
            ScienceAppConfig(placement="tape")
        with pytest.raises(NVMallocError):
            ScienceAppConfig(steps=0)

    def test_sizes(self):
        config = ScienceAppConfig(particles_per_rank=1000, grid_cells=64)
        assert config.particle_bytes_per_rank == 16_000
        assert config.field_bytes == 512


class TestReference:
    def test_deterministic(self):
        config = ScienceAppConfig(particles_per_rank=256, grid_cells=64, steps=3)
        assert reference_run(config, 4) == reference_run(config, 4)

    def test_positions_stay_in_grid(self):
        config = ScienceAppConfig(particles_per_rank=512, grid_cells=64, steps=5)
        total = reference_run(config, 2)
        assert 0.0 <= total <= 2 * 512 * 64


class TestRun:
    @pytest.mark.parametrize("placement", ["dram", "nvm"])
    def test_matches_reference(self, placement):
        testbed, job = make_job()
        config = ScienceAppConfig(
            particles_per_rank=1 << 11, grid_cells=256, steps=3,
            checkpoint_every=0, placement=placement,
        )
        result = run_science_app(job, config)
        assert result.verified, f"{placement} run diverged from reference"
        assert result.placements["particles"] == placement

    def test_auto_placement_spills_when_tight(self):
        testbed, job = make_job()
        config = ScienceAppConfig(
            particles_per_rank=1 << 12, grid_cells=256, steps=2,
            checkpoint_every=0, placement="auto",
            dram_budget_per_rank=4 * KiB,  # nothing fits
        )
        result = run_science_app(job, config)
        assert result.verified
        assert result.placements["particles"] == "nvm"

    def test_auto_placement_prefers_dram_when_roomy(self):
        testbed, job = make_job()
        config = ScienceAppConfig(
            particles_per_rank=1 << 10, grid_cells=256, steps=2,
            checkpoint_every=0, placement="auto",
            dram_budget_per_rank=1 * MiB,
        )
        result = run_science_app(job, config)
        assert result.verified
        assert result.placements["particles"] == "dram"

    def test_checkpointing_links_particles(self):
        testbed, job = make_job()
        config = ScienceAppConfig(
            particles_per_rank=1 << 12, grid_cells=256, steps=4,
            checkpoint_every=2, placement="nvm",
        )
        result = run_science_app(job, config)
        assert result.verified
        assert result.restart_verified
        # 8 ranks x 2 checkpoints each.
        assert result.checkpoints_taken == job.config.num_ranks * 2
        assert result.checkpoint_bytes_linked > result.checkpoint_bytes_written

    def test_out_of_core_beats_infeasible_dram(self):
        """Particles too big for DRAM: dram placement fails, nvm runs."""
        testbed, job = make_job(dram=2 * MiB)
        big = ScienceAppConfig(
            particles_per_rank=1 << 15, grid_cells=256, steps=1,
            checkpoint_every=0, placement="dram", verify=False,
        )
        with pytest.raises(CapacityError):
            run_science_app(job, big)
        testbed2, job2 = make_job(dram=2 * MiB)
        nvm = ScienceAppConfig(
            particles_per_rank=1 << 15, grid_cells=256, steps=1,
            checkpoint_every=0, placement="nvm",
        )
        assert run_science_app(job2, nvm).verified
