"""Tests for repro.util.units."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    TB,
    TiB,
    format_rate,
    format_size,
    format_time,
    parse_size,
)


class TestConstants:
    def test_binary_units_are_powers_of_1024(self):
        assert KiB == 1024
        assert MiB == 1024**2
        assert GiB == 1024**3
        assert TiB == 1024**4

    def test_decimal_units_are_powers_of_1000(self):
        assert KB == 1000
        assert MB == 1000**2
        assert GB == 1000**3
        assert TB == 1000**4


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("123", 123),
            ("1KB", 1000),
            ("1KiB", 1024),
            ("256KiB", 256 * 1024),
            ("1.5GB", 1_500_000_000),
            ("2MiB", 2 * 1024 * 1024),
            ("1tb", TB),
            (" 64 MiB ", 64 * MiB),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    def test_integer_passthrough(self):
        assert parse_size(4096) == 4096

    def test_negative_integer_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    @pytest.mark.parametrize("text", ["", "abc", "12XB", "--3MB", "1.2.3KB"])
    def test_malformed_rejected(self, text):
        with pytest.raises(ValueError):
            parse_size(text)

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ValueError):
            parse_size("1.5B")

    @given(st.integers(min_value=0, max_value=10**15))
    def test_roundtrip_plain_integers(self, n):
        assert parse_size(str(n)) == n


class TestFormatSize:
    def test_bytes(self):
        assert format_size(0) == "0B"
        assert format_size(512) == "512B"

    def test_binary_scaling(self):
        assert format_size(1024) == "1.00KiB"
        assert format_size(3 * MiB) == "3.00MiB"
        assert format_size(5 * GiB) == "5.00GiB"

    def test_decimal_scaling(self):
        assert format_size(250 * MB, binary=False) == "250.00MB"

    def test_negative(self):
        assert format_size(-1024) == "-1.00KiB"

    @given(st.integers(min_value=0, max_value=2**60))
    def test_never_raises(self, n):
        assert isinstance(format_size(n), str)


class TestFormatRate:
    def test_uses_decimal_units(self):
        assert format_rate(250 * MB) == "250.00MB/s"


class TestFormatTime:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0, "0s"),
            (5e-9, "5.0ns"),
            (75e-6, "75.0us"),
            (1.5e-3, "1.50ms"),
            (2.5, "2.500s"),
        ],
    )
    def test_scales(self, seconds, expected):
        assert format_time(seconds) == expected

    def test_negative(self):
        assert format_time(-1e-3).startswith("-")
