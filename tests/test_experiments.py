"""Tests for the experiment drivers (at TINY scale for speed)."""

import pytest

from repro.experiments import (
    SMALL,
    TINY,
    ExperimentScale,
    Testbed,
    checkpoint_experiment,
    fig3,
    fig4,
    table1,
    table6,
    table7,
)
from repro.experiments.report import ExperimentReport
from repro.util.units import KiB, MiB


class TestScales:
    def test_small_preserves_paper_ratios(self):
        # Matrix vs DRAM: 2 of 8 replicated copies fit (paper: 2 GB vs 8 GB).
        assert 2 * SMALL.matrix_bytes + SMALL.matrix_bytes <= SMALL.dram_per_node
        assert 8 * SMALL.matrix_bytes > SMALL.dram_per_node
        # Sort oversubscription ~1.5625 (paper: 200 GB vs 128 GB).
        budget = SMALL.sort_dram_per_rank * 128 * 8
        ratio = SMALL.sort_elements * 8 / budget
        assert 1.4 < ratio < 1.7
        # Random-write region dwarfs the FUSE cache (paper: 2 GB vs 64 MB).
        assert SMALL.randwrite_region >= 16 * SMALL.fuse_cache

    def test_with_override(self):
        changed = SMALL.with_(matrix_n=64)
        assert changed.matrix_n == 64
        assert changed.fuse_cache == SMALL.fuse_cache
        assert SMALL.matrix_n != 64  # original untouched

    def test_cpu_spec_slowdown(self):
        spec = SMALL.cpu_spec()
        assert spec.flops == pytest.approx(4.8e9 / SMALL.cpu_slowdown)


class TestTestbed:
    def test_fresh_state_per_testbed(self):
        t1 = Testbed(TINY)
        t2 = Testbed(TINY)
        assert t1.cluster is not t2.cluster
        assert t1.cluster.metrics is not t2.cluster.metrics

    def test_job_uses_scale_defaults(self):
        testbed = Testbed(TINY)
        job = testbed.job(2, 2, 2)
        assert job.config.fuse_cache_bytes == TINY.fuse_cache
        assert job.config.page_cache_bytes == TINY.page_cache


class TestReport:
    def test_render_contains_rows_and_claims(self):
        report = ExperimentReport(
            experiment="Table X", title="demo", headers=["a", "b"]
        )
        report.add_row("r1", 1.5)
        report.claim("paper says", "we measured")
        text = report.render()
        assert "Table X" in text
        assert "r1" in text
        assert "paper says" in text
        assert "we measured" in text
        assert "[OK]" in text

    def test_unverified_marker(self):
        report = ExperimentReport(
            experiment="T", title="t", headers=["x"], verified=False
        )
        assert "UNVERIFIED" in report.render()


class TestDrivers:
    """Drivers run end-to-end at TINY scale and produce sane reports."""

    def test_table1_is_static(self):
        report = table1()
        assert report.verified
        assert len(report.rows) == 5
        assert any("Intel X25-E" in str(row) for row in report.rows)

    def test_fig3_shapes(self):
        report = fig3(TINY)
        assert report.verified
        assert len(report.rows) == 8
        labels = [row[0] for row in report.rows]
        assert labels[0] == "DRAM(2:16:0)"
        assert "R-SSD(8:8:1)" in labels
        # Stage breakdown sums to the total.
        for row in report.rows:
            assert sum(row[1:6]) == pytest.approx(row[6])

    def test_fig3_more_procs_beat_dram_baseline_at_small(self):
        """The headline Fig. 3 shape needs the calibrated SMALL scale;
        TINY is structural-only."""
        report = fig3(SMALL)
        totals = {row[0]: row[6] for row in report.rows}
        assert totals["L-SSD(8:16:16)"] < totals["DRAM(2:16:0)"]
        # Remote overhead is small (paper: 1.42%).
        assert totals["R-SSD(8:8:8)"] < totals["L-SSD(8:8:8)"] * 1.10

    def test_fig4_structure(self):
        report = fig4(TINY)
        assert report.verified
        assert len(report.rows) == 4
        for row in report.rows:
            assert row[1] > 0 and row[2] > 0

    def test_table6_hybrid_wins(self):
        scale = TINY.with_(sort_elements=1 << 16, sort_dram_per_rank=320)
        report = table6(scale)
        assert report.verified
        times = {row[0]: row[2] for row in report.rows}
        assert times["L-SSD(8:16:16)"] < times["DRAM(8:16:0)"]

    def test_table7_optimization_wins(self):
        scale = TINY.with_(randwrite_region=4 * MiB, randwrite_count=512)
        report = table7(scale)
        assert report.verified
        by_mode = {row[0]: row[2] for row in report.rows}
        assert by_mode["w/o Optimization"] > 5 * by_mode["w/ Optimization"]

    def test_checkpoint_experiment(self):
        report = checkpoint_experiment(TINY)
        assert report.verified
        assert len(report.rows) == 4
        # Every step writes only the DRAM image and links the variable.
        for row in report.rows:
            assert row[1] == TINY.checkpoint_dram_state
            assert row[2] == pytest.approx(TINY.checkpoint_variable)
