"""Property tests pinning the kernel's observable event ordering.

The engine splits scheduling between a time-ordered heap and a zero-delay
"now ring" (see ``repro/sim/engine.py``).  The observable contract is that
this split is invisible: events fire exactly as if every schedule had
pushed a ``(time, seq)`` entry onto one global heap, with ``seq`` assigned
in schedule order — i.e. same-time events fire FIFO in schedule order.

These tests drive randomized schedules through the real kernel and through
a deliberately naive heapq-only reference kernel written here, and require
bit-identical firing orders, times, and process values.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.sim.engine import Engine
from repro.sim.events import Event

# Lots of duplicates and zeros on purpose: ties and zero-delay chains are
# exactly where the ring/heap split could diverge from the reference.
DELAY_POOL = [0.0, 0.0, 0.0, 0.25, 0.25, 0.5, 1.0, 1.0, 1.5, 3.0]


def _random_graph(rng: random.Random, n_events: int):
    """A random event DAG: event i, when fired, schedules its children.

    Returns (roots, children, failed) where roots is a list of
    (delay, event_id) scheduled up front, children[i] is a list of
    (delay, child_id) scheduled from i's callback, and failed is the set
    of events triggered through fail() instead of succeed().
    """
    children: list[list[tuple[float, int]]] = [[] for _ in range(n_events)]
    n_roots = max(1, n_events // 8)
    for i in range(n_roots, n_events):
        parent = rng.randrange(i)  # parents precede children: acyclic
        children[parent].append((rng.choice(DELAY_POOL), i))
    roots = [(rng.choice(DELAY_POOL), i) for i in range(n_roots)]
    failed = {i for i in range(n_events) if rng.random() < 0.15}
    return roots, children, failed


def _reference_order(roots, children):
    """Naive kernel: one heap, one global seq, nothing else."""
    heap: list[tuple[float, int, int]] = []
    seq = 0
    now = 0.0
    trace: list[tuple[float, int]] = []

    def schedule(event_id: int, delay: float) -> None:
        nonlocal seq
        seq += 1
        heapq.heappush(heap, (now + delay, seq, event_id))

    for delay, event_id in roots:
        schedule(event_id, delay)
    while heap:
        time, _, event_id = heapq.heappop(heap)
        now = time
        trace.append((now, event_id))
        for delay, child in children[event_id]:
            schedule(child, delay)
    return trace


def _engine_order(roots, children, failed):
    """The same graph through the real ring+heap kernel."""
    engine = Engine()
    trace: list[tuple[float, int]] = []

    def schedule(event_id: int, delay: float) -> None:
        event = Event(engine)
        event.add_callback(lambda _ev, eid=event_id: fire(eid))
        if event_id in failed:
            event.fail(RuntimeError(f"event {event_id}"), delay=delay)
        else:
            event.succeed(event_id, delay=delay)

    def fire(event_id: int) -> None:
        trace.append((engine.now, event_id))
        for delay, child in children[event_id]:
            schedule(child, delay)

    for delay, event_id in roots:
        schedule(event_id, delay)
    engine.run()
    return trace


@pytest.mark.parametrize("seed", range(12))
def test_event_graph_order_matches_reference(seed: int) -> None:
    rng = random.Random(seed)
    roots, children, failed = _random_graph(rng, n_events=200 + seed * 37)
    expected = _reference_order(roots, children)
    actual = _engine_order(roots, children, failed)
    assert actual == expected


def _reference_process_run(scripts):
    """Reference for N concurrent timeout-looping processes.

    Process p is born as a zero-delay bootstrap (in creation order, like
    Engine.process), then schedules its next timeout the instant it
    resumes — one heap entry alive per process, global seq in schedule
    order.
    """
    heap: list[tuple[float, int, int, int]] = []
    seq = 0
    now = 0.0
    trace: list[tuple[float, int, int]] = []

    def schedule(pid: int, step: int, delay: float) -> None:
        nonlocal seq
        seq += 1
        heapq.heappush(heap, (now + delay, seq, pid, step))

    for pid in range(len(scripts)):
        schedule(pid, -1, 0.0)  # bootstrap resume
    while heap:
        time, _, pid, step = heapq.heappop(heap)
        now = time
        trace.append((now, pid, step))
        nxt = step + 1
        if nxt < len(scripts[pid]):
            schedule(pid, nxt, scripts[pid][nxt])
    values = [sum(range(len(script))) for script in scripts]
    return trace, values


def _engine_process_run(scripts):
    engine = Engine()
    trace: list[tuple[float, int, int]] = []

    def proc(pid: int):
        trace.append((engine.now, pid, -1))
        total = 0
        for step, delay in enumerate(scripts[pid]):
            value = yield engine.timeout(delay, value=step)
            total += value
            trace.append((engine.now, pid, step))
        return total

    processes = [engine.process(proc(pid)) for pid in range(len(scripts))]
    engine.run()
    return trace, [p.value for p in processes]


@pytest.mark.parametrize("seed", range(8))
def test_process_timing_and_values_match_reference(seed: int) -> None:
    rng = random.Random(1000 + seed)
    scripts = [
        [rng.choice(DELAY_POOL) for _ in range(rng.randrange(5, 40))]
        for _ in range(rng.randrange(2, 12))
    ]
    expected_trace, expected_values = _reference_process_run(scripts)
    actual_trace, actual_values = _engine_process_run(scripts)
    assert actual_trace == expected_trace
    assert actual_values == expected_values


def _cohort_rounds(rng: random.Random):
    """Random event soup in cohorts: rounds of (start_delay, [delays]).

    Cohort sizes sweep 1..64 — the batched paths must be bit-identical
    to the serial ones at every size, including the degenerate cohort of
    one.
    """
    rounds = []
    for _ in range(rng.randrange(4, 10)):
        size = rng.randrange(1, 65)
        rounds.append((
            rng.choice(DELAY_POOL),
            [rng.choice(DELAY_POOL) for _ in range(size)],
        ))
    return rounds


def _cohort_run(rounds, batched: bool):
    """Drive cohorts through schedule_batch or a per-event schedule loop.

    The serial loop is the reference: existing tests in this file prove
    it bit-identical to the naive one-heap kernel, so batched == serial
    here extends that proof to the vectorized path.  Fired events spawn
    zero-delay followers with a deterministic pattern so ring ordering
    inside an instant is exercised too.
    """
    engine = Engine()
    trace: list[tuple[float, object]] = []

    def make(eid):
        event = Event(engine)
        event._value = eid
        event._ok = True
        event._scheduled = True
        event.add_callback(lambda ev: fire(ev))
        return event

    def fire(event) -> None:
        eid = event._value
        trace.append((engine.now, eid))
        round_idx, i = eid[0], eid[1]
        if len(eid) == 2 and i % 7 == 0:  # follower inside the instant
            follower = make((round_idx, i, "follower"))
            if batched:
                engine.schedule_batch([follower], [0.0])
            else:
                engine.schedule(follower, 0.0)

    def driver():
        for round_idx, (start, delays) in enumerate(rounds):
            yield engine.timeout(start)
            events = [make((round_idx, i)) for i in range(len(delays))]
            if batched:
                engine.schedule_batch(events, delays)
            else:
                for event, delay in zip(events, delays):
                    engine.schedule(event, delay)

    engine.process(driver())
    engine.run()
    return trace, engine.events_processed


@pytest.mark.parametrize("seed", range(10))
def test_schedule_batch_matches_serial_schedule(seed: int) -> None:
    rounds = _cohort_rounds(random.Random(2000 + seed))
    serial = _cohort_run(rounds, batched=False)
    vectorized = _cohort_run(rounds, batched=True)
    assert vectorized == serial


@pytest.mark.parametrize("size", [1, 2, 3, 16, 64])
def test_timeouts_cohort_matches_timeout_loop(size: int) -> None:
    """engine.timeouts(delays) == [engine.timeout(d) for d in delays]."""
    rng = random.Random(size)
    delays = [rng.choice(DELAY_POOL) for _ in range(size)]

    def run(bulk: bool):
        engine = Engine()
        trace: list[tuple[float, int]] = []

        def driver():
            yield engine.timeout(0.5)  # non-zero now: exercises now+delay
            if bulk:
                timeouts = engine.timeouts(delays)
            else:
                timeouts = [engine.timeout(d) for d in delays]
            for i, timeout in enumerate(timeouts):
                timeout.add_callback(
                    lambda _e, i=i: trace.append((engine.now, i))
                )
            yield engine.timeout(10.0)  # outlive every cohort member

        engine.run(engine.process(driver()))
        return trace, engine.events_processed

    assert run(bulk=True) == run(bulk=False)


def test_schedule_batch_rejects_bad_input() -> None:
    from repro.errors import SimulationError

    engine = Engine()
    events = [Event(engine), Event(engine)]
    for event in events:
        event._ok = True
        event._scheduled = True
    with pytest.raises(SimulationError):
        engine.schedule_batch(events, [0.0])  # length mismatch
    with pytest.raises(SimulationError):
        engine.schedule_batch(events, [0.0, -1.0])  # into the past
    with pytest.raises(SimulationError):
        engine.timeouts([0.5, -0.5])


def test_tiny_delay_rounds_onto_the_ring_in_seq_order() -> None:
    """A delay too small to advance the float clock fires at ``now`` —
    after heap entries already at ``now``, in schedule order, exactly as
    a (now, seq) heap entry would have."""
    engine = Engine()
    order: list[str] = []

    def driver():
        yield engine.timeout(1.0)
        # 1.0 + 1e-18 == 1.0 in binary64: the positive delay cannot
        # advance the clock, so the timeout must fall back to the ring.
        early = engine.timeout(1e-18)
        early.add_callback(lambda _e: order.append("tiny"))
        late = engine.timeout(0.0)
        late.add_callback(lambda _e: order.append("zero"))
        yield engine.timeout(0.5)

    engine.run(engine.process(driver()))
    assert order == ["tiny", "zero"]
