"""Tests for cluster utilization reporting."""

import pytest

from repro.cluster import ComponentUtilization, hottest, utilization_report
from repro.util.units import MB


class TestUtilizationReport:
    def test_idle_cluster_reads_zero(self, small_cluster):
        rows = utilization_report(small_cluster, window=1.0)
        assert all(r.utilization == 0.0 for r in rows)
        kinds = {r.kind for r in rows}
        assert kinds == {"core", "dram", "ssd", "nic.tx", "nic.rx"}

    def test_core_utilization_tracks_compute(self, engine, small_cluster):
        node = small_cluster.node(0)

        def worker():
            yield from node.cores[0].compute(node.cores[0].spec.flops)  # 1 s

        engine.run(engine.process(worker()))
        rows = {
            r.component: r
            for r in utilization_report(small_cluster, window=engine.now)
        }
        # 1 of 4 cores busy the whole window.
        assert rows["node000.cores"].utilization == pytest.approx(0.25)
        assert rows["node001.cores"].utilization == 0.0

    def test_nic_utilization_tracks_transfers(self, engine, small_cluster):
        net = small_cluster.network

        def xfer():
            yield from net.transfer("node000", "node001", 10 * MB)

        engine.run(engine.process(xfer()))
        tx = hottest(small_cluster, "nic.tx", window=engine.now)
        rx = hottest(small_cluster, "nic.rx", window=engine.now)
        assert tx.component == "node000.nic.tx"
        assert rx.component == "node001.nic.rx"
        assert tx.utilization > 0.9  # busy nearly the whole window

    def test_ssd_utilization(self, engine, small_cluster):
        ssd = small_cluster.node(2).ssd
        assert ssd is not None

        def io():
            yield from ssd.write_extent(0, 1 * MB)

        engine.run(engine.process(io()))
        row = hottest(small_cluster, "ssd", window=engine.now)
        assert row.component == "node002.ssd"
        assert row.utilization > 0.9

    def test_hottest_unknown_kind(self, small_cluster):
        with pytest.raises(ValueError):
            hottest(small_cluster, "gpu")

    def test_rows_sorted_hot_first(self, engine, small_cluster):
        def io(node_id, size):
            ssd = small_cluster.node(node_id).ssd
            yield from ssd.write_extent(0, size)

        engine.run_all([
            engine.process(io(0, 4 * MB)),
            engine.process(io(1, 1 * MB)),
        ])
        ssd_rows = [
            r for r in utilization_report(small_cluster, window=engine.now)
            if r.kind == "ssd"
        ]
        assert ssd_rows[0].component == "node000.ssd"
        utils = [r.utilization for r in ssd_rows]
        assert utils == sorted(utils, reverse=True)
