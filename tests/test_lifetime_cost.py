"""Tests for the SSD lifetime estimator and provisioning-cost analysis."""

import pytest

from repro.devices.lifetime import (
    endurance_budget_bytes,
    estimated_lifetime_days,
    lifetime_gain_from_optimization,
)
from repro.devices.specs import DDR3_1600, FUSIONIO_IODRIVE_DUO, INTEL_X25E
from repro.experiments.configs import TINY
from repro.experiments.cost import cost_analysis, memory_subsystem_cost
from repro.util.units import GB, GiB


class TestLifetime:
    def test_endurance_budget(self):
        # SLC X25-E: 32 GB x 100k cycles.
        assert endurance_budget_bytes(INTEL_X25E) == 32 * GB * 100_000

    def test_not_an_ssd(self):
        with pytest.raises(ValueError):
            endurance_budget_bytes(DDR3_1600)

    def test_lifetime_scales_inversely_with_traffic(self):
        one = estimated_lifetime_days(INTEL_X25E, 100 * GB)
        two = estimated_lifetime_days(INTEL_X25E, 200 * GB)
        assert one == pytest.approx(2 * two)

    def test_write_amplification_shortens_life(self):
        clean = estimated_lifetime_days(INTEL_X25E, 100 * GB)
        amplified = estimated_lifetime_days(
            INTEL_X25E, 100 * GB, write_amplification=2.0
        )
        assert amplified == pytest.approx(clean / 2)

    def test_mlc_wears_faster_per_byte(self):
        slc = estimated_lifetime_days(INTEL_X25E, 100 * GB)
        mlc = estimated_lifetime_days(FUSIONIO_IODRIVE_DUO, 100 * GB)
        # The ioDrive has 20x the capacity but 10x fewer cycles: its
        # budget is still 2x the X25-E's.
        assert mlc == pytest.approx(2 * slc)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimated_lifetime_days(INTEL_X25E, 0)
        with pytest.raises(ValueError):
            estimated_lifetime_days(INTEL_X25E, 1, write_amplification=0.5)

    def test_optimization_gain_matches_paper(self):
        # Table VII: 19.3 GB vs 504 MB.
        gain = lifetime_gain_from_optimization(19.3e9, 504e6)
        assert gain == pytest.approx(38.3, rel=0.01)


class TestCostAnalysis:
    def test_memory_cost_components(self):
        from repro.experiments.cost import DRAM_DOLLARS_PER_GIB

        dram_only = memory_subsystem_cost(16, 8.0, 0)
        with_ssds = memory_subsystem_cost(16, 8.0, 16)
        assert with_ssds - dram_only == pytest.approx(16 * 589.0)
        assert dram_only == pytest.approx(16 * 8 * DRAM_DOLLARS_PER_GIB)
        # Sanity: the DIMM price is ~$150 per 16 decimal-GB.
        assert 9.0 < DRAM_DOLLARS_PER_GIB < 11.0

    def test_cost_analysis_report(self):
        report = cost_analysis(TINY)
        assert len(report.rows) == 4
        by_label = {row[0]: row for row in report.rows}
        # R-SSD(8:8:1): 9 provisioned machines, 1 SSD.
        assert by_label["R-SSD(8:8:1)"][1] == 9
        assert by_label["R-SSD(8:8:1)"][2] == 1
        # Its memory subsystem costs less than the 16-node DRAM baseline.
        assert by_label["R-SSD(8:8:1)"][3] < by_label["DRAM(2:16:0)"][3] * 1.1
        assert report.verified
