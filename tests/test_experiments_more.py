"""Structural tests for the remaining experiment drivers at TINY scale."""

import pytest

from repro.experiments import TINY, fig2, table3, table4, cost_analysis
from repro.util.units import KiB, MiB


class TestFig2Tiny:
    def test_structure_and_direction(self):
        report = fig2(TINY)
        assert report.verified
        rows = {row[0]: row for row in report.rows}
        assert rows["None"][1] == 100.0
        # Every NVM placement is slower than DRAM, local and remote.
        for label, row in rows.items():
            if label != "None":
                assert row[1] < 100.0
                assert row[2] < 100.0


class TestTable3Tiny:
    def test_rows_and_kernels(self):
        report = table3(TINY)
        assert report.verified
        kernels = [row[0] for row in report.rows]
        assert kernels == ["COPY", "SCALE", "ADD", "TRIAD"]
        # All bandwidths are positive.
        for row in report.rows:
            assert row[1] > 0 and row[2] > 0


class TestTable4Tiny:
    def test_flow_relationships(self):
        report = table4(TINY)
        assert report.verified
        rows = {row[0]: row for row in report.rows}
        for row in rows.values():
            # FUSE requests never exceed what faults can generate, and
            # SSD traffic never exceeds FUSE requests by more than the
            # chunk/page amplification bound.
            assert row[2] >= 0 and row[3] >= 0
        # Column-major always costs at least as much SSD traffic.
        assert rows["Column-major"][3] >= rows["Row-major"][3]


class TestCostTiny:
    def test_monetary_identity(self):
        report = cost_analysis(TINY)
        rows = {row[0]: row for row in report.rows}
        # L-SSD(8:16:16) costs exactly 16 SSDs more than the DRAM baseline.
        delta = rows["L-SSD(8:16:16)"][3] - rows["DRAM(2:16:0)"][3]
        assert delta == pytest.approx(16 * 589.0)
