"""End-to-end workload tests at tiny scale (numerically verified)."""

import numpy as np
import pytest

from repro.errors import NVMallocError
from repro.experiments.configs import TINY
from repro.experiments.runner import Testbed
from repro.workloads import (
    CheckpointWorkloadConfig,
    MatmulConfig,
    RandWriteConfig,
    SortConfig,
    StreamConfig,
    StreamKernel,
    run_checkpoint_workload,
    run_matmul,
    run_quicksort,
    run_randwrite,
    run_stream,
)
from repro.util.units import KiB, MiB


def make_job(x=2, y=2, z=2, remote=False, **overrides):
    scale = TINY.with_(cpu_slowdown=1.0)
    testbed = Testbed(scale)
    job = testbed.job(x, y, z, remote_ssd=remote, **overrides)
    return testbed, job


class TestStream:
    @pytest.mark.parametrize("kernel", list(StreamKernel))
    def test_kernels_verify_on_dram(self, kernel):
        _, job = make_job(z=1)
        result = run_stream(job, StreamConfig(
            elements=16 * 1024, kernel=kernel, iterations=2,
            placement={"A": "dram", "B": "dram", "C": "dram"},
        ))
        assert result.verified
        assert result.bandwidth > 0

    def test_nvm_placement_verifies_and_slows(self):
        _, job_dram = make_job(z=1)
        dram = run_stream(job_dram, StreamConfig(
            elements=64 * 1024, iterations=2,
            placement={"A": "dram", "B": "dram", "C": "dram"},
        ))
        _, job_nvm = make_job(z=1)
        nvm = run_stream(job_nvm, StreamConfig(
            elements=64 * 1024, iterations=2,
            placement={"A": "nvm", "B": "nvm", "C": "nvm"},
        ))
        assert dram.verified and nvm.verified
        assert nvm.bandwidth < dram.bandwidth / 5

    def test_raw_ssd_placement(self):
        _, job = make_job(z=1)
        result = run_stream(job, StreamConfig(
            elements=32 * 1024, iterations=2,
            placement={"A": "dram", "B": "dram", "C": "raw-ssd"},
            raw_cache_bytes=64 * KiB,
        ))
        assert result.verified

    def test_bad_placement_rejected(self):
        with pytest.raises(NVMallocError):
            StreamConfig(elements=10, placement={"A": "floppy", "B": "dram", "C": "dram"})

    def test_label(self):
        config = StreamConfig(
            elements=10, placement={"A": "nvm", "B": "dram", "C": "nvm"}
        )
        assert config.label() == "A&C"


class TestMatmul:
    @pytest.mark.parametrize("placement,shared", [
        ("dram", True), ("nvm", True), ("nvm", False),
    ])
    def test_product_is_exact(self, placement, shared):
        testbed, job = make_job(x=2, y=2, z=2)
        config = MatmulConfig(
            n=64, tile=16, b_placement=placement, shared_mmap=shared,
        )
        result = run_matmul(job, testbed.pfs, config)
        assert result.verified
        assert set(result.stage_times) == {
            "input_a", "input_b", "bcast_b", "compute", "collect_c"
        }
        assert all(t >= 0 for t in result.stage_times.values())

    def test_column_major_verifies_and_costs_more(self):
        times = {}
        for order in ("row", "column"):
            testbed, job = make_job(x=2, y=2, z=2)
            result = run_matmul(job, testbed.pfs, MatmulConfig(
                n=64, tile=16, b_placement="nvm", access_order=order,
            ))
            assert result.verified
            times[order] = result.compute_time
        assert times["column"] > times["row"]

    def test_output_written_to_pfs(self):
        testbed, job = make_job(x=2, y=2, z=2)
        config = MatmulConfig(n=32, tile=8, b_placement="nvm")
        run_matmul(job, testbed.pfs, config)
        from repro.workloads.matmul import _input_matrices

        a, b = _input_matrices(config)
        out = np.frombuffer(testbed.pfs.read_raw("mm/C"), dtype=np.float64)
        assert np.array_equal(out.reshape(32, 32), a @ b)

    def test_streamed_b_when_dram_tight(self):
        """B larger than the master's spare DRAM streams block-wise."""
        scale = TINY.with_(cpu_slowdown=1.0, dram_per_node=2 * MiB)
        testbed = Testbed(scale)
        job = testbed.job(2, 2, 2, fuse_cache_bytes=512 * KiB,
                          page_cache_bytes=256 * KiB)
        # 128x128 B = 128 KiB fits; force tightness with a bigger n.
        config = MatmulConfig(n=256, tile=64, b_placement="nvm")
        result = run_matmul(job, testbed.pfs, config)
        assert result.verified

    def test_config_validation(self):
        with pytest.raises(NVMallocError):
            MatmulConfig(n=100, tile=33)
        with pytest.raises(NVMallocError):
            MatmulConfig(n=64, tile=16, access_order="diagonal")

    def test_dram_infeasible_when_budget_tight(self):
        """The Fig. 3 argument: replicated B must fit per-process."""
        from repro.errors import CapacityError

        scale = TINY.with_(cpu_slowdown=1.0, dram_per_node=1 * MiB)
        testbed = Testbed(scale)
        job = testbed.job(4, 2, 0)
        with pytest.raises(CapacityError):
            run_matmul(job, testbed.pfs, MatmulConfig(
                n=256, tile=64, b_placement="dram",  # 4 x 512KiB copies
            ))


class TestQuicksort:
    def test_hybrid_sorts_exactly(self):
        testbed, job = make_job(x=2, y=2, z=2)
        result = run_quicksort(job, testbed.pfs, SortConfig(
            total_elements=1 << 14, mode="hybrid",
            dram_elements_per_rank=1 << 10,
        ))
        assert result.verified
        assert result.passes == 1

    def test_dram_2pass_sorts_exactly(self):
        testbed, job = make_job(x=2, y=2, z=0)
        result = run_quicksort(job, testbed.pfs, SortConfig(
            total_elements=1 << 14, mode="dram-2pass",
            dram_elements_per_rank=1 << 13,
        ))
        assert result.verified
        assert result.passes == 2
        assert set(result.phase_times) == {"pass1", "pass2", "merge"}

    def test_hybrid_spills_to_nvm(self):
        testbed, job = make_job(x=2, y=2, z=2)
        run_quicksort(job, testbed.pfs, SortConfig(
            total_elements=1 << 14, mode="hybrid",
            dram_elements_per_rank=256,  # tiny budget: heavy spill
        ))
        assert testbed.cluster.metrics.value("nvmalloc.ssdmalloc.bytes") > 0

    def test_spill_without_store_rejected(self):
        testbed, job = make_job(x=2, y=2, z=0)
        with pytest.raises(NVMallocError):
            run_quicksort(job, testbed.pfs, SortConfig(
                total_elements=1 << 14, mode="hybrid",
                dram_elements_per_rank=256,
            ))

    def test_bad_mode_rejected(self):
        with pytest.raises(NVMallocError):
            SortConfig(total_elements=10, mode="bogo")


class TestRandWrite:
    def test_optimized_flows(self):
        testbed, job = make_job(x=1, y=1, z=1)
        result = run_randwrite(job, RandWriteConfig(
            region_bytes=2 * MiB, num_writes=256,
        ))
        assert result.verified
        assert result.optimized
        assert result.written_to_ssd <= result.written_to_fuse * 1.01

    def test_unoptimized_amplifies(self):
        results = {}
        for optimized in (True, False):
            testbed, job = make_job(
                x=1, y=1, z=1, dirty_page_writeback=optimized
            )
            results[optimized] = run_randwrite(job, RandWriteConfig(
                region_bytes=2 * MiB, num_writes=256,
            ))
        assert results[False].written_to_ssd > 10 * results[True].written_to_ssd
        assert results[False].verified

    def test_multi_rank_rejected(self):
        _, job = make_job(x=1, y=1, z=1)
        with pytest.raises(NVMallocError):
            run_randwrite(job, RandWriteConfig(region_bytes=1 * MiB), ranks=2)


class TestCheckpointWorkload:
    def test_restores_verified(self):
        _, job = make_job(x=1, y=2, z=2)
        result = run_checkpoint_workload(job, CheckpointWorkloadConfig(
            variable_bytes=1 * MiB, dram_state_bytes=64 * KiB, timesteps=3,
        ))
        assert result.restores_verified
        assert len(result.bytes_written_per_step) == 3

    def test_linking_savings(self):
        _, job = make_job(x=1, y=2, z=2)
        result = run_checkpoint_workload(job, CheckpointWorkloadConfig(
            variable_bytes=2 * MiB, dram_state_bytes=64 * KiB, timesteps=3,
        ))
        # DRAM state is tiny relative to the variable: linking should
        # avoid the overwhelming majority of checkpoint volume.
        assert result.linking_savings > 0.9

    def test_incremental_cow_counts(self):
        _, job = make_job(x=1, y=2, z=2)
        result = run_checkpoint_workload(job, CheckpointWorkloadConfig(
            variable_bytes=2 * MiB, dram_state_bytes=4 * KiB,
            timesteps=3, mutate_fraction=0.25,
        ))
        # First step mutates before any checkpoint: no COW.
        assert result.cow_chunks_per_step[0] == 0
        # Later steps COW only the mutated fraction of the 8 chunks.
        for cow in result.cow_chunks_per_step[1:]:
            assert 0 < cow <= 4
