"""Tests for the transparent-swap substrate (the paper's alternative)."""

import numpy as np
import pytest

from repro.errors import CapacityError, DeviceError
from repro.mem import SwapSpace, SwappedArray
from repro.store import PAGE_SIZE
from repro.util.units import KiB, MiB
from tests.conftest import run


@pytest.fixture
def swap(small_cluster):
    return SwapSpace(small_cluster.node(1), resident_bytes=64 * KiB)


class TestSwapSpace:
    def test_requires_ssd(self, small_cluster):
        node = small_cluster.node(0)
        fake = type(node).__new__(type(node))
        fake.ssd = None
        fake.name = "bare"
        with pytest.raises(DeviceError):
            SwapSpace(fake, resident_bytes=64 * KiB)

    def test_budget_validation(self, small_cluster):
        with pytest.raises(CapacityError):
            SwapSpace(small_cluster.node(2), resident_bytes=100)

    def test_swap_partition_exhaustion(self, small_cluster):
        swap = SwapSpace(
            small_cluster.node(2), resident_bytes=64 * KiB,
            swap_bytes=256 * KiB,
        )
        SwappedArray(swap, (16 * 1024,), np.dtype(np.float64))  # 128 KiB
        SwappedArray(swap, (16 * 1024,), np.dtype(np.float64))  # 256 KiB
        with pytest.raises(CapacityError):
            SwappedArray(swap, (1024,), np.dtype(np.float64))

    def test_dram_budget_charged(self, small_cluster):
        node = small_cluster.node(3)
        before = node.dram.available
        SwapSpace(node, resident_bytes=128 * KiB)
        assert node.dram.available == before - 128 * KiB


class TestSwappedArray:
    def test_roundtrip_within_residency(self, engine, swap):
        arr = SwappedArray(swap, (1024,), np.dtype(np.float64))

        def proc():
            yield from arr.write_slice(0, np.arange(1024.0))
            return (yield from arr.read_slice(0, 1024))

        assert np.array_equal(run(engine, proc()), np.arange(1024.0))

    def test_roundtrip_through_swap(self, engine, swap):
        """Working set 4x the residency budget: data survives eviction."""
        n = 32 * 1024  # 256 KiB vs 64 KiB resident
        arr = SwappedArray(swap, (n,), np.dtype(np.float64))

        def proc():
            yield from arr.write_slice(0, np.arange(float(n)))
            # Sweep twice: the second pass re-faults everything.
            total = 0.0
            for start in range(0, n, 4096):
                piece = yield from arr.read_slice(start, start + 4096)
                total += piece.sum()
            return total

        assert run(engine, proc()) == np.arange(float(n)).sum()
        assert swap.swapouts > 0
        assert swap.swapins > 0

    def test_two_arrays_share_the_lru(self, engine, swap):
        """A cold scan of one array evicts the other's hot pages — the
        lack of control the paper's explicit placement avoids."""
        hot = SwappedArray(swap, (1024,), np.dtype(np.float64))
        cold = SwappedArray(swap, (32 * 1024,), np.dtype(np.float64))

        def proc():
            yield from hot.write_slice(0, np.ones(1024.0.__int__() if False else 1024))
            faults_before = swap.major_faults
            yield from hot.read_slice(0, 1024)  # resident: no faults
            assert swap.major_faults == faults_before
            # Cold streaming scan blows the residency budget.
            for start in range(0, 32 * 1024, 4096):
                yield from cold.read_slice(start, start + 4096)
            faults_mid = swap.major_faults
            got = yield from hot.read_slice(0, 1024)  # must re-fault
            assert swap.major_faults > faults_mid
            return got

        assert np.array_equal(run(engine, proc()), np.ones(1024))

    def test_readahead_cluster(self, engine, swap):
        n = 16 * 1024
        arr = SwappedArray(swap, (n,), np.dtype(np.float64))

        def proc():
            # Fill, then push everything out with a second array scan.
            yield from arr.write_slice(0, np.zeros(n))
            other = SwappedArray(swap, (16 * 1024,), np.dtype(np.float64))
            yield from other.read_slice(0, 16 * 1024)
            faults_before = swap.major_faults
            # One page of access faults a cluster of 8 pages.
            yield from arr.read_slice(0, PAGE_SIZE // 8)
            yield from arr.read_slice(PAGE_SIZE // 8, 2 * (PAGE_SIZE // 8))
            return swap.major_faults - faults_before

        assert run(engine, proc()) == 1  # second access rode the cluster

    def test_bounds(self, engine, swap):
        arr = SwappedArray(swap, (100,), np.dtype(np.float64))
        with pytest.raises(IndexError):
            run(engine, arr.read_bytes(800, 1))

    def test_dirty_pages_written_clean_pages_not(self, engine, small_cluster):
        swap = SwapSpace(small_cluster.node(2), resident_bytes=32 * KiB)
        arr = SwappedArray(swap, (16 * 1024,), np.dtype(np.float64))
        ssd_before = swap.ssd.bytes_written()

        def proc():
            # Read-only sweep: faults pages in, never dirties them.
            for start in range(0, 16 * 1024, 2048):
                yield from arr.read_slice(start, start + 2048)
            return True

        assert run(engine, proc())
        assert swap.swapouts == 0
        assert swap.ssd.bytes_written() == ssd_before
