"""Tests for metrics recording and table rendering."""

import pytest

from repro.errors import MetricsError, ReproError
from repro.util.recorder import Counter, MetricsRecorder, TimeSeries
from repro.util.tables import render_table


class TestCounter:
    def test_accumulates(self):
        c = Counter()
        c.add(5.0)
        c.add(3.0)
        assert c.total == 8.0
        assert c.count == 2
        assert c.mean == 4.0

    def test_empty_mean(self):
        assert Counter().mean == 0.0


class TestTimeSeries:
    def test_append_and_last(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        ts.append(2.0, 20.0)
        assert len(ts) == 2
        assert ts.last() == 20.0

    def test_empty_last_raises_domain_error(self):
        with pytest.raises(MetricsError):
            TimeSeries().last()
        # Catchable as a simulation-domain failure, not a bare IndexError.
        assert issubclass(MetricsError, ReproError)
        assert not issubclass(MetricsError, IndexError)

    def test_unbounded_by_default(self):
        ts = TimeSeries()
        for i in range(10_000):
            ts.append(float(i), float(i))
        assert len(ts) == 10_000

    def test_max_samples_bounds_memory(self):
        ts = TimeSeries(max_samples=64)
        for i in range(100_000):
            ts.append(float(i), float(i))
        assert len(ts) <= 64
        assert len(ts) >= 16  # decimation halves, never empties
        # Retained samples stay in order and span the recording.
        assert ts.times == sorted(ts.times)
        assert ts.times[0] == 0.0
        assert ts.times[-1] >= 50_000.0

    def test_max_samples_decimation_is_deterministic(self):
        a = TimeSeries(max_samples=32)
        b = TimeSeries(max_samples=32)
        for i in range(12_345):
            a.append(float(i), float(2 * i))
            b.append(float(i), float(2 * i))
        assert a.times == b.times
        assert a.values == b.values

    def test_max_samples_too_small_rejected(self):
        with pytest.raises(MetricsError):
            TimeSeries(max_samples=1)


class TestMetricsRecorder:
    def test_counters_on_demand(self):
        m = MetricsRecorder()
        m.add("a.b.c", 10)
        m.add("a.b.c", 5)
        assert m.value("a.b.c") == 15
        assert m.count("a.b.c") == 2

    def test_untouched_counter_reads_zero(self):
        m = MetricsRecorder()
        assert m.value("never") == 0.0
        assert m.count("never") == 0

    def test_snapshot_prefix_filter(self):
        m = MetricsRecorder()
        m.add("fuse.read.bytes", 100)
        m.add("fuse.write.bytes", 50)
        m.add("network.bytes", 7)
        snap = m.snapshot("fuse.")
        assert snap == {"fuse.read.bytes": 100.0, "fuse.write.bytes": 50.0}

    def test_series(self):
        m = MetricsRecorder()
        m.sample("util", 0.0, 0.5)
        m.sample("util", 1.0, 0.7)
        assert m.series("util").values == [0.5, 0.7]

    def test_series_max_samples_on_creation(self):
        m = MetricsRecorder()
        bounded = m.series("health", max_samples=16)
        assert bounded.max_samples == 16
        assert m.series("health") is bounded
        # The cap binds at creation; later callers cannot change it.
        assert m.series("health", max_samples=99).max_samples == 16

    def test_snapshot_deterministic_order(self):
        m = MetricsRecorder()
        # Touch counters in a scrambled order; snapshots must come back
        # sorted by dotted name regardless, so digests over them are
        # insertion-order independent.
        for name in ("z.last", "a.first", "m.mid", "a.second"):
            m.add(name, 1)
        snap = m.snapshot()
        assert list(snap) == sorted(snap)
        m2 = MetricsRecorder()
        for name in ("a.second", "m.mid", "z.last", "a.first"):
            m2.add(name, 1)
        assert list(m2.snapshot()) == list(snap)

    def test_reset(self):
        m = MetricsRecorder()
        m.add("x", 1)
        m.reset()
        assert m.value("x") == 0.0


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["name", "value"],
            [["short", 1.5], ["a-much-longer-name", 22222.0]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2]
        # Columns align: every data row has the separator in one place.
        positions = {
            line.index("|") for line in lines[2:] if "|" in line
        }
        assert len(positions) == 1
        assert len(positions) > 0

    def test_float_formatting(self):
        text = render_table(["v"], [[0.12345], [1234.5], [12.3]])
        assert "0.1234" in text or "0.1235" in text
        assert "1,234" in text or "1,235" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text
