"""Tests for the IntervalSet used by dirty-range tracking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intervals import IntervalSet


class TestAdd:
    def test_empty(self):
        s = IntervalSet()
        assert not s
        assert s.total() == 0

    def test_single(self):
        s = IntervalSet()
        s.add(3, 7)
        assert list(s) == [(3, 7)]
        assert s.total() == 4

    def test_zero_length_is_noop(self):
        s = IntervalSet()
        s.add(5, 5)
        assert not s

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet().add(7, 3)

    def test_disjoint_stay_sorted(self):
        s = IntervalSet()
        s.add(10, 20)
        s.add(0, 5)
        s.add(30, 40)
        assert list(s) == [(0, 5), (10, 20), (30, 40)]

    def test_overlap_coalesces(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(5, 15)
        assert list(s) == [(0, 15)]

    def test_adjacent_coalesces(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(10, 20)
        assert list(s) == [(0, 20)]

    def test_bridge_merges_many(self):
        s = IntervalSet([(0, 2), (4, 6), (8, 10)])
        s.add(1, 9)
        assert list(s) == [(0, 10)]

    def test_contained_is_noop(self):
        s = IntervalSet([(0, 100)])
        s.add(40, 60)
        assert list(s) == [(0, 100)]


class TestDiscard:
    def test_exact_removal(self):
        s = IntervalSet([(3, 7)])
        s.discard(3, 7)
        assert not s

    def test_splits_interval(self):
        s = IntervalSet([(0, 10)])
        s.discard(4, 6)
        assert list(s) == [(0, 4), (6, 10)]

    def test_trims_head_and_tail(self):
        s = IntervalSet([(0, 10), (20, 30)])
        s.discard(5, 25)
        assert list(s) == [(0, 5), (25, 30)]

    def test_disjoint_is_noop(self):
        s = IntervalSet([(0, 5)])
        s.discard(10, 20)
        assert list(s) == [(0, 5)]

    def test_adjacent_boundary_untouched(self):
        s = IntervalSet([(0, 5)])
        s.discard(5, 10)
        assert list(s) == [(0, 5)]


class TestQueries:
    def test_contains(self):
        s = IntervalSet([(2, 5), (8, 12)])
        assert s.contains(2)
        assert s.contains(4)
        assert not s.contains(5)
        assert not s.contains(7)
        assert s.contains(11)

    def test_overlaps(self):
        s = IntervalSet([(10, 20)])
        assert s.overlaps(15, 25)
        assert s.overlaps(0, 11)
        assert not s.overlaps(0, 10)
        assert not s.overlaps(20, 30)
        assert not s.overlaps(5, 5)

    def test_intersection(self):
        s = IntervalSet([(0, 5), (10, 15), (20, 25)])
        assert s.intersection(3, 22) == [(3, 5), (10, 15), (20, 22)]
        assert s.intersection(5, 10) == []

    def test_gaps(self):
        s = IntervalSet([(2, 4), (6, 8)])
        assert s.gaps(0, 10) == [(0, 2), (4, 6), (8, 10)]
        assert s.gaps(2, 8) == [(4, 6)]
        assert IntervalSet().gaps(0, 5) == [(0, 5)]

    def test_covers(self):
        s = IntervalSet([(0, 10)])
        assert s.covers(0, 10)
        assert s.covers(3, 7)
        assert s.covers(4, 4)  # empty range trivially covered
        assert not s.covers(5, 11)

    def test_copy_is_independent(self):
        s = IntervalSet([(0, 5)])
        c = s.copy()
        c.add(10, 20)
        assert list(s) == [(0, 5)]
        assert list(c) == [(0, 5), (10, 20)]

    def test_equality(self):
        assert IntervalSet([(0, 5)]) == IntervalSet([(0, 3), (3, 5)])
        assert IntervalSet([(0, 5)]) != IntervalSet([(0, 6)])


# ----------------------------------------------------------------------
# Property-based: IntervalSet behaves exactly like a set of integers.
# ----------------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "discard"]),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=60),
    ),
    max_size=40,
)


@given(ops)
def test_matches_reference_set_semantics(operations):
    s = IntervalSet()
    reference: set[int] = set()
    for op, start, span in operations:
        stop = start + span
        if op == "add":
            s.add(start, stop)
            reference.update(range(start, stop))
        else:
            s.discard(start, stop)
            reference.difference_update(range(start, stop))
    # Same contents.
    assert s.total() == len(reference)
    for start, stop in s:
        assert all(p in reference for p in range(start, stop))
    # Canonical: sorted, disjoint, non-adjacent.
    spans = list(s)
    for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
        assert b1 < a2


@given(ops, st.integers(min_value=0, max_value=260), st.integers(min_value=0, max_value=60))
def test_gaps_and_intersection_partition_the_query(operations, start, span):
    s = IntervalSet()
    for op, a, width in operations:
        if op == "add":
            s.add(a, a + width)
        else:
            s.discard(a, a + width)
    stop = start + span
    inner = s.intersection(start, stop)
    gaps = s.gaps(start, stop)
    covered = sum(b - a for a, b in inner) + sum(b - a for a, b in gaps)
    assert covered == span
    # Pieces are disjoint and ordered when merged.
    merged = sorted(inner + gaps)
    for (a1, b1), (a2, b2) in zip(merged, merged[1:]):
        assert b1 == a2
