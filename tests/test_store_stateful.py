"""Stateful property test of the aggregate store's metadata machine.

Hypothesis drives random sequences of create / write / read / link /
delete operations against a reference model of files as byte arrays with
snapshot semantics for linked checkpoints.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.cluster import make_hal_cluster
from repro.cluster.hal import HalConfig
from repro.sim import Engine
from repro.store import CHUNK_SIZE, Benefactor, Manager, StoreClient
from repro.util.units import MiB

MAX_FILE_CHUNKS = 3


class StoreMachine(RuleBasedStateMachine):
    """The store must behave like named byte arrays with chunk linking."""

    def __init__(self) -> None:
        super().__init__()
        self.engine = Engine()
        cluster = make_hal_cluster(
            self.engine,
            HalConfig(num_nodes=3, cores_per_node=2, dram_per_node=8 * MiB,
                      ssd_per_node=32 * MiB),
        )
        self.manager = Manager(cluster.node(0))
        for node in cluster.nodes:
            self.manager.register_benefactor(
                Benefactor(node, contribution=8 * MiB)
            )
        self.client = StoreClient(cluster.node(1), self.manager)
        self.model: dict[str, bytearray] = {}
        self.frozen: dict[str, bytes] = {}  # checkpoint name -> linked image
        self.counter = 0

    def _run(self, generator):
        return self.engine.run(self.engine.process(generator))

    # ------------------------------------------------------------------
    @rule(nchunks=st.integers(min_value=1, max_value=MAX_FILE_CHUNKS))
    def create_file(self, nchunks):
        name = f"/sm/{self.counter}"
        self.counter += 1
        size = nchunks * CHUNK_SIZE
        self._run(self.client.create(name, size))
        self.model[name] = bytearray(size)

    @precondition(lambda self: self.model)
    @rule(
        data=st.data(),
        offset_frac=st.floats(0, 1),
        payload=st.binary(min_size=1, max_size=3000),
    )
    def write(self, data, offset_frac, payload):
        name = data.draw(st.sampled_from(sorted(self.model)))
        size = len(self.model[name])
        offset = min(int(offset_frac * size), size - 1)
        payload = payload[: size - offset]
        self._run(self.client.write(name, offset, payload))
        self.model[name][offset : offset + len(payload)] = payload

    @precondition(lambda self: self.model)
    @rule(data=st.data(), offset_frac=st.floats(0, 1), length=st.integers(1, 5000))
    def read(self, data, offset_frac, length):
        name = data.draw(st.sampled_from(sorted(self.model)))
        size = len(self.model[name])
        offset = min(int(offset_frac * size), size - 1)
        length = min(length, size - offset)
        got = self._run(self.client.read(name, offset, length))
        assert got == bytes(self.model[name][offset : offset + length])

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def checkpoint_link(self, data):
        """Create a checkpoint file linking an existing file's chunks."""
        src = data.draw(st.sampled_from(sorted(self.model)))
        ck = f"/ck/{self.counter}"
        self.counter += 1
        self._run(self.client.create(ck, 0))
        self.manager.link_chunks(ck, src)
        self.frozen[ck] = bytes(self.model[src])

    @precondition(lambda self: self.frozen)
    @rule(data=st.data())
    def read_checkpoint(self, data):
        ck = data.draw(st.sampled_from(sorted(self.frozen)))
        image = self.frozen[ck]
        got = self._run(self.client.read(ck, 0, len(image)))
        assert got == image, "linked checkpoint image changed"

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_file(self, data):
        name = data.draw(st.sampled_from(sorted(self.model)))
        self._run(self.client.delete(name))
        del self.model[name]

    @precondition(lambda self: self.frozen)
    @rule(data=st.data())
    def delete_checkpoint(self, data):
        ck = data.draw(st.sampled_from(sorted(self.frozen)))
        self._run(self.client.delete(ck))
        del self.frozen[ck]

    # ------------------------------------------------------------------
    @invariant()
    def reservations_are_consistent(self):
        """Reserved space equals live chunk count times chunk size."""
        live_chunks = len(self.manager._chunk_refs)  # noqa: SLF001
        reserved = sum(b.reserved for b in self.manager.benefactors())
        assert reserved == live_chunks * CHUNK_SIZE

    @invariant()
    def no_space_leak_when_empty(self):
        if not self.model and not self.frozen:
            assert self.manager.total_available() == self.manager.total_capacity()


TestStoreMachine = StoreMachine.TestCase
TestStoreMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
