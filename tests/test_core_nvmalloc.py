"""Tests for the NVMalloc library: allocation, arrays, checkpointing."""

import numpy as np
import pytest

from repro.core import NVMalloc
from repro.errors import (
    AllocationError,
    CapacityError,
    CheckpointError,
    NVMallocError,
)
from repro.store import CHUNK_SIZE
from repro.util.units import KiB, MiB
from tests.conftest import run


class TestSsdmalloc:
    def test_returns_byte_addressable_variable(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(100_000)
            yield from var.write(55_555, b"byte-addressable")
            return (yield from var.read(55_555, 16))

        assert run(engine, proc()) == b"byte-addressable"

    def test_zero_size_rejected(self, engine, nvmalloc):
        with pytest.raises(AllocationError):
            run(engine, nvmalloc.ssdmalloc(0))

    def test_backing_file_is_internal(self, engine, nvmalloc):
        def proc():
            return (yield from nvmalloc.ssdmalloc(1000, owner="app1"))

        var = run(engine, proc())
        assert var.backing_path.startswith("/mnt/aggregatenvm/nvmalloc/")
        assert "app1" in var.backing_path

    def test_reserves_store_space(self, engine, nvmalloc, store):
        before = store.total_available()

        def proc():
            yield from nvmalloc.ssdmalloc(3 * CHUNK_SIZE)

        run(engine, proc())
        assert store.total_available() == before - 3 * CHUNK_SIZE

    def test_ssdfree_releases_everything(self, engine, nvmalloc, store):
        before = store.total_available()

        def proc():
            var = yield from nvmalloc.ssdmalloc(3 * CHUNK_SIZE)
            yield from var.write(0, b"x" * CHUNK_SIZE)
            yield from nvmalloc.ssdfree(var)

        run(engine, proc())
        assert store.total_available() == before

    def test_double_free_rejected(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(1000)
            yield from nvmalloc.ssdfree(var)
            yield from nvmalloc.ssdfree(var)

        with pytest.raises(NVMallocError):
            run(engine, proc())

    def test_shared_key_maps_same_file(self, engine, nvmalloc):
        def proc():
            a = yield from nvmalloc.ssdmalloc(10_000, shared_key="B", owner="r0")
            b = yield from nvmalloc.ssdmalloc(10_000, shared_key="B", owner="r1")
            yield from a.write(123, b"from r0")
            seen = yield from b.read(123, 7)
            # Freeing one mapping keeps the file for the other.
            yield from nvmalloc.ssdfree(a)
            still = yield from b.read(123, 7)
            yield from nvmalloc.ssdfree(b)
            return seen, still, a.backing_path == b.backing_path

        seen, still, same = run(engine, proc())
        assert seen == b"from r0"
        assert still == b"from r0"
        assert same

    def test_shared_key_size_check(self, engine, nvmalloc):
        def proc():
            yield from nvmalloc.ssdmalloc(1000, shared_key="S")
            yield from nvmalloc.ssdmalloc(5000, shared_key="S")  # larger!

        with pytest.raises(AllocationError):
            run(engine, proc())

    def test_allocation_exceeding_store(self, engine, nvmalloc, store):
        with pytest.raises(Exception):
            run(engine, nvmalloc.ssdmalloc(store.total_capacity() * 2))


class TestTypedArrays:
    def test_nvm_array_2d(self, engine, nvmalloc):
        mat = np.arange(32 * 16, dtype=np.float64).reshape(32, 16)

        def proc():
            arr = yield from nvmalloc.ssdmalloc_array((32, 16), np.float64)
            for r in range(32):
                yield from arr.write_row(r, mat[r])
            rows = yield from arr.read_rows(5, 9)
            col = yield from arr.read_column(3)
            block = yield from arr.read_block(2, 6, 4, 10)
            yield from nvmalloc.ssdfree(arr.variable)
            return rows, col, block

        rows, col, block = run(engine, proc())
        assert np.array_equal(rows, mat[5:9])
        assert np.array_equal(col, mat[:, 3])
        assert np.array_equal(block, mat[2:6, 4:10])

    def test_element_access(self, engine, nvmalloc):
        def proc():
            arr = yield from nvmalloc.ssdmalloc_array((100,), np.int32)
            yield from arr.set(42, 31337)
            return (yield from arr.get(42))

        assert run(engine, proc()) == 31337

    def test_write_block(self, engine, nvmalloc):
        def proc():
            arr = yield from nvmalloc.ssdmalloc_array((8, 8), np.float64)
            tile = np.full((3, 3), 7.0)
            yield from arr.write_block(2, 4, tile)
            return (yield from arr.read_block(2, 5, 4, 7))

        assert np.array_equal(run(engine, proc()), np.full((3, 3), 7.0))

    def test_dram_array_budget(self, engine, nvmalloc, small_cluster):
        node = small_cluster.node(1)
        free = node.dram.available
        arr = nvmalloc.dram_array((free // 8,), np.float64)
        with pytest.raises(CapacityError):
            nvmalloc.dram_array((1024,), np.float64)
        arr.free()
        nvmalloc.dram_array((1024,), np.float64)

    def test_dram_array_use_after_free(self, engine, nvmalloc):
        arr = nvmalloc.dram_array((16,), np.float64)
        arr.free()
        with pytest.raises(NVMallocError):
            run(engine, arr.get(0))

    def test_bad_shapes_rejected(self, engine, nvmalloc):
        with pytest.raises(NVMallocError):
            nvmalloc.dram_array((0,), np.float64)
        with pytest.raises(NVMallocError):
            nvmalloc.dram_array((2, 2, 2), np.float64)

    def test_index_bounds(self, engine, nvmalloc):
        arr = nvmalloc.dram_array((10,), np.float64)
        with pytest.raises(IndexError):
            run(engine, arr.get(10))
        with pytest.raises(IndexError):
            run(engine, arr.read_slice(5, 11))

    def test_row_column_require_2d(self, engine, nvmalloc):
        arr = nvmalloc.dram_array((10,), np.float64)
        with pytest.raises(NVMallocError):
            run(engine, arr.read_row(0))


class TestCheckpoint:
    def test_roundtrip(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(2 * CHUNK_SIZE)
            yield from var.write(0, b"variable state")
            record = yield from nvmalloc.ssdcheckpoint(
                "app", 0, b"dram state", [("v", var)]
            )
            dram, variables = yield from nvmalloc.restore("app", 0)
            return record, dram, variables["v"][:14]

        record, dram, v = run(engine, proc())
        assert dram == b"dram state"
        assert v == b"variable state"
        assert record.bytes_written == 10
        assert record.bytes_linked == 2 * CHUNK_SIZE

    def test_cow_freezes_checkpoint(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(CHUNK_SIZE)
            yield from var.write(0, b"epoch-0")
            yield from nvmalloc.ssdcheckpoint("app", 0, b"", [("v", var)])
            yield from var.write(0, b"epoch-1")
            yield from nvmalloc.ssdcheckpoint("app", 1, b"", [("v", var)])
            yield from var.write(0, b"epoch-2")
            _, v0 = yield from nvmalloc.restore("app", 0)
            _, v1 = yield from nvmalloc.restore("app", 1)
            live = yield from var.read(0, 7)
            return v0["v"][:7], v1["v"][:7], live

        v0, v1, live = run(engine, proc())
        assert v0 == b"epoch-0"
        assert v1 == b"epoch-1"
        assert live == b"epoch-2"

    def test_incremental_cow_only_touched_chunks(self, engine, nvmalloc, store):
        def proc():
            var = yield from nvmalloc.ssdmalloc(4 * CHUNK_SIZE)
            for i in range(4):
                yield from var.write(i * CHUNK_SIZE, bytes([i + 1]) * 100)
            yield from nvmalloc.ssdcheckpoint("app", 0, b"", [("v", var)])
            before = nvmalloc.metrics.value("store.manager.cow_chunks")
            yield from var.write(2 * CHUNK_SIZE, b"touch one chunk")
            yield from var.region.msync()
            yield from nvmalloc.mount.cache.flush_path(var.backing_path)
            return nvmalloc.metrics.value("store.manager.cow_chunks") - before

        assert run(engine, proc()) == 1

    def test_duplicate_checkpoint_rejected(self, engine, nvmalloc):
        def proc():
            yield from nvmalloc.ssdcheckpoint("app", 0, b"x")
            yield from nvmalloc.ssdcheckpoint("app", 0, b"y")

        with pytest.raises(CheckpointError):
            run(engine, proc())

    def test_private_mapping_not_checkpointable(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(CHUNK_SIZE, private=True)
            yield from nvmalloc.ssdcheckpoint("app", 0, b"", [("v", var)])

        with pytest.raises(CheckpointError):
            run(engine, proc())

    def test_restore_missing(self, engine, nvmalloc):
        with pytest.raises(CheckpointError):
            run(engine, nvmalloc.restore("never", 9))

    def test_freed_variable_survives_in_checkpoint(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(CHUNK_SIZE)
            yield from var.write(0, b"outlives the variable")
            yield from nvmalloc.ssdcheckpoint("app", 0, b"", [("v", var)])
            yield from nvmalloc.ssdfree(var)
            _, variables = yield from nvmalloc.restore("app", 0)
            return variables["v"][:21]

        assert run(engine, proc()) == b"outlives the variable"

    def test_delete_checkpoint(self, engine, nvmalloc, store):
        before = store.total_available()

        def proc():
            var = yield from nvmalloc.ssdmalloc(CHUNK_SIZE)
            yield from var.write(0, b"x")
            yield from nvmalloc.ssdcheckpoint("app", 0, b"d", [("v", var)])
            yield from nvmalloc.ssdfree(var)
            yield from nvmalloc.delete_checkpoint("app", 0)

        run(engine, proc())
        assert store.total_available() == before

    def test_reserved_label_rejected(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(CHUNK_SIZE)
            yield from nvmalloc.ssdcheckpoint("app", 0, b"", [("__dram__", var)])

        with pytest.raises(CheckpointError):
            run(engine, proc())

    def test_multi_variable_sections(self, engine, nvmalloc):
        def proc():
            v1 = yield from nvmalloc.ssdmalloc(CHUNK_SIZE)
            v2 = yield from nvmalloc.ssdmalloc(2 * CHUNK_SIZE)
            yield from v1.write(0, b"one")
            yield from v2.write(CHUNK_SIZE, b"two")
            yield from nvmalloc.ssdcheckpoint(
                "app", 0, b"D" * 100, [("v1", v1), ("v2", v2)]
            )
            dram, variables = yield from nvmalloc.restore("app", 0)
            return dram, variables["v1"][:3], variables["v2"][CHUNK_SIZE:CHUNK_SIZE + 3]

        dram, one, two = run(engine, proc())
        assert dram == b"D" * 100
        assert one == b"one"
        assert two == b"two"
