"""Edge-case tests for the simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, Interrupt, Resource


@pytest.fixture
def engine():
    return Engine()


class TestEngineEdges:
    def test_step_on_empty_heap(self, engine):
        with pytest.raises(SimulationError):
            engine.step()

    def test_run_to_exhaustion_returns_none(self, engine):
        engine.timeout(1.0)
        assert engine.run() is None

    def test_run_all_empty(self, engine):
        assert engine.run_all([]) == []

    def test_schedule_negative_delay_rejected(self, engine):
        event = engine.event()
        with pytest.raises(SimulationError):
            engine.schedule(event, delay=-1.0)

    def test_nested_yield_from_three_deep(self, engine):
        def level3():
            yield engine.timeout(1.0)
            return 3

        def level2():
            value = yield from level3()
            yield engine.timeout(1.0)
            return value + 20

        def level1():
            value = yield from level2()
            return value + 100

        assert engine.run(engine.process(level1())) == 123
        assert engine.now == 2.0

    def test_process_cleanup_on_failure_releases_resources(self, engine):
        res = Resource(engine, capacity=1)

        def leaky():
            try:
                yield from res.use(100.0)
            except Interrupt:
                return "stopped"

        proc = engine.process(leaky())

        def killer():
            yield engine.timeout(1.0)
            proc.interrupt()

        engine.process(killer())
        assert engine.run(proc) == "stopped"
        assert res.in_use == 0  # use() released on the way out

    def test_exception_in_generator_start(self, engine):
        def broken():
            raise RuntimeError("immediately")
            yield  # pragma: no cover

        with pytest.raises(RuntimeError, match="immediately"):
            engine.run(engine.process(broken()))

    def test_many_simultaneous_processes(self, engine):
        def worker(tag):
            yield engine.timeout(1.0)
            return tag

        procs = [engine.process(worker(i)) for i in range(500)]
        assert engine.run_all(procs) == list(range(500))
        assert engine.now == 1.0

    def test_timeout_value_passthrough(self, engine):
        def proc():
            value = yield engine.timeout(0.5, value={"payload": 1})
            return value

        assert engine.run(engine.process(proc())) == {"payload": 1}

    def test_interrupt_unstarted_process_rejected(self, engine):
        def proc():
            yield engine.timeout(1.0)

        p = engine.process(proc())
        # The bootstrap event has not run yet: nothing to interrupt.
        with pytest.raises(SimulationError):
            p.interrupt()


class TestResourceCancel:
    def test_cancel_queued_request(self, engine):
        res = Resource(engine, capacity=1)

        def holder():
            yield from res.use(10.0)

        engine.process(holder())
        engine.run(until=0.5)
        req = res.request()  # queued behind the holder
        assert res.queue_length == 1
        res.cancel(req)
        assert res.queue_length == 0

    def test_cancel_granted_request_releases(self, engine):
        res = Resource(engine, capacity=1)

        def proc():
            req = res.request()
            yield req
            res.cancel(req)
            return res.in_use

        assert engine.run(engine.process(proc())) == 0

    def test_cancel_twice_is_harmless(self, engine):
        res = Resource(engine, capacity=1)

        def proc():
            req = res.request()
            yield req
            res.cancel(req)
            res.cancel(req)

        engine.run(engine.process(proc()))
