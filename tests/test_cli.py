"""Tests for the experiment CLI (`python -m repro.experiments`)."""

import json

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "table7", "checkpoint", "cost", "explicit"):
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_run_one_tiny(self, capsys):
        assert main(["checkpoint", "--scale", "tiny", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Checkpointing" in out
        assert "paper vs measured" in out

    def test_table1_runs_without_scale(self, capsys):
        assert main(["table1", "--scale", "tiny", "--no-cache"]) == 0
        assert "Intel X25-E" in capsys.readouterr().out

    def test_registry_matches_drivers(self):
        # Every registered experiment is callable and described.
        for name, (driver, description) in EXPERIMENTS.items():
            assert callable(driver)
            assert description

    def test_per_experiment_wall_and_summary(self, capsys):
        assert main(["table1", "checkpoint", "--scale", "tiny", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "[table1:" in out and "s wall" in out
        assert "[checkpoint:" in out
        assert "2 experiments in" in out
        assert "PASS: all experiments verified" in out

    def test_jobs_flag_parallel_run(self, capsys):
        assert main(
            ["table1", "checkpoint", "--scale", "tiny", "--jobs", "2", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "(--jobs 2)" in out
        assert "PASS: all experiments verified" in out

    def test_cache_hit_on_rerun(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["checkpoint", "--scale", "tiny", "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["checkpoint", "--scale", "tiny", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "cache hit" in out
        assert "1 cached" in out
        assert "Checkpointing" in out  # hit still renders the full report

    def test_json_telemetry_output(self, tmp_path):
        out_path = tmp_path / "telemetry.json"
        assert main(
            ["checkpoint", "--scale", "tiny", "--no-cache", "--json", str(out_path)]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert payload["scale"] == "tiny"
        assert payload["failed"] == []
        (entry,) = payload["results"]
        assert entry["name"] == "checkpoint"
        assert entry["digest"] and entry["verified"]
        assert entry["wall_seconds"] > 0
        assert entry["peak_rss_bytes"] > 0
        assert entry["cache_hit"] is False

    def test_verify_identity_passes(self, capsys):
        assert main(
            ["table1", "checkpoint", "--scale", "tiny", "--verify-identity"]
        ) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
