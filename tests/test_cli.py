"""Tests for the experiment CLI (`python -m repro.experiments`)."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "table7", "checkpoint", "cost", "explicit"):
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_run_one_tiny(self, capsys):
        assert main(["checkpoint", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Checkpointing" in out
        assert "paper vs measured" in out

    def test_table1_runs_without_scale(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        assert "Intel X25-E" in capsys.readouterr().out

    def test_registry_matches_drivers(self):
        # Every registered experiment is callable and described.
        for name, (driver, description) in EXPERIMENTS.items():
            assert callable(driver)
            assert description
