"""Tests for the output-staging workload (§II staging store role)."""

import pytest

from repro.errors import NVMallocError
from repro.experiments.configs import TINY
from repro.experiments.runner import Testbed
from repro.util.units import KiB
from repro.workloads import StagingConfig, run_staging


def make(mode, z=2, **kwargs):
    scale = TINY.with_(cpu_slowdown=1.0)
    testbed = Testbed(scale)
    job = testbed.job(2, 2, z)
    config = StagingConfig(
        burst_bytes=kwargs.pop("burst_bytes", 256 * KiB),
        timesteps=kwargs.pop("timesteps", 3),
        compute_seconds=kwargs.pop("compute_seconds", 0.02),
        mode=mode,
        **kwargs,
    )
    return testbed, job, config


class TestStaging:
    def test_config_validation(self):
        with pytest.raises(NVMallocError):
            StagingConfig(mode="carrier-pigeon")
        with pytest.raises(NVMallocError):
            StagingConfig(timesteps=0)

    def test_direct_mode_verifies(self):
        testbed, job, config = make("direct", z=0)
        result = run_staging(job, testbed.pfs, config)
        assert result.verified
        assert result.drained_bytes == 0

    def test_staged_mode_verifies(self):
        testbed, job, config = make("staged")
        result = run_staging(job, testbed.pfs, config)
        assert result.verified
        assert result.drained_bytes == 4 * 3 * 256 * KiB

    def test_staging_reduces_compute_stall(self):
        """The §III-E claim: staging hides PFS time behind compute."""
        testbed_d, job_d, config_d = make("direct", z=0)
        direct = run_staging(job_d, testbed_d.pfs, config_d)
        testbed_s, job_s, config_s = make("staged")
        staged = run_staging(job_s, testbed_s.pfs, config_s)
        assert direct.verified and staged.verified
        # The compute loop blocks far less when bursts go to the store.
        assert staged.compute_stall < direct.compute_stall / 2

    def test_background_drain_overlaps(self):
        """With enough compute per step, the drains hide entirely: total
        time approaches compute + stalls."""
        testbed, job, config = make("staged", compute_seconds=0.2)
        result = run_staging(job, testbed.pfs, config)
        assert result.verified
        floor = config.timesteps * config.compute_seconds
        assert result.elapsed < floor * 1.5

    def test_store_left_clean(self):
        """Drains unlink their staging files: the store ends empty."""
        testbed, job, config = make("staged")
        run_staging(job, testbed.pfs, config)
        assert job.manager is not None
        assert job.manager.total_available() == job.manager.total_capacity()
