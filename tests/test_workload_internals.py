"""Unit tests for workload building blocks (below the full-run level)."""

import numpy as np
import pytest

from repro.experiments.configs import TINY
from repro.experiments.runner import Testbed
from repro.parallel.job import JobConfig
from repro.workloads.matmul import (
    MatmulConfig,
    _bcast_group,
    _input_matrices,
)
from repro.workloads.quicksort import SortConfig, _SliceStore, _make_store
from repro.workloads.stream import StreamConfig, StreamKernel, _expected_values


def make_job(x=2, y=2, z=2):
    testbed = Testbed(TINY.with_(cpu_slowdown=1.0))
    return testbed, testbed.job(x, y, z)


class TestInputMatrices:
    def test_deterministic(self):
        config = MatmulConfig(n=32, tile=8)
        a1, b1 = _input_matrices(config)
        a2, b2 = _input_matrices(config)
        assert np.array_equal(a1, a2)
        assert np.array_equal(b1, b2)

    def test_seed_changes_values(self):
        a1, _ = _input_matrices(MatmulConfig(n=32, tile=8, seed=1))
        a2, _ = _input_matrices(MatmulConfig(n=32, tile=8, seed=2))
        assert not np.array_equal(a1, a2)

    def test_integral_values_keep_products_exact(self):
        a, b = _input_matrices(MatmulConfig(n=64, tile=8))
        product = a @ b
        assert np.array_equal(product, np.round(product))
        # Well within float64 exact-integer range.
        assert np.abs(product).max() < 2**53


class TestBcastGroup:
    @pytest.mark.parametrize("group_size", [1, 2, 3, 4, 7, 8])
    def test_all_members_receive(self, group_size):
        testbed, job = make_job(x=4, y=2, z=2)
        group = list(range(0, group_size))
        payload = np.arange(17.0)

        def rank_fn(ctx):
            data = payload if ctx.rank == group[0] else None
            received = yield from _bcast_group(ctx, data, group, tag=55)
            if ctx.rank in group:
                return np.asarray(received).sum()
            return None

        results = [
            job.engine.process(rank_fn(job.rank_context(r)))
            for r in range(job.config.num_ranks)
        ]
        values = job.engine.run_all(results)
        for rank, value in enumerate(values):
            if rank in group:
                assert value == payload.sum()
            else:
                assert value is None


class TestSliceStore:
    def test_spill_split(self):
        testbed, job = make_job(x=1, y=2, z=2)
        ctx = job.rank_context(0)

        def proc():
            store = yield from _make_store(ctx, 1000, 300, tag="t")
            assert store.counts == [300, 700]
            yield from store.write(0, np.arange(1000.0))
            # Reads crossing the DRAM/NVM boundary.
            cross = yield from store.read(250, 350)
            assert np.array_equal(cross, np.arange(250.0, 350.0))
            yield from store.free(ctx)
            return True

        assert job.engine.run(job.engine.process(proc()))

    def test_all_dram_when_it_fits(self):
        testbed, job = make_job(x=1, y=2, z=2)
        ctx = job.rank_context(0)

        def proc():
            store = yield from _make_store(ctx, 100, 1000, tag="t")
            assert store.counts == [100]
            yield from store.free(ctx)
            return True

        assert job.engine.run(job.engine.process(proc()))

    def test_locate_bounds(self):
        store = _SliceStore()
        with pytest.raises(IndexError):
            store.locate(0)


class TestStreamExpectations:
    @pytest.mark.parametrize("kernel,expected_a", [
        (StreamKernel.COPY, 1.0),       # A never written
        (StreamKernel.TRIAD, None),     # A evolves
    ])
    def test_expected_values_track_kernel(self, kernel, expected_a):
        config = StreamConfig(
            elements=8, kernel=kernel, iterations=3,
            placement={"A": "dram", "B": "dram", "C": "dram"},
        )
        values = _expected_values(config)
        if expected_a is not None:
            assert values["A"] == expected_a
        else:
            # TRIAD: A = B + 3C repeatedly from (1, 2, 0): stays 2.0
            # because B and C never change.
            assert values["A"] == 2.0

    def test_scale_chain(self):
        config = StreamConfig(
            elements=8, kernel=StreamKernel.SCALE, iterations=2, scalar=3.0,
            placement={"A": "dram", "B": "dram", "C": "dram"},
        )
        # B = 3*C with C = 0 -> B becomes 0 after first iteration.
        assert _expected_values(config)["B"] == 0.0

    def test_kernel_signatures(self):
        assert StreamKernel.COPY.arrays_touched == 2
        assert StreamKernel.TRIAD.arrays_touched == 3
        assert StreamKernel.TRIAD.flops_per_element == 2
        assert StreamKernel.COPY.flops_per_element == 0


class TestSortConfigHelpers:
    def test_slice_store_free_is_idempotent_on_parts(self):
        testbed, job = make_job(x=1, y=2, z=2)
        ctx = job.rank_context(0)

        def proc():
            store = yield from _make_store(ctx, 500, 200, tag="x")
            yield from store.free(ctx)
            assert store.parts == []
            return True

        assert job.engine.run(job.engine.process(proc()))
