"""Sharded single-run execution: worker-count invariance and window math.

The contract under test (``repro/parallel/shards.py``): the worker count
is an execution knob only.  Whatever number of OS processes executes the
fixed set of model partitions, every virtual quantity — summaries,
makespan, event counts, report digests — must be bit-identical, because
the conservative lookahead window guarantees no shard ever sees a
cross-shard message out of order.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import SimulationError
from repro.experiments import TINY, scaleout
from repro.experiments.scaleout import CROSS_SHARD_LINK, _build_report, spec_for
from repro.network.link import LinkSpec
from repro.parallel.shards import (
    RECV_TIME,
    SEND_TIME,
    ShardSpec,
    run_sharded,
    shard_workers_from_env,
)


@pytest.fixture(scope="module")
def tiny_spec() -> ShardSpec:
    return spec_for(TINY)


@pytest.fixture(scope="module")
def serial_result(tiny_spec):
    return run_sharded(tiny_spec, workers=1)


def test_run_completes_and_accounts_every_chunk(serial_result, tiny_spec):
    totals = {"chunks_sent": 0, "chunks_stored": 0, "acks_received": 0}
    for summary in serial_result.summaries:
        assert summary["done"], summary
        for key in totals:
            totals[key] += summary["counters"][key]
    expected = (
        tiny_spec.num_shards
        * tiny_spec.nodes_per_shard
        * tiny_spec.timesteps
        * tiny_spec.chunks_per_step
    )
    assert totals == {
        "chunks_sent": expected,
        "chunks_stored": expected,
        "acks_received": expected,
    }
    assert serial_result.makespan > 0
    assert serial_result.windows > 0


@pytest.mark.parametrize("workers", [2, 3, 4])
def test_worker_count_is_execution_only(serial_result, tiny_spec, workers):
    """Process fan-out must not change a single virtual quantity."""
    result = run_sharded(tiny_spec, workers=workers)
    assert result.summaries == serial_result.summaries
    assert result.makespan == serial_result.makespan
    assert result.events == serial_result.events
    assert result.windows == serial_result.windows
    assert result.workers == min(workers, tiny_spec.num_shards)


def test_report_digest_invariant_across_worker_counts(tiny_spec):
    digests = {
        _build_report(tiny_spec, run_sharded(tiny_spec, workers=w)).digest()
        for w in (1, 2, 4)
    }
    assert len(digests) == 1


def test_experiment_driver_ignores_repro_shards_env(monkeypatch):
    """The --shards knob (via $REPRO_SHARDS) is digest-neutral."""
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    baseline = scaleout(TINY)
    monkeypatch.setenv("REPRO_SHARDS", "3")
    fanned = scaleout(TINY)
    assert fanned.digest() == baseline.digest()
    assert baseline.verified and fanned.verified


def test_messages_respect_the_lookahead_bound(tiny_spec):
    """Every cross-shard message arrives one lookahead after sending.

    ``recv = send + L`` in the same IEEE arithmetic the runner uses for
    its horizon (``T + L``), and float addition is monotonic in ``send``,
    so ``send >= T`` implies ``recv >= horizon`` — the conservative-sync
    guarantee.  (Checking ``recv - send >= L`` instead would be wrong:
    the subtraction can round below ``L``.)"""
    from repro.experiments.scaleout import build_shard

    shard = build_shard(tiny_spec, 0)
    shard.advance(10.0)  # plenty to emit the first burst
    outbox = shard.take_outbox()
    assert outbox
    for message in outbox:
        assert message[RECV_TIME] == message[SEND_TIME] + tiny_spec.lookahead
        assert message[RECV_TIME] > message[SEND_TIME]


def test_single_shard_degenerate_case_self_stripes():
    spec = spec_for(TINY.with_(scaleout_shards=1))
    result = run_sharded(spec, workers=4)  # clamps to the shard count
    assert result.workers == 1
    assert all(s["done"] for s in result.summaries)


def test_zero_lookahead_is_rejected():
    dead_link = LinkSpec(
        name="no-latency", bandwidth=CROSS_SHARD_LINK.bandwidth, latency=0.0
    )
    spec = ShardSpec(
        num_shards=2,
        nodes_per_shard=1,
        builder="repro.experiments.scaleout:build_shard",
        link=dead_link,
    )
    with pytest.raises(SimulationError):
        run_sharded(spec)
    with pytest.raises(SimulationError):
        run_sharded(spec_for(TINY).__class__(**{
            **spec_for(TINY).__dict__, "num_shards": 0,
        }))


def test_shard_workers_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert shard_workers_from_env() == 1
    assert shard_workers_from_env(default=4) == 4
    monkeypatch.setenv("REPRO_SHARDS", "6")
    assert shard_workers_from_env() == 6
    monkeypatch.setenv("REPRO_SHARDS", "0")
    assert shard_workers_from_env() == 1  # clamped
    monkeypatch.setenv("REPRO_SHARDS", "nonsense")
    assert shard_workers_from_env(default=2) == 2


def test_barrier_telemetry_is_populated(tiny_spec):
    result = run_sharded(tiny_spec, workers=2)
    assert result.wall_seconds > 0
    assert len(result.window_walls) == result.windows
    assert result.barrier_wait_seconds >= 0
    assert 0.0 <= result.barrier_share < 1.0
