"""Cache-key invalidation and round-trip tests for the result cache."""

import json

import pytest

from repro.experiments import TINY
from repro.experiments.parallel import Orchestrator, execute_experiment
from repro.experiments.report import ExperimentReport
from repro.experiments.resultcache import (
    ResultCache,
    code_fingerprint,
    result_key,
    scale_fingerprint,
)
from repro.experiments.runner import Testbed


class TestKeys:
    def test_stable_for_same_inputs(self):
        assert result_key("fig3", TINY, "c0de") == result_key("fig3", TINY, "c0de")

    def test_experiment_name_changes_key(self):
        assert result_key("fig3", TINY, "c0de") != result_key("fig4", TINY, "c0de")

    def test_scale_changes_key(self):
        other = TINY.with_(name="tiny2")
        assert result_key("fig3", TINY, "c0de") != result_key("fig3", other, "c0de")

    def test_config_knob_changes_key(self):
        tweaked = TINY.with_(fuse_cache=TINY.fuse_cache * 2)
        assert result_key("fig3", TINY, "c0de") != result_key("fig3", tweaked, "c0de")
        assert scale_fingerprint(TINY) != scale_fingerprint(tweaked)

    def test_code_fingerprint_changes_key(self):
        assert result_key("fig3", TINY, "aaaa") != result_key("fig3", TINY, "bbbb")


class TestCodeFingerprint:
    def test_tracks_file_content(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = code_fingerprint(tmp_path, refresh=True)
        (tmp_path / "a.py").write_text("x = 2\n")
        assert code_fingerprint(tmp_path, refresh=True) != before

    def test_tracks_new_files(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = code_fingerprint(tmp_path, refresh=True)
        (tmp_path / "b.py").write_text("y = 1\n")
        assert code_fingerprint(tmp_path, refresh=True) != before

    def test_ignores_non_python(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = code_fingerprint(tmp_path, refresh=True)
        (tmp_path / "notes.txt").write_text("irrelevant\n")
        assert code_fingerprint(tmp_path, refresh=True) == before

    def test_default_root_is_src_repro(self):
        import repro

        fp = code_fingerprint(refresh=True)
        from pathlib import Path

        assert fp == code_fingerprint(Path(repro.__file__).parent, refresh=True)


class TestCacheStore:
    def _report(self) -> ExperimentReport:
        report = ExperimentReport(
            experiment="T", title="t", headers=["a", "b"],
            counters={"fuse.read.bytes": 4096.0},
        )
        report.add_row("x", 1.5)
        report.claim("paper", "measured")
        return report

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = self._report()
        cache.put(
            "ab" * 32, experiment="T", scale="tiny", report=report,
            telemetry={"wall_seconds": 1.0},
        )
        entry = cache.get("ab" * 32)
        assert entry is not None
        restored = ExperimentReport.from_payload(entry["report"])
        assert restored.render() == report.render()
        assert restored.digest() == report.digest() == entry["digest"]

    def test_absent_key_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("cd" * 32) is None
        assert cache.misses == 1

    def test_corrupt_entry_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(
            key, experiment="T", scale="tiny", report=self._report(),
            telemetry={},
        )
        path = cache.path_for(key)
        entry = json.loads(path.read_text())
        entry["report"]["rows"][0][1] = 99.0  # tampered result
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None  # digest no longer matches

    def test_truncated_entry_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(
            key, experiment="T", scale="tiny", report=self._report(),
            telemetry={},
        )
        path = cache.path_for(key)
        path.write_text(path.read_text()[: 50])
        assert cache.get(key) is None


class TestOrchestration:
    """End-to-end: hit on identical re-run, zero testbeds on warm runs."""

    NAMES = ["table1", "checkpoint"]

    def test_bit_identical_rerun_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = Orchestrator(jobs=1, cache=cache).run(self.NAMES, TINY)
        assert not cold.failed and cold.cache_hits == 0

        before = Testbed.constructions
        warm = Orchestrator(jobs=1, cache=cache).run(self.NAMES, TINY)
        assert warm.cache_hits == len(self.NAMES)
        assert Testbed.constructions == before  # zero testbeds assembled
        assert warm.digests == cold.digests
        for cold_o, warm_o in zip(cold.outcomes, warm.outcomes):
            assert warm_o.report.render() == cold_o.report.render()
            assert warm_o.report.counters == cold_o.report.counters

    def test_scale_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        Orchestrator(jobs=1, cache=cache).run(["checkpoint"], TINY)
        rerun = Orchestrator(jobs=1, cache=cache).run(
            ["checkpoint"], TINY.with_(checkpoint_variable=TINY.checkpoint_variable * 2)
        )
        assert rerun.cache_hits == 0

    def test_no_cache_always_recomputes(self):
        before = Testbed.constructions
        result = Orchestrator(jobs=1, cache=None).run(["checkpoint"], TINY)
        assert not result.failed
        assert Testbed.constructions > before


class TestCounters:
    def test_execute_fills_byte_flow_counters(self):
        report, testbeds = execute_experiment("checkpoint", TINY)
        assert testbeds > 0
        assert any(k.startswith("fuse.") for k in report.counters)
        assert any(k.startswith("store.client.") for k in report.counters)

    def test_digest_covers_counters(self):
        report, _ = execute_experiment("table1", TINY)
        base = report.digest()
        report.counters["store.client.bytes_read"] = 1.0
        assert report.digest() != base
