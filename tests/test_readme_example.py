"""The README's quickstart code block must actually run."""

import pathlib
import re

import numpy as np


def test_readme_quickstart_executes():
    readme = pathlib.Path(__file__).parent.parent / "README.md"
    text = readme.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README has no python code block"
    namespace: dict[str, object] = {}
    exec(compile(blocks[0], "README.md", "exec"), namespace)  # noqa: S102
    # The quickstart ends by running a process that returns the row it
    # wrote; sanity-check the environment it built.
    assert "engine" in namespace
    assert "lib" in namespace


def test_readme_commands_reference_real_paths():
    readme = pathlib.Path(__file__).parent.parent / "README.md"
    root = readme.parent
    text = readme.read_text()
    for rel in ("examples/quickstart.py", "EXPERIMENTS.md", "DESIGN.md"):
        assert rel in text
        assert (root / rel).exists(), f"README references missing {rel}"
