"""Tests for the node-local SSD cache tier and its cache integration.

The tier itself is plain bookkeeping over a simulated SSD partition
(unit tests below); the interesting behaviour is the contract with the
DRAM chunk cache: clean and dirty evictions spill, misses promote,
dirty write-backs stage through the tier and drain in the background,
and the inclusive shadow copies are never served stale — including the
write-back-clears-dirty ordering this PR's development caught.
"""

import pytest

from repro.errors import FuseError
from repro.fusefs import FuseMount, OpenFlags
from repro.fusefs.localtier import LocalCacheTier
from repro.store import CHUNK_SIZE, PAGE_SIZE
from tests.conftest import run


@pytest.fixture
def tier(small_cluster):
    return LocalCacheTier(
        small_cluster.node(1),
        capacity_bytes=3 * CHUNK_SIZE, chunk_size=CHUNK_SIZE,
    )


def chunk_of(byte):
    return bytes([byte]) * CHUNK_SIZE


class TestTierBookkeeping:
    def test_too_small_rejected(self, small_cluster):
        with pytest.raises(FuseError):
            LocalCacheTier(
                small_cluster.node(1),
                capacity_bytes=CHUNK_SIZE - 1, chunk_size=CHUNK_SIZE,
            )

    def test_put_then_promote_returns_copy_and_keeps_entry(self, engine, tier):
        def proc():
            yield from tier.put(("/f", 0), chunk_of(7))
            data = yield from tier.promote(("/f", 0))
            return data

        data = run(engine, proc())
        assert bytes(data) == chunk_of(7)
        # Inclusive: the promote left the local copy resident...
        assert tier.contains(("/f", 0))
        # ...and the returned buffer is the caller's own (no aliasing).
        data[0] = 99
        assert run(engine, tier.promote(("/f", 0)))[0] == 7

    def test_promote_charges_device_read_time(self, engine, tier):
        def proc():
            yield from tier.put(("/f", 0), chunk_of(1))
            before = engine.now
            yield from tier.promote(("/f", 0))
            return engine.now - before

        assert run(engine, proc()) > 0.0

    def test_patch_overwrites_only_given_ranges(self, engine, tier):
        def proc():
            yield from tier.put(("/f", 0), chunk_of(0))
            yield from tier.patch(
                ("/f", 0),
                [(0, b"\x05" * PAGE_SIZE), (2 * PAGE_SIZE, b"\x06" * PAGE_SIZE)],
            )
            return (yield from tier.promote(("/f", 0)))

        data = run(engine, proc())
        assert data[:PAGE_SIZE] == b"\x05" * PAGE_SIZE
        assert data[PAGE_SIZE : 2 * PAGE_SIZE] == b"\x00" * PAGE_SIZE
        assert data[2 * PAGE_SIZE : 3 * PAGE_SIZE] == b"\x06" * PAGE_SIZE

    def test_patch_is_cheaper_than_put(self, engine, tier):
        def timed(gen):
            before = engine.now
            yield from gen
            return engine.now - before

        def proc():
            yield from tier.put(("/f", 0), chunk_of(0))
            patch_t = yield from timed(
                tier.patch(("/f", 0), [(0, b"x" * PAGE_SIZE)])
            )
            put_t = yield from timed(tier.put(("/f", 0), chunk_of(1)))
            return patch_t, put_t

        patch_t, put_t = run(engine, proc())
        assert 0.0 < patch_t < put_t

    def test_lru_eviction_order(self, engine, tier):
        def proc():
            for i in range(3):
                yield from tier.put(("/f", i), chunk_of(i))
            tier.touch(("/f", 0))  # 0 is now MRU; 1 is the LRU victim
            yield from tier.put(("/f", 3), chunk_of(3))

        run(engine, proc())
        assert not tier.contains(("/f", 1))
        assert tier.cached_keys() == [("/f", 2), ("/f", 0), ("/f", 3)]

    def test_staged_entries_skipped_by_eviction(self, engine, tier):
        def proc():
            yield from tier.put(("/f", 0), chunk_of(0), staged=True)
            for i in range(1, 4):
                yield from tier.put(("/f", i), chunk_of(i))

        run(engine, proc())
        assert tier.contains(("/f", 0))  # staged: the only durable copy
        assert not tier.contains(("/f", 1))  # the oldest plain entry went

    def test_put_fails_when_wedged_full_of_staged(self, engine, tier):
        def proc():
            for i in range(3):
                yield from tier.put(("/f", i), chunk_of(i), staged=True)
            return (yield from tier.put(("/f", 9), chunk_of(9)))

        assert run(engine, proc()) is False
        assert not tier.contains(("/f", 9))

    def test_mark_drained_makes_entry_evictable(self, engine, tier):
        def proc():
            for i in range(3):
                yield from tier.put(("/f", i), chunk_of(i), staged=True)
            for i in range(3):
                tier.mark_drained(("/f", i))
            return (yield from tier.put(("/f", 9), chunk_of(9)))

        assert run(engine, proc()) is True
        assert tier.staged_keys() == []

    def test_drop_path_forgets_all_chunks(self, engine, tier):
        def proc():
            yield from tier.put(("/a", 0), chunk_of(0))
            yield from tier.put(("/a", 1), chunk_of(1))
            yield from tier.put(("/b", 0), chunk_of(2))

        run(engine, proc())
        tier.drop_path("/a")
        assert len(tier) == 1
        assert tier.contains(("/b", 0))


@pytest.fixture
def tiered_mount(small_cluster, store):
    """A 2-chunk DRAM cache over a 6-chunk local tier: evicts early."""
    return FuseMount(
        small_cluster.node(1), store,
        cache_bytes=2 * CHUNK_SIZE, local_cache_bytes=6 * CHUNK_SIZE,
    )


def open_file(mount, path, chunks=8):
    def proc():
        return (
            yield from mount.open(
                path, OpenFlags.O_RDWR | OpenFlags.O_CREAT,
                size=chunks * CHUNK_SIZE,
            )
        )

    return proc()


class TestCacheIntegration:
    def test_clean_evictions_spill_and_serve_rereads(
        self, engine, small_cluster, store, tiered_mount
    ):
        mount = tiered_mount
        cache = mount.cache

        def proc():
            fd = yield from open_file(mount, "/f")
            for i in range(4):
                yield from mount.pread(fd, i * CHUNK_SIZE, 64)
            # Chunks 0-1 were evicted clean into the tier; re-reading
            # them is an L2 hit, not a store round trip.
            read_before = cache.client.metrics.value("store.client.bytes_read")
            yield from mount.pread(fd, 0, 64)
            yield from mount.pread(fd, 1 * CHUNK_SIZE, 64)
            read_after = cache.client.metrics.value("store.client.bytes_read")
            yield from mount.close(fd)
            return read_after - read_before

        store_bytes = run(engine, proc())
        assert store_bytes == 0
        assert cache.stats.l2_hits == 2
        assert cache.stats.l2_spill_bytes > 0
        assert cache.stats.l2_promote_bytes == 2 * CHUNK_SIZE
        assert cache.stats.l2_fills == 2
        assert cache.stats.l2_fill_seconds > 0.0

    def test_dirty_evictions_stage_and_drain(
        self, engine, small_cluster, store, tiered_mount
    ):
        mount = tiered_mount
        cache = mount.cache

        def proc():
            fd = yield from open_file(mount, "/f")
            for i in range(6):
                yield from mount.pwrite(
                    fd, i * CHUNK_SIZE, bytes([i + 1]) * PAGE_SIZE
                )
            yield from mount.close(fd)

        run(engine, proc())
        # Dirty evictions staged through the tier, and every staged
        # write-back drained by the time the engine idles.
        assert cache.stats.dirty_evictions > 0
        assert cache.local_tier.staged_keys() == []
        assert cache.stats.writeback_bytes > 0

        # The store holds the written bytes: a fresh mount (no tier,
        # cold cache) must read them back.
        verify = FuseMount(
            small_cluster.node(2), store, cache_bytes=2 * CHUNK_SIZE
        )

        def check():
            fd = yield from verify.open("/f", OpenFlags.O_RDONLY)
            payload = []
            for i in range(6):
                payload.append(
                    (yield from verify.pread(fd, i * CHUNK_SIZE, PAGE_SIZE))
                )
            yield from verify.close(fd)
            return payload

        payload = run(engine, check())
        for i, data in enumerate(payload):
            assert data == bytes([i + 1]) * PAGE_SIZE

    def test_invalidate_drops_tier_copies(
        self, engine, small_cluster, store, tiered_mount
    ):
        mount = tiered_mount

        def proc():
            fd = yield from open_file(mount, "/f")
            for i in range(4):
                yield from mount.pread(fd, i * CHUNK_SIZE, 64)
            yield from mount.close(fd)
            yield from mount.unlink("/f")

        run(engine, proc())
        assert len(mount.cache.local_tier) == 0

    def test_promotable_shadow_round_trips_written_bytes(
        self, engine, small_cluster, store, tiered_mount
    ):
        """A promoted chunk written in DRAM must read back its new bytes
        after the next eviction patches the tier's shadow copy."""
        mount = tiered_mount
        cache = mount.cache

        def proc():
            fd = yield from open_file(mount, "/f")
            # Chunk 0 into the tier (clean spill), then promote it back.
            for i in range(3):
                yield from mount.pread(fd, i * CHUNK_SIZE, 64)
            yield from mount.pread(fd, 0, 64)
            assert cache.stats.l2_hits == 1
            # Diverge the DRAM copy from the shadow.
            yield from mount.pwrite(fd, 0, b"\xaa" * PAGE_SIZE)
            # Evict chunk 0 again (dirty now): the spill must patch the
            # shadow, and the re-read must see the write.
            for i in range(3, 6):
                yield from mount.pread(fd, i * CHUNK_SIZE, 64)
            data = yield from mount.pread(fd, 0, PAGE_SIZE)
            yield from mount.close(fd)
            return data

        assert run(engine, proc()) == b"\xaa" * PAGE_SIZE

    def test_flush_then_evict_never_serves_stale_shadow(
        self, engine, small_cluster, store, tiered_mount
    ):
        """Regression: an fsync write-back clears ``dirty`` while the
        tier's shadow still holds pre-write bytes.  A fill must not
        promote that shadow (the dirty-merge can no longer repair it),
        and the eviction must still bring it current."""
        mount = tiered_mount
        cache = mount.cache

        def proc():
            fd = yield from open_file(mount, "/f")
            for i in range(3):
                yield from mount.pread(fd, i * CHUNK_SIZE, 64)
            yield from mount.pread(fd, 0, 64)  # promote: shadow in tier
            yield from mount.pwrite(fd, 0, b"\xbb" * PAGE_SIZE)
            yield from mount.fsync(fd)
            # Post-flush: dirty is clean but the shadow lags — the entry
            # must not be promotable from the tier.
            entry = cache._entries[("/f", 0)]
            assert entry.l2_stale is not None and entry.l2_stale
            assert not entry.dirty
            assert cache._promotable(("/f", 0), entry) is False
            # Evict chunk 0 (clean this time), then read it back.
            for i in range(3, 6):
                yield from mount.pread(fd, i * CHUNK_SIZE, 64)
            data = yield from mount.pread(fd, 0, PAGE_SIZE)
            yield from mount.close(fd)
            return data

        assert run(engine, proc()) == b"\xbb" * PAGE_SIZE

    def test_default_config_has_no_tier(self, small_cluster, store):
        mount = FuseMount(
            small_cluster.node(1), store, cache_bytes=2 * CHUNK_SIZE
        )
        assert mount.cache.local_tier is None
        assert mount.cache.extended_metrics is False
