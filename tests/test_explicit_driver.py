"""Tests for the explicit-control-vs-swap experiment driver."""

import pytest

from repro.experiments import SMALL, explicit_vs_swap


@pytest.fixture(scope="module")
def report():
    # One run shared by the assertions below (the driver is deterministic).
    return explicit_vs_swap(SMALL)


class TestExplicitVsSwap:
    def test_verified_and_complete(self, report):
        assert report.verified
        assert len(report.rows) == 4

    def test_sharing_row_is_decisive(self, report):
        rows = {row[0]: row for row in report.rows}
        shared = rows["8 processes reading one 16 MiB dataset"]
        assert shared[3] > 4.0

    def test_capacity_row_structure(self, report):
        rows = {row[0]: row for row in report.rows}
        big = rows["Dataset 2x the local NVM partition"]
        assert "CapacityError" in str(big[1])
        assert float(big[2]) > 0.0

    def test_claims_present(self, report):
        assert report.paper_claims and report.measured_claims
        assert "explicit control" in report.paper_claims[0]
