"""Boundary tests: files and regions that do not align to pages/chunks."""

import pytest

from repro.fusefs import FuseMount, OpenFlags
from repro.mem import MmapRegion, PageCache
from repro.store import CHUNK_SIZE, PAGE_SIZE
from repro.util.units import KiB, MiB
from tests.conftest import run


@pytest.fixture
def mount(small_cluster, store):
    return FuseMount(small_cluster.node(2), store, cache_bytes=1 * MiB)


AWKWARD_SIZES = [
    1,  # single byte file
    PAGE_SIZE - 1,
    PAGE_SIZE + 1,
    CHUNK_SIZE - 1,
    CHUNK_SIZE + 1,
    CHUNK_SIZE + PAGE_SIZE + 37,
    2 * CHUNK_SIZE - 3,
]


class TestUnalignedFiles:
    @pytest.mark.parametrize("size", AWKWARD_SIZES)
    def test_full_file_roundtrip(self, engine, mount, size):
        payload = bytes((i * 31 + 7) % 256 for i in range(size))
        name = f"/tail/{size}"

        def proc():
            fd = yield from mount.open(
                name, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=size
            )
            yield from mount.pwrite(fd, 0, payload)
            yield from mount.fsync(fd)
            mount.cache.invalidate_path(name)
            back = yield from mount.pread(fd, 0, size)
            yield from mount.close(fd)
            return back

        assert run(engine, proc()) == payload

    @pytest.mark.parametrize("size", AWKWARD_SIZES)
    def test_last_byte(self, engine, mount, size):
        name = f"/last/{size}"

        def proc():
            fd = yield from mount.open(
                name, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=size
            )
            yield from mount.pwrite(fd, size - 1, b"\xff")
            yield from mount.fsync(fd)
            mount.cache.invalidate_path(name)
            return (yield from mount.pread(fd, size - 1, 1))

        assert run(engine, proc()) == b"\xff"

    def test_write_past_end_rejected(self, engine, mount):
        def proc():
            fd = yield from mount.open(
                "/bounded", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=100
            )
            yield from mount.pwrite(fd, 99, b"ab")

        from repro.errors import FuseError

        with pytest.raises(FuseError):
            run(engine, proc())


class TestUnalignedMappings:
    @pytest.mark.parametrize("size", [PAGE_SIZE + 13, CHUNK_SIZE + 999])
    def test_region_roundtrip(self, engine, mount, size):
        pagecache = PageCache(mount, capacity_bytes=32 * KiB)
        name = f"/map/{size}"

        def proc():
            fd = yield from mount.open(
                name, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=size
            )
            yield from mount.close(fd)
            region = MmapRegion(pagecache, name, size)
            payload = bytes(i % 251 for i in range(size))
            yield from region.write(0, payload)
            # Evict everything so reads fault through the tail page.
            yield from pagecache.sync_path(name)
            yield from pagecache.drop_path(name)
            back = yield from region.read(0, size)
            yield from region.munmap()
            return back == payload

        assert run(engine, proc())

    def test_tail_page_partial_flush(self, engine, mount):
        """Flushing the final, partial page writes only the real bytes."""
        pagecache = PageCache(mount, capacity_bytes=32 * KiB)
        size = PAGE_SIZE + 100

        def proc():
            fd = yield from mount.open(
                "/tailpage", OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=size
            )
            yield from mount.close(fd)
            region = MmapRegion(pagecache, "/tailpage", size)
            yield from region.write(PAGE_SIZE, b"z" * 100)
            yield from region.msync()
            yield from mount.cache.flush_path("/tailpage")
            mount.cache.invalidate_path("/tailpage")
            fd = yield from mount.open("/tailpage", OpenFlags.O_RDONLY)
            return (yield from mount.pread(fd, PAGE_SIZE, 100))

        assert run(engine, proc()) == b"z" * 100


class TestBatchedReadBoundaries:
    """Batched (ranged) page-cache reads across chunk seams and tails.

    The fast path groups contiguous missing pages into one fault per
    chunk piece and assembles the result without per-page copies; these
    tests pin that a single read spanning a chunk boundary, or running
    into a partial tail page, returns exactly the written bytes.
    """

    def _filled_file(self, engine, mount, pagecache, name, size):
        payload = bytes((i * 13 + 5) % 256 for i in range(size))

        def proc():
            fd = yield from mount.open(
                name, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=size
            )
            yield from mount.pwrite(fd, 0, payload)
            yield from mount.fsync(fd)
            yield from mount.close(fd)
            # Cold page cache: the batched read faults everything.
            yield from pagecache.drop_path(name, sync=False)

        run(engine, proc())
        return payload

    def test_read_spanning_chunk_boundary(self, engine, mount):
        pagecache = PageCache(mount, capacity_bytes=1 * MiB)
        size = 2 * CHUNK_SIZE
        payload = self._filled_file(engine, mount, pagecache, "/span", size)
        start = CHUNK_SIZE - 3 * PAGE_SIZE - 17
        length = 6 * PAGE_SIZE + 23  # crosses the chunk seam mid-page

        def proc():
            return (yield from pagecache.read("/span", start, length))

        assert bytes(run(engine, proc())) == payload[start : start + length]

    @pytest.mark.parametrize(
        "size",
        [CHUNK_SIZE + PAGE_SIZE + 37, 2 * CHUNK_SIZE - 3, PAGE_SIZE + 1],
    )
    def test_read_into_file_tail(self, engine, mount, size):
        pagecache = PageCache(mount, capacity_bytes=1 * MiB)
        name = f"/batchtail/{size}"
        payload = self._filled_file(engine, mount, pagecache, name, size)
        # Span from a few pages before the tail through the last byte.
        start = max(0, size - 3 * PAGE_SIZE - 11)

        def proc():
            return (yield from pagecache.read(name, start, size - start))

        assert bytes(run(engine, proc())) == payload[start:]

    def test_batched_write_then_batched_read(self, engine, mount):
        """A ranged write over a cold cache reads back identically."""
        pagecache = PageCache(mount, capacity_bytes=1 * MiB)
        size = CHUNK_SIZE + 5 * PAGE_SIZE
        name = "/batchrw"

        def proc():
            fd = yield from mount.open(
                name, OpenFlags.O_RDWR | OpenFlags.O_CREAT, size=size
            )
            yield from mount.close(fd)
            payload = bytes((i * 7 + 3) % 256 for i in range(size))
            # One write spanning full pages, partial edges, and the seam.
            yield from pagecache.write(name, 0, payload)
            yield from pagecache.sync_path(name)
            yield from pagecache.drop_path(name, sync=False)
            back = yield from pagecache.read(name, 0, size)
            return bytes(back) == payload

        assert run(engine, proc())
