"""Smoke test for ``tools/profile_stack.py``.

Profiles one TINY workload end to end and checks the output carries the
sections a reader relies on: the per-workload header, the wall/virtual
summary line, and the pstats table.
"""

import sys
from pathlib import Path

_TOOLS = str(Path(__file__).resolve().parent.parent / "tools")
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

import profile_stack  # noqa: E402


def test_profiles_tiny_workload_with_expected_sections(capsys, tmp_path):
    out = tmp_path / "stats"
    rc = profile_stack.main(
        [
            "--scale", "tiny",
            "--workloads", "checkpoint_linked",
            "--sort", "tottime",
            "--limit", "5",
            "--output", str(out),
        ]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "=== checkpoint_linked (scale=tiny) ===" in captured.out
    assert "wall " in captured.out and "virtual " in captured.out
    assert "events " in captured.out
    # The pstats table made it out, sorted by the requested key.
    assert "function calls" in captured.out
    assert "cumtime" in captured.out
    assert "WARNING" not in captured.err
    # --output dumped a loadable raw profile per workload.
    import pstats

    pstats.Stats(str(out) + ".checkpoint_linked")


def test_unknown_workload_rejected(capsys):
    try:
        profile_stack.main(["--workloads", "nope"])
    except SystemExit as exc:
        assert exc.code == 2
    else:  # pragma: no cover
        raise AssertionError("argparse should reject unknown workloads")


def test_layers_mode_attributes_virtual_time(capsys, tmp_path):
    out = tmp_path / "layers.json"
    rc = profile_stack.main(
        [
            "--layers",
            "--scale", "tiny",
            "--workloads", "checkpoint_linked",
            "--layers-out", str(out),
        ]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "per-(layer, op) virtual attribution" in captured.out
    assert "critical-path layer shares:" in captured.out
    assert "pagecache.fault" in captured.out

    import json

    payload = json.loads(out.read_text())
    assert payload["schema"] == 1
    result = payload["workloads"]["checkpoint_linked"]
    assert result["spans"] > 0
    rollup = result["layers"]
    # Self-time never exceeds inclusive and both are non-negative.
    for row in rollup.values():
        assert 0.0 <= round(row["virtual_self"], 12) <= round(
            row["virtual_inclusive"], 12
        ) + 1e-12

    # --diff against the dump we just wrote: virtual columns replay
    # bit-identically, so no row may be flagged as changed.
    rc = profile_stack.main(
        [
            "--layers",
            "--scale", "tiny",
            "--workloads", "checkpoint_linked",
            "--diff", str(out),
        ]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "layers diff (old -> new)" in captured.out
    assert "VIRTUAL DRIFT" not in captured.out
    assert "*" not in captured.out.replace("* ", "")  # no changed-row markers


def test_layers_diff_requires_layers(capsys):
    try:
        profile_stack.main(["--diff", "x.json"])
    except SystemExit as exc:
        assert exc.code == 2
    else:  # pragma: no cover
        raise AssertionError("--diff without --layers should be rejected")
