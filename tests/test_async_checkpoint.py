"""Async checkpoint pipeline: CoW snapshots, backpressure, chain linking."""

import pytest

from repro.core import MutationTracker
from repro.errors import MmapError, RestoreError
from repro.store import CHUNK_SIZE
from tests.conftest import run


class TestMutationTracker:
    def test_records_touched_chunk_span(self):
        tracker = MutationTracker(chunk_size=100)
        assert list(tracker.before_write(50, 120)) == []  # yields nothing
        assert tracker.touched == {0, 1}
        list(tracker.before_write(399, 2))
        assert tracker.touched == {0, 1, 3, 4}

    def test_reset_returns_and_clears(self):
        tracker = MutationTracker(chunk_size=100)
        list(tracker.before_write(0, 1))
        assert tracker.reset() == {0}
        assert tracker.touched == set()
        assert tracker.reset() == set()


class TestWriteHooks:
    def test_duplicate_registration_rejected(self, nvmalloc):
        tracker = MutationTracker(chunk_size=CHUNK_SIZE)
        nvmalloc.pagecache.register_write_hook("/p", tracker)
        with pytest.raises(MmapError):
            nvmalloc.pagecache.register_write_hook("/p", tracker)
        nvmalloc.pagecache.unregister_write_hook("/p", tracker)
        nvmalloc.pagecache.unregister_write_hook("/p", tracker)  # idempotent


class TestAsyncCheckpoint:
    def test_snapshot_consistent_despite_overlapping_writes(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(4 * CHUNK_SIZE)
            yield from var.write(0, b"a" * (4 * CHUNK_SIZE))
            handle = yield from nvmalloc.ssdcheckpoint_async(
                "app", 0, b"dram", [("v", var)]
            )
            # Overwrite every chunk while the drain is still running: the
            # snapshot must keep the bytes from initiation time.
            yield from var.write(0, b"b" * (4 * CHUNK_SIZE))
            record = yield from handle.wait()
            _, variables = yield from nvmalloc.restore("app", 0)
            live = yield from var.read(0, 4 * CHUNK_SIZE)
            return handle, record, variables["v"], live

        handle, record, restored, live = run(engine, proc())
        assert restored == b"a" * (4 * CHUNK_SIZE)
        assert live == b"b" * (4 * CHUNK_SIZE)
        assert handle.cow_captures >= 1
        assert not handle.draining
        assert record.bytes_written == 4 + 4 * CHUNK_SIZE

    def test_backpressure_bounds_staging_memory(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(4 * CHUNK_SIZE)
            yield from var.write(0, b"a" * (4 * CHUNK_SIZE))
            handle = yield from nvmalloc.ssdcheckpoint_async(
                "app", 0, b"", [("v", var)], staging_bytes=CHUNK_SIZE
            )
            yield from var.write(0, b"b" * (4 * CHUNK_SIZE))
            yield from handle.wait()
            _, variables = yield from nvmalloc.restore("app", 0)
            return handle, variables["v"]

        handle, restored = run(engine, proc())
        assert restored == b"a" * (4 * CHUNK_SIZE)
        # App-side captures respect the bound; the drainer may hold at
        # most one extra in-flight chunk beyond it.
        assert handle.staging_peak <= 2 * CHUNK_SIZE

    def test_chain_links_unchanged_chunks_to_prior_epoch(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(4 * CHUNK_SIZE)
            yield from var.write(0, b"e0" * (2 * CHUNK_SIZE))
            first = yield from nvmalloc.ssdcheckpoint_async("app", 0, b"", [("v", var)])
            yield from first.wait()
            yield from var.write(2 * CHUNK_SIZE, b"touched")
            second = yield from nvmalloc.ssdcheckpoint_async("app", 1, b"", [("v", var)])
            record = yield from second.wait()
            _, variables = yield from nvmalloc.restore("app", 1)
            return first.record, record, variables["v"]

        first, second, restored = run(engine, proc())
        # Epoch 0 has no prior epoch: everything is dirty.  Epoch 1 only
        # re-writes the chunk touched since epoch 0's initiation and
        # links the other three to epoch 0's frozen chunks.
        assert (first.dirty_chunks, first.total_chunks) == (4, 4)
        assert (second.dirty_chunks, second.total_chunks) == (1, 4)
        assert second.bytes_written == CHUNK_SIZE
        assert second.bytes_linked == 3 * CHUNK_SIZE
        assert second.bytes_written < first.bytes_written
        expected = bytearray(b"e0" * (2 * CHUNK_SIZE))
        expected[2 * CHUNK_SIZE : 2 * CHUNK_SIZE + 7] = b"touched"
        assert restored == bytes(expected)

    def test_restore_before_commit_falls_back_to_parent(self, engine, nvmalloc):
        def proc():
            var = yield from nvmalloc.ssdmalloc(CHUNK_SIZE)
            yield from var.write(0, b"epoch-0")
            yield from nvmalloc.ssdcheckpoint("app", 0, b"d0", [("v", var)])
            yield from var.write(0, b"epoch-1")
            handle = yield from nvmalloc.ssdcheckpoint_async(
                "app", 1, b"d1", [("v", var)]
            )
            # Epoch 1 is still draining (uncommitted): a restore of it
            # must fall back to the committed parent.
            dram_mid, vars_mid = yield from nvmalloc.restore("app", 1)
            mid = (dram_mid, vars_mid["v"][:7], nvmalloc.last_restore_fallback)
            yield from handle.wait()
            dram_end, vars_end = yield from nvmalloc.restore("app", 1)
            end = (dram_end, vars_end["v"][:7], nvmalloc.last_restore_fallback)
            return mid, end

        mid, end = run(engine, proc())
        assert mid == (b"d0", b"epoch-0", True)
        assert end == (b"d1", b"epoch-1", False)

    def test_drain_failure_leaves_epoch_truncated(self, engine, nvmalloc, store):
        def proc():
            var = yield from nvmalloc.ssdmalloc(CHUNK_SIZE)
            yield from var.write(0, b"epoch-0")
            yield from nvmalloc.ssdcheckpoint("app", 0, b"d0", [("v", var)])
            yield from var.write(0, b"epoch-1")
            handle = yield from nvmalloc.ssdcheckpoint_async(
                "app", 1, b"d1", [("v", var)]
            )
            # Crash every benefactor replica mid-drain (r=1 store): the
            # drain cannot land its writes and the epoch never commits.
            ckpt_meta = store.lookup(handle.record.path)
            for chunk_id in ckpt_meta.chunk_ids:
                for benefactor in store.chunk_replicas(chunk_id):
                    if benefactor.online:
                        benefactor.crash()
            error = None
            try:
                yield from handle.wait()
            except Exception as exc:  # noqa: BLE001 - recording for assert
                error = exc
            return handle, error

        handle, error = run(engine, proc())
        assert error is not None
        assert handle.error is error
        assert not store.epoch_record("app", 1).committed
        assert store.resolve_restore_epoch("app", 1) == 0

    def test_gc_never_frees_epoch_under_inflight_restore(
        self, engine, nvmalloc, store
    ):
        observed = {}

        def app():
            var = yield from nvmalloc.ssdmalloc(2 * CHUNK_SIZE)
            yield from var.write(0, b"pinned")
            for step in range(3):
                yield from nvmalloc.ssdcheckpoint(
                    "app", step, b"d%d" % step, [("v", var)], mode="full"
                )
            restorer = engine.process(nvmalloc.restore("app", 0))
            # Interleave: run GC while the restore of epoch 0 is mid-read.
            yield engine.timeout(1e-6)
            assert store.epoch_pinned("app", 0)
            yield from nvmalloc.gc_checkpoints("app", keep_last=1)
            observed["survived"] = store.committed_epochs("app")
            dram, variables = yield restorer
            observed["restored"] = (dram, variables["v"][:6])
            # With the pin released, a second GC pass retires epoch 0.
            yield from nvmalloc.gc_checkpoints("app", keep_last=1)
            observed["after"] = store.committed_epochs("app")

        run(engine, app())
        assert observed["survived"] == (0, 2)
        assert observed["restored"] == (b"d0", b"pinned")
        assert observed["after"] == (2,)

    def test_async_restore_error_is_typed(self, engine, nvmalloc, store):
        def proc():
            var = yield from nvmalloc.ssdmalloc(CHUNK_SIZE)
            yield from var.write(0, b"gone")
            handle = yield from nvmalloc.ssdcheckpoint_async(
                "app", 0, b"d", [("v", var)]
            )
            yield from handle.wait()
            # Lose every replica of the checkpoint data, then force the
            # restore to hit the store rather than warm caches.
            ckpt_meta = store.lookup(handle.record.path)
            victims = {
                benefactor.name: benefactor
                for chunk_id in ckpt_meta.chunk_ids
                for benefactor in store.chunk_replicas(chunk_id)
            }
            for benefactor in victims.values():
                benefactor.crash()
                store.mark_offline(benefactor.name)
            nvmalloc.mount.cache.invalidate_path(handle.record.path)
            yield from nvmalloc.restore("app", 0)

        with pytest.raises(RestoreError) as excinfo:
            run(engine, proc())
        assert excinfo.value.epoch == 0
        assert excinfo.value.lost_chunks
        for lost in excinfo.value.lost_chunks:
            assert lost.epoch == 0
            assert lost.replicas
