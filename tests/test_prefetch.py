"""Tests for the per-file access-pattern detector and adaptive read-ahead.

The planner is pure bookkeeping (unit tests below: confidence gate,
depth ramp, stride detection, frontier dedup, random shut-off); the
cache integration tests check the visible contract — sequential scans
earn prefetches that later demand reads consume, random access issues
none at all.
"""

import pytest

from repro.errors import FuseError
from repro.fusefs import FuseMount, OpenFlags
from repro.fusefs.prefetch import PatternPrefetcher
from repro.store import CHUNK_SIZE
from tests.conftest import run


class TestRampGate:
    def test_first_accesses_never_prefetch(self):
        pf = PatternPrefetcher()
        assert pf.plan("/f", 0) == []
        assert pf.plan("/f", 1) == []
        assert pf.plan("/f", 2) == []  # run of 2: still below min_run

    def test_run_of_min_run_triggers_depth_one(self):
        pf = PatternPrefetcher()
        for i in range(3):
            pf.plan("/f", i)
        assert len(pf.plan("/f", 3)) == 1

    def test_depth_doubles_up_to_cap(self):
        pf = PatternPrefetcher(max_depth=8)
        for i in range(3):
            pf.plan("/f", i)
        depths = [len(pf.plan("/f", i)) for i in range(3, 9)]
        # 1, then 2, then the frontier-limited ramp toward max_depth —
        # never more than max_depth in one plan, monotone while ramping.
        assert depths[0] == 1
        assert depths[1] == 2
        assert max(depths) <= 8
        assert all(b >= a for a, b in zip(depths[:3], depths[1:4]))

    def test_frontier_never_replans_a_chunk(self):
        pf = PatternPrefetcher()
        seen = set()
        for i in range(20):
            for target in pf.plan("/f", i):
                assert target not in seen
                seen.add(target)

    def test_per_file_state_is_independent(self):
        pf = PatternPrefetcher()
        for i in range(4):
            pf.plan("/a", i)
        # /b has no run yet: its plans stay empty regardless of /a.
        assert pf.plan("/b", 0) == []
        assert pf.plan("/b", 7) == []


class TestStrideDetection:
    def test_constant_stride_prefetches_multiples(self):
        pf = PatternPrefetcher()
        for i in (0, 3, 6):
            pf.plan("/f", i)
        targets = pf.plan("/f", 9)
        assert targets
        assert all((t - 9) % 3 == 0 or (t - 0) % 3 == 0 for t in targets)
        # Keep confirming: every planned chunk sits on the stride lattice.
        more = pf.plan("/f", 12)
        assert all(t % 3 == 0 for t in targets + more)

    def test_backward_scan_plans_below(self):
        pf = PatternPrefetcher()
        targets = []
        for i in range(20, 13, -1):
            targets += pf.plan("/f", i)
        assert targets
        assert all(t < 20 for t in targets)
        # The frontier marches ahead of (below) the scan as it confirms.
        assert min(targets) < 14

    def test_stride_change_resets_the_run(self):
        pf = PatternPrefetcher()
        for i in range(4):
            pf.plan("/f", i)
        assert pf.plan("/f", 10) == []  # jump: run restarts
        assert pf.state("/f")["run"] == 1
        assert pf.plan("/f", 11) == []
        assert pf.plan("/f", 12) == []
        assert pf.plan("/f", 13)  # three confirming deltas again

    def test_random_access_shuts_off(self):
        pf = PatternPrefetcher()
        issued = []
        for i in (5, 0, 9, 2, 14, 7, 1, 11, 3, 13, 6, 10):
            issued += pf.plan("/f", i)
        assert issued == []

    def test_same_chunk_reaccess_neither_confirms_nor_breaks(self):
        pf = PatternPrefetcher()
        for i in (0, 1, 2):
            pf.plan("/f", i)
        before = dict(pf.state("/f"))
        assert pf.plan("/f", 2) == []  # intra-chunk fault replay
        assert pf.state("/f") == before
        assert pf.plan("/f", 3)  # the run is still alive


class TestLifecycle:
    def test_forget_drops_state(self):
        pf = PatternPrefetcher()
        for i in range(4):
            pf.plan("/f", i)
        pf.forget("/f")
        assert pf.state("/f") is None
        assert pf.plan("/f", 4) == []  # starts over from scratch

    def test_state_introspection(self):
        pf = PatternPrefetcher()
        for i in (0, 2, 4):
            pf.plan("/f", i)
        state = pf.state("/f")
        assert state["last"] == 4
        assert state["stride"] == 2
        assert state["run"] == 2

    def test_bad_arguments_rejected(self):
        with pytest.raises(FuseError):
            PatternPrefetcher(max_depth=0)
        with pytest.raises(FuseError):
            PatternPrefetcher(min_run=1)


@pytest.fixture
def adaptive_mount(small_cluster, store):
    return FuseMount(
        small_cluster.node(1), store,
        cache_bytes=8 * CHUNK_SIZE, prefetch="adaptive",
    )


def read_chunks(engine, mount, path, indices, chunks=24):
    def proc():
        fd = yield from mount.open(
            path, OpenFlags.O_RDWR | OpenFlags.O_CREAT,
            size=chunks * CHUNK_SIZE,
        )
        for i in indices:
            yield from mount.pread(fd, i * CHUNK_SIZE, 64)
        yield from mount.close(fd)

    run(engine, proc())


class TestCacheIntegration:
    def test_sequential_scan_earns_useful_prefetches(
        self, engine, small_cluster, store, adaptive_mount
    ):
        stats = adaptive_mount.cache.stats
        read_chunks(engine, adaptive_mount, "/seq", range(16))
        assert stats.prefetches > 0
        assert stats.prefetch_hits > 0
        assert 0.0 < stats.prefetch_accuracy <= 1.0
        assert stats.prefetched_bytes > 0
        # Demand-only hit rate: prefetch fills were not counted as
        # lookups, so hits + misses equals the 16 demand reads.
        assert stats.hits + stats.misses == 16

    def test_random_access_issues_zero_prefetches(
        self, engine, small_cluster, store, adaptive_mount
    ):
        stats = adaptive_mount.cache.stats
        read_chunks(
            engine, adaptive_mount, "/rand",
            [5, 0, 9, 2, 14, 7, 1, 11, 3, 13, 6, 10],
        )
        assert stats.prefetches == 0
        assert stats.prefetched_bytes == 0

    def test_prefetch_stops_at_file_end(
        self, engine, small_cluster, store, adaptive_mount
    ):
        read_chunks(
            engine, adaptive_mount, "/short", range(6), chunks=6
        )
        # Nothing past the last chunk was ever fetched.
        fetched = adaptive_mount.cache.stats.fetched_bytes
        assert fetched <= 6 * CHUNK_SIZE

    def test_fixed_readahead_path_unchanged(self, engine, small_cluster, store):
        mount = FuseMount(
            small_cluster.node(1), store,
            cache_bytes=8 * CHUNK_SIZE, readahead_chunks=2,
        )
        read_chunks(engine, mount, "/fixed", range(8))
        assert mount.cache.prefetcher is None
        assert mount.cache.stats.prefetches > 0
        assert mount.cache.stats.prefetched_bytes > 0
