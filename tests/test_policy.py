"""Tests for the DRAM/NVM placement policy."""

import pytest

from repro.core.policy import (
    PlacementDecision,
    PlacementPolicy,
    VariableProfile,
)
from repro.util.units import MiB


def profile(name, nbytes, reads=1.0, writes=1.0, sequential=True):
    return VariableProfile(
        name=name, nbytes=nbytes, reads_per_byte=reads,
        writes_per_byte=writes, sequential=sequential,
    )


class TestPolicy:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            PlacementPolicy(-1)

    def test_everything_fits(self):
        policy = PlacementPolicy(10 * MiB)
        decisions = policy.place([profile("a", 1 * MiB), profile("b", 2 * MiB)])
        assert all(d is PlacementDecision.DRAM for d in decisions.values())

    def test_spill_cold_variables(self):
        policy = PlacementPolicy(2 * MiB)
        hot = profile("hot", 2 * MiB, reads=100, writes=100)
        cold = profile("cold", 2 * MiB, reads=1, writes=0.1)
        decisions = policy.place([cold, hot])
        assert decisions["hot"] is PlacementDecision.DRAM
        assert decisions["cold"] is PlacementDecision.NVM

    def test_write_once_read_many_prefers_nvm(self):
        """The paper's guidance: WORM variables are ideal spill candidates."""
        policy = PlacementPolicy(2 * MiB)
        worm = profile("worm", 2 * MiB, reads=10, writes=1.0)
        mutable = profile("mutable", 2 * MiB, reads=10, writes=1.0001)
        # Identical traffic, but the WORM variable's heat is discounted.
        assert policy.heat(worm) < policy.heat(mutable)
        decisions = policy.place([worm, mutable])
        assert decisions["mutable"] is PlacementDecision.DRAM
        assert decisions["worm"] is PlacementDecision.NVM

    def test_writes_weighted_heavier(self):
        policy = PlacementPolicy(1 * MiB, write_weight=3.0)
        reader = profile("reader", 1 * MiB, reads=4, writes=0, sequential=False)
        writer = profile("writer", 1 * MiB, reads=0, writes=2, sequential=False)
        assert policy.heat(writer) > policy.heat(reader)

    def test_zero_budget_spills_all(self):
        policy = PlacementPolicy(0)
        decisions = policy.place([profile("a", 1)])
        assert decisions["a"] is PlacementDecision.NVM

    def test_fits_in_dram(self):
        policy = PlacementPolicy(3 * MiB)
        assert policy.fits_in_dram([profile("a", 1 * MiB), profile("b", 2 * MiB)])
        assert not policy.fits_in_dram([profile("a", 4 * MiB)])

    def test_greedy_packing(self):
        policy = PlacementPolicy(3 * MiB)
        a = profile("a", 2 * MiB, reads=10, sequential=False)
        b = profile("b", 2 * MiB, reads=9, sequential=False)
        c = profile("c", 1 * MiB, reads=8, sequential=False)
        decisions = policy.place([a, b, c])
        assert decisions["a"] is PlacementDecision.DRAM  # hottest first
        assert decisions["b"] is PlacementDecision.NVM  # no room
        assert decisions["c"] is PlacementDecision.DRAM  # fits remainder
