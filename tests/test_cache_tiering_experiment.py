"""The cache-tiering ablation: improvement claims, digest determinism.

Marked ``cache`` (excluded from the default tier-1 run, like ``faults``):
the grid runs 20 full workload legs, so this file costs noticeably more
wall time than the unit tests.  CI runs it in a dedicated job alongside
a cross-hash-seed digest comparison and the default-config identity
gate.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import TINY, cache_tiering, check_identity
from repro.experiments.report import MIN_PREFETCH_SAMPLES

pytestmark = pytest.mark.cache

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def report():
    return cache_tiering(TINY)


def leg(report, workload, config):
    for row in report.rows:
        if row[0] == workload and row[1] == config:
            return row
    raise AssertionError(f"missing row {workload}/{config}")


def cache_line(report, label):
    for line in report.cache_lines:
        if line.startswith(f"{label}: chunk cache"):
            return line
    raise AssertionError(f"missing cache line for {label}")


def test_report_verified(report):
    # ``verified`` folds in data verification of every leg AND the
    # acceptance gates (randwrite improves, streaming within budget).
    assert report.verified


def test_full_hierarchy_beats_lru_on_randwrite(report):
    base = leg(report, "randwrite", "lru")
    full = leg(report, "randwrite", "arc+l2+pf")
    assert float(full[4]) > float(base[4])  # demand hit rate up
    assert float(full[8]) < float(base[8])  # demand-fill latency down
    assert full[2] < base[2]  # virtual time down

    # The improvement is the tier absorbing DRAM misses, not an
    # accounting artifact: demand lookups are identical across legs
    # (the "(hits/lookups)" fraction in each leg's cache line).
    lookups = re.compile(r"chunk cache [\d.]+% hits \(\d+/(\d+)\)")
    base_total = lookups.search(cache_line(report, "randwrite/lru")).group(1)
    full_line = cache_line(report, "randwrite/arc+l2+pf")
    assert lookups.search(full_line).group(1) == base_total
    assert "local tier" in full_line  # L2 hits actually happened


def test_streaming_legs_within_regression_budget(report):
    for workload in ("STREAM", "MM", "checkpoint"):
        base = leg(report, workload, "lru")
        for config in ("arc", "lru+l2", "arc+l2+pf"):
            row = leg(report, workload, config)
            assert row[2] <= base[2] * 1.02, (workload, config)


def test_adaptive_prefetch_shuts_off_on_randwrite(report):
    # Random access never confirms a run, so the detector stays quiet:
    # at most a handful of prefetches (the verify pass has a short
    # sequential tail), where a fixed window would fire on every read.
    line = cache_line(report, "randwrite/arc+l2+pf")
    match = re.search(
        r"prefetch accuracy [\d.]+% \(\d+/(\d+)\)"
        r"|prefetches \d+/(\d+)",
        line,
    )
    issued = int(match.group(1) or match.group(2)) if match else 0
    assert issued <= 5, line
    # With fewer than MIN_PREFETCH_SAMPLES issued, the report must not
    # print a percentage: one dead readahead is not a 0% accuracy rate.
    if 0 < issued < MIN_PREFETCH_SAMPLES:
        assert "prefetch accuracy" not in line, line
        assert leg(report, "randwrite", "arc+l2+pf")[6] == "-"


def test_digest_stable_across_repeats(report):
    assert cache_tiering(TINY).digest() == report.digest()


def test_digest_identical_serial_vs_parallel():
    identical, pairs = check_identity(["cache_tiering"], TINY, jobs=2)
    assert identical, pairs


HASHSEED_SCRIPT = (
    "from repro.experiments import TINY, cache_tiering; "
    "print(cache_tiering(TINY).digest())"
)


def test_digest_identical_across_hash_seeds(report):
    digests = set()
    for seed in ("0", "1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-c", HASHSEED_SCRIPT],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            check=True,
        )
        digests.add(result.stdout.strip())
    assert digests == {report.digest()}
