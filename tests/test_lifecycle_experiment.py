"""The checkpoint-lifecycle experiment: verified outcomes, digest stability.

Marked ``lifecycle`` (excluded from the default tier-1 run, like
``faults``): the ten legs each run a checkpoint loop with GC, crash
injection, and cold restarts, so this file costs noticeably more wall
time than the unit tests.  CI runs it in a dedicated job alongside a
two-process PYTHONHASHSEED digest comparison.
"""

import pytest

from repro.experiments import TINY, ckpt_lifecycle

pytestmark = pytest.mark.lifecycle


def test_lifecycle_report_verified_and_digest_stable():
    first = ckpt_lifecycle(TINY)
    assert first.verified

    legs = {(row[0], row[1], row[2]): row for row in first.rows}
    # Baseline chains: every mode commits, restores, and GC reclaims.
    for mode in ("full", "incremental", "async"):
        for r in (1, 2):
            row = legs[(mode, r, "none")]
            assert row[3] == "ok"

    # Incremental and async chains write strictly less than full copies.
    written = {(row[0], row[1]): row[6] for row in first.rows if row[2] == "none"}
    for r in (1, 2):
        assert written[("incremental", r)] < written[("full", r)]
        assert written[("async", r)] < written[("full", r)]

    # The r=1 mid-restore crash fails with the typed error, not a hang.
    (restore_crash,) = [
        row for row in first.rows if row[3] == "RestoreError"
    ]
    assert restore_crash[1] == 1

    # Identical seed + identical FaultPlan => identical digest.
    second = ckpt_lifecycle(TINY)
    assert second.digest() == first.digest()
