"""Property tests for the traffic subsystem's schedule construction.

The contract under test (``repro/traffic/arrivals.py``): schedules are
pure functions of their seed — bit-identical across interpreter
invocations with different ``PYTHONHASHSEED`` values and indifferent to
the ``--shards`` fan-out knob — and the per-client streams merge into
one globally time-ordered sequence with deterministic tie-breaking.
These are the invariants that let ``slo_traffic`` digest-pin its
results like every other experiment.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NVMallocError
from repro.traffic import (
    DeterministicProcess,
    MMPPProcess,
    ParetoSizes,
    PoissonProcess,
    RequestRecord,
    ZipfKeys,
    build_schedule,
    summarize,
    window_summary,
)
from repro.traffic.arrivals import OP_CKPT, OP_READ, OP_WRITE

REPO_ROOT = Path(__file__).resolve().parent.parent

PROCESSES = [PoissonProcess(), DeterministicProcess(), MMPPProcess()]


# ----------------------------------------------------------------------
# Determinism across interpreters, hash seeds, and fan-out knobs
# ----------------------------------------------------------------------
HASHSEED_SCRIPT = (
    "from repro.traffic import build_schedule, MMPPProcess; "
    "print(build_schedule(99, 13, 7).digest()); "
    "print(build_schedule(99, 13, 7, process=MMPPProcess(), "
    "checkpoint_fraction=0.1).digest())"
)


def test_schedule_bit_identical_across_hash_seeds():
    expected = "\n".join(
        [
            build_schedule(99, 13, 7).digest(),
            build_schedule(
                99, 13, 7, process=MMPPProcess(), checkpoint_fraction=0.1
            ).digest(),
        ]
    )
    for seed in ("0", "1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-c", HASHSEED_SCRIPT],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            check=True,
        )
        assert result.stdout.strip() == expected, f"PYTHONHASHSEED={seed}"


def test_schedule_ignores_repro_shards_env(monkeypatch):
    """The --shards knob (via $REPRO_SHARDS) is digest-neutral here too."""
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    baseline = build_schedule(5, 8, 4).digest()
    monkeypatch.setenv("REPRO_SHARDS", "3")
    assert build_schedule(5, 8, 4).digest() == baseline


@pytest.mark.parametrize("process", PROCESSES, ids=lambda p: type(p).__name__)
def test_same_seed_same_schedule_different_seed_differs(process):
    a = build_schedule(7, 6, 5, process=process)
    b = build_schedule(7, 6, 5, process=process)
    c = build_schedule(8, 6, 5, process=process)
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()


# ----------------------------------------------------------------------
# Global time order of the merged stream
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    num_clients=st.integers(min_value=1, max_value=20),
    per_client=st.integers(min_value=1, max_value=12),
    which=st.integers(min_value=0, max_value=len(PROCESSES) - 1),
)
def test_merged_stream_globally_time_ordered(
    seed, num_clients, per_client, which
):
    schedule = build_schedule(
        seed, num_clients, per_client, process=PROCESSES[which]
    )
    assert len(schedule) == num_clients * per_client
    times = schedule.times
    assert np.all(np.diff(times) >= 0.0), "arrivals out of order"
    assert np.all(times > 0.0)
    # Ties break by (client, sequence): within one timestamp the client
    # ids are non-decreasing, so the merge order never depends on the
    # sort's internals.
    for i in np.flatnonzero(np.diff(times) == 0.0):
        assert schedule.clients[i] <= schedule.clients[i + 1]
    # Every client contributed exactly its share.
    counts = np.bincount(schedule.clients, minlength=num_clients)
    assert np.all(counts == per_client)
    # Per-client arrivals stay strictly increasing after the merge.
    for client in range(num_clients):
        own = times[schedule.clients == client]
        assert np.all(np.diff(own) > 0.0)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rate=st.floats(min_value=0.25, max_value=1000.0),
)
def test_at_rate_scales_only_the_clock(seed, rate):
    unit = build_schedule(seed, 5, 6)
    scaled = unit.at_rate(rate)
    assert np.array_equal(scaled.clients, unit.clients)
    assert np.array_equal(scaled.keys, unit.keys)
    assert np.array_equal(scaled.sizes, unit.sizes)
    assert np.array_equal(scaled.ops, unit.ops)
    assert np.allclose(scaled.times * rate, unit.times)
    # Order (and hence the request sequence) is preserved exactly.
    assert np.all(np.diff(scaled.times) >= 0.0)


# ----------------------------------------------------------------------
# Sampler ranges and mix fractions
# ----------------------------------------------------------------------
def test_pareto_sizes_bounded_and_heavy_tailed():
    rng = np.random.default_rng(3)
    sampler = ParetoSizes(alpha=1.3, lo=256, hi=64 * 1024)
    sizes = sampler.sample(rng, 20_000)
    assert sizes.dtype == np.int64
    assert int(sizes.min()) >= sampler.lo
    assert int(sizes.max()) <= sampler.hi
    # Heavy tail: the mean sits well above the median.
    assert float(sizes.mean()) > float(np.median(sizes)) * 1.5


def test_zipf_keys_bounded_and_skewed():
    rng = np.random.default_rng(4)
    sampler = ZipfKeys(num_keys=64, s=1.1)
    draws = sampler.sample(rng, 20_000)
    assert int(draws.min()) >= 0
    assert int(draws.max()) < sampler.num_keys
    counts = np.bincount(draws, minlength=sampler.num_keys)
    assert counts[0] == counts.max()  # the hottest key is key 0
    assert counts[0] > 4 * counts[sampler.num_keys // 2]


def test_mmpp_preserves_nominal_mean_rate():
    rng = np.random.default_rng(5)
    gaps = MMPPProcess(rate=1.0).interarrivals(rng, 200_000)
    assert abs(float(gaps.mean()) - 1.0) < 0.05


def test_operation_mix_matches_fractions():
    schedule = build_schedule(
        11, 100, 50, read_fraction=0.6, checkpoint_fraction=0.1
    )
    fractions = np.bincount(schedule.ops, minlength=3) / len(schedule)
    assert abs(fractions[OP_READ] - 0.6) < 0.03
    assert abs(fractions[OP_CKPT] - 0.1) < 0.03
    assert abs(fractions[OP_WRITE] - 0.3) < 0.03


@pytest.mark.parametrize(
    "bad",
    [
        lambda: build_schedule(1, 0, 4),
        lambda: build_schedule(1, 4, 0),
        lambda: build_schedule(1, 4, 4, read_fraction=1.2),
        lambda: build_schedule(
            1, 4, 4, read_fraction=0.8, checkpoint_fraction=0.3
        ),
        lambda: build_schedule(1, 4, 4).at_rate(0.0),
        lambda: PoissonProcess(rate=-1.0).interarrivals(
            np.random.default_rng(0), 4
        ),
        lambda: ZipfKeys(num_keys=0).sample(np.random.default_rng(0), 4),
        lambda: ParetoSizes(lo=1024, hi=256).sample(
            np.random.default_rng(0), 4
        ),
    ],
)
def test_invalid_parameters_raise_typed_errors(bad):
    with pytest.raises(NVMallocError):
        bad()


# ----------------------------------------------------------------------
# SLO folds
# ----------------------------------------------------------------------
def _record(arrival, latency, *, ok=True):
    return RequestRecord(
        client=0, op=OP_READ, arrival=arrival,
        completion=arrival + latency, ok=ok,
        error=None if ok else "StoreError",
    )


def test_summarize_percentiles_and_attainment():
    records = [_record(i * 0.1, 0.001 * (i + 1)) for i in range(100)]
    summary = summarize(records, slo_target=0.050)
    assert summary.count == 100 and summary.ok == 100
    assert summary.p50 == pytest.approx(0.051)
    assert summary.p99 == pytest.approx(0.100)
    assert summary.max_latency == pytest.approx(0.100)
    assert summary.within_slo == 50
    assert summary.attainment == pytest.approx(0.5)
    # Errors count against attainment but not against throughput's ok.
    records[0] = _record(0.0, 0.001, ok=False)
    failed = summarize(records, slo_target=0.050)
    assert failed.errors == 1
    assert failed.within_slo == 49


def test_window_summary_restricts_to_arrival_window():
    records = [_record(float(i), 0.01) for i in range(10)]
    window = window_summary(records, 3.0, 7.0, slo_target=1.0)
    assert window.count == 4  # arrivals 3, 4, 5, 6
    assert window.duration == pytest.approx(4.0)


def test_empty_fold_is_all_zeros_not_a_crash():
    summary = summarize([], slo_target=0.1)
    assert summary.count == 0
    assert summary.attainment == 0.0
    assert summary.goodput == 0.0
    assert summary.throughput == 0.0


# ----------------------------------------------------------------------
# Report cells: low-sample guards (mirrors MIN_PREFETCH_SAMPLES)
# ----------------------------------------------------------------------
def test_rate_and_attainment_cells_guard_low_samples():
    from repro.experiments.report import (
        MIN_RATE_SAMPLES,
        attainment_cell,
        rate_cell,
    )

    # Too few samples (or an empty window): raw counts, never a rate
    # extrapolated from near-zero virtual seconds.
    assert rate_cell(3, 0.5) == "n=3"
    assert rate_cell(100, 0.0) == "n=100"
    assert rate_cell(100, 0.5, samples=MIN_RATE_SAMPLES - 1) == "n=100"
    assert rate_cell(100, 0.5) == "200.0"

    assert attainment_cell(0, 0) == "-"
    assert attainment_cell(2, MIN_RATE_SAMPLES - 1) == f"2/{MIN_RATE_SAMPLES - 1}"
    assert attainment_cell(9, 10) == "90.0"
