"""Tests for the engine's Timeout free list (see Engine.timeout).

Processed timeouts are parked on ``Engine._timeout_pool`` and recycled on
the next ``timeout()`` call — but only when the pool holds the *last*
reference (``sys.getrefcount == 2`` gate), so a timeout someone still
holds can never be mutated behind their back.  These tests pin both
halves: reuse actually happens, and reuse never leaks stale state.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_pool_reuse_is_real_and_value_fresh() -> None:
    """A dropped, processed timeout is recycled (same object identity)
    and carries only the new value."""
    engine = Engine()

    def proc():
        t1 = engine.timeout(1.0, value="a")
        i1 = id(t1)
        assert (yield t1) == "a"
        del t1  # the pool now holds the only reference
        # t1 is parked *after* its dispatch completes, which is after
        # this resume — so t2 cannot be t1's recycling yet.
        t2 = engine.timeout(1.0, value="b")
        assert (yield t2) == "b"
        del t2
        # By now t1 sits in the pool (LIFO below t2's later parking):
        # this allocation must recycle it, with the fresh value only.
        t3 = engine.timeout(1.0, value="c")
        assert id(t3) == i1
        assert t3.value == "c"
        assert (yield t3) == "c"
        return "done"

    assert engine.run(engine.process(proc())) == "done"
    assert engine._timeout_pool  # parked for the next run


def test_held_timeouts_keep_stable_values_across_reuse() -> None:
    """Holding a reference blocks recycling: the refcount gate must skip
    held timeouts, so their value/ok never change underneath the holder."""
    engine = Engine()
    held = []

    def proc():
        for i in range(50):
            t = engine.timeout(0.5, value=("token", i))
            assert (yield t) == ("token", i)
            if i % 3 == 0:
                held.append((t, ("token", i)))

    engine.run(engine.process(proc()))
    for timeout, token in held:
        assert timeout.value == token
        assert timeout.ok


def test_recycled_timeout_never_runs_stale_callbacks() -> None:
    """Callbacks registered on a recycled timeout's previous life must not
    fire again on its next life."""
    engine = Engine()
    fired: list[str] = []

    def proc():
        t1 = engine.timeout(1.0)
        t1.add_callback(lambda _e: fired.append("extra"))
        yield t1
        del t1
        yield engine.timeout(1.0)  # parks t1
        for _ in range(5):  # recycles t1 (and successors) repeatedly
            yield engine.timeout(1.0)

    engine.run(engine.process(proc()))
    assert fired == ["extra"]


def test_negative_delay_on_pooled_path_raises_and_keeps_pool_sane() -> None:
    engine = Engine()

    def proc():
        yield engine.timeout(1.0)  # populate the pool after dispatch
        yield engine.timeout(1.0)

    engine.run(engine.process(proc()))
    assert engine._timeout_pool
    size = len(engine._timeout_pool)
    for _ in range(3):
        try:
            engine.timeout(-1.0)
        except SimulationError:
            pass
        else:  # pragma: no cover - the raise is the contract
            raise AssertionError("negative delay must raise")
    # The candidate it popped went back; nothing leaked or duplicated.
    assert len(engine._timeout_pool) == size


# One step: (delay, hold?) — zero delays exercise the ring path, ties
# exercise same-instant interleaving of many processes' timeouts.
_step = st.tuples(st.sampled_from([0.0, 0.0, 0.25, 0.5, 1.0]), st.booleans())


@settings(max_examples=30, deadline=None)
@given(scripts=st.lists(
    st.lists(_step, min_size=1, max_size=25), min_size=1, max_size=6,
))
def test_timeout_pool_fuzz_never_leaks(scripts) -> None:
    """Concurrent processes churning pooled timeouts: every received
    value is the one scheduled, and held timeouts stay frozen."""
    engine = Engine()
    held = []

    def proc(pid: int, script):
        for step, (delay, hold) in enumerate(script):
            token = (pid, step)
            t = engine.timeout(delay, value=token)
            # A stale-value leak (recycling a timeout someone else's
            # schedule still owns) would surface right here.
            assert (yield t) == token
            if hold:
                held.append((t, token))

    processes = [
        engine.process(proc(pid, script))
        for pid, script in enumerate(scripts)
    ]
    engine.run()
    assert all(p.processed for p in processes)
    for timeout, token in held:
        assert timeout.value == token
    total = sum(len(script) for script in scripts)
    if total - len(held) > 4:
        # Enough unheld churn guarantees the free list actually engaged.
        assert engine._timeout_pool
