"""Parallel-vs-serial determinism and failure isolation for the orchestrator."""

import pytest

from repro.experiments import TINY
from repro.experiments.parallel import (
    EXPERIMENTS,
    Orchestrator,
    check_identity,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.resultcache import ResultCache


def _boom(scale=None):
    raise RuntimeError("injected experiment failure")


class TestParallelDeterminism:
    NAMES = ["table1", "checkpoint", "cost"]

    def test_jobs2_digests_match_serial(self):
        identical, pairs = check_identity(self.NAMES, TINY, jobs=2)
        assert identical, pairs
        for serial_digest, parallel_digest in pairs.values():
            assert serial_digest is not None
            assert serial_digest == parallel_digest

    def test_parallel_outcomes_in_input_order(self):
        result = Orchestrator(jobs=2, cache=None).run(self.NAMES, TINY)
        assert [o.name for o in result.outcomes] == self.NAMES
        assert not result.failed

    def test_parallel_reports_render_like_serial(self):
        serial = Orchestrator(jobs=1, cache=None).run(self.NAMES, TINY)
        parallel = Orchestrator(jobs=2, cache=None).run(self.NAMES, TINY)
        for s, p in zip(serial.outcomes, parallel.outcomes):
            assert s.report.render() == p.report.render()

    def test_parallel_populates_cache_for_serial_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = Orchestrator(jobs=2, cache=cache).run(self.NAMES, TINY)
        warm = Orchestrator(jobs=1, cache=ResultCache(tmp_path)).run(
            self.NAMES, TINY
        )
        assert warm.cache_hits == len(self.NAMES)
        assert warm.digests == cold.digests


class TestFailureIsolation:
    def test_one_raising_experiment_does_not_sink_the_rest(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "boom", (_boom, "always raises"))
        names = ["table1", "boom", "checkpoint"]
        result = Orchestrator(jobs=2, cache=None).run(names, TINY)

        assert result.failed == ["boom"]
        by_name = {o.name: o for o in result.outcomes}
        assert "injected experiment failure" in by_name["boom"].error
        assert by_name["boom"].report is None
        for survivor in ("table1", "checkpoint"):
            assert by_name[survivor].ok
            assert by_name[survivor].digest is not None

    def test_serial_path_reports_failure_the_same_way(self, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "boom", (_boom, "always raises"))
        result = Orchestrator(jobs=1, cache=None).run(
            ["boom", "checkpoint"], TINY
        )
        assert result.failed == ["boom"]
        assert result.outcomes[1].ok

    def test_failures_are_never_cached(self, tmp_path, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "boom", (_boom, "always raises"))
        cache = ResultCache(tmp_path)
        Orchestrator(jobs=1, cache=cache).run(["boom"], TINY)
        rerun = Orchestrator(jobs=1, cache=cache).run(["boom"], TINY)
        assert rerun.cache_hits == 0
        assert rerun.failed == ["boom"]


class TestUnverifiedReports:
    def test_unverified_report_fails_but_is_returned(self, monkeypatch):
        def unverified(scale=None):
            report = ExperimentReport(
                experiment="U", title="u", headers=["a"], verified=False
            )
            report.add_row("x")
            return report

        monkeypatch.setitem(EXPERIMENTS, "unverified", (unverified, "fails claims"))
        result = Orchestrator(jobs=1, cache=None).run(["unverified"], TINY)
        assert result.failed == ["unverified"]
        assert result.outcomes[0].error is None
        assert result.outcomes[0].report is not None
