"""Cross-subsystem integration scenarios.

These exercise multiple features together, the way a real deployment
would: job pipelines sharing persistent variables, checkpoint + drain +
restart across "jobs", failure injection during allocation, and device
wear accounting under application traffic.
"""

import numpy as np
import pytest

from repro.core import NVMalloc
from repro.errors import BenefactorDownError
from repro.experiments.configs import TINY
from repro.experiments.runner import Testbed
from repro.pfs import ParallelFileSystem
from repro.store import CHUNK_SIZE
from repro.util.units import KiB, MiB
from tests.conftest import run


class TestWorkflowPipeline:
    """Producer job -> persistent NVM variable -> consumer job (the
    paper's workflow / in-situ analysis vision, §III-C)."""

    def test_two_phase_pipeline(self, engine, small_cluster, store):
        producer = NVMalloc(
            small_cluster.node(1), store,
            fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
        )
        consumer = NVMalloc(
            small_cluster.node(3), store,
            fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
        )

        def producer_job():
            field = yield from producer.ssdmalloc_array(
                (64, 64), np.float64, persistent_name="pipeline/field"
            )
            data = np.outer(np.arange(64.0), np.ones(64))
            for r in range(64):
                yield from field.write_row(r, data[r])
            yield from producer.ssdfree(field.variable)
            return data

        def consumer_job():
            var = yield from consumer.open_persistent("pipeline/field")
            from repro.core.variable import NVMArray

            field = NVMArray(var, (64, 64), np.dtype(np.float64))
            total = 0.0
            for r in range(64):
                row = yield from field.read_row(r)
                total += row.sum()
            yield from consumer.ssdfree(var)
            yield from consumer.unlink_persistent("pipeline/field")
            return total

        def pipeline():
            data = yield from producer_job()
            total = yield from consumer_job()
            return data.sum(), total

        expected, measured = run(engine, pipeline())
        assert measured == expected


class TestCheckpointDrainRestart:
    def test_checkpoint_drain_restore_chain(self, engine, small_cluster, store):
        lib = NVMalloc(
            small_cluster.node(1), store,
            fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
        )
        pfs = ParallelFileSystem(engine, small_cluster.network, num_servers=2)

        def app():
            var = yield from lib.ssdmalloc(2 * CHUNK_SIZE)
            # Three timesteps with mutation + checkpoint + background drain.
            drains = []
            for t in range(3):
                yield from var.write(0, f"epoch-{t}".encode())
                yield from lib.ssdcheckpoint("app", t, str(t).encode(), [("v", var)])
                drains.append(
                    engine.process(lib.drain_checkpoint_to_pfs("app", t, pfs))
                )
            for drain in drains:
                yield drain
            # Every drained copy on the PFS holds its epoch's bytes.
            ok = True
            for t in range(3):
                record = lib.checkpoint_record("app", t)
                raw = pfs.read_raw(f"scratch/checkpoints/app.{t}")
                sec = record.section("v")
                if raw[sec.offset : sec.offset + 7] != f"epoch-{t}".encode():
                    ok = False
            yield from lib.ssdfree(var)
            return ok

        assert run(engine, app())


class TestFailureDuringOperation:
    def test_crash_midway_breaks_data_path_cleanly(self, engine, small_cluster, store):
        lib = NVMalloc(
            small_cluster.node(1), store,
            fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
        )

        def app():
            var = yield from lib.ssdmalloc(8 * CHUNK_SIZE)
            yield from var.write(0, b"before the failure")
            yield from var.region.msync()
            yield from lib.mount.cache.flush_path(var.backing_path)
            # Kill the benefactor that owns chunk 0.
            chunk_id, owner = store.resolve_chunk(var.backing_path, 0)
            owner.crash()
            lib.mount.cache.invalidate_path(var.backing_path)
            yield from lib.pagecache.drop_path(var.backing_path, sync=False)
            with pytest.raises(BenefactorDownError):
                yield from var.read(0, 10)
            return True

        assert run(engine, app())


class TestWearUnderApplicationTraffic:
    def test_ftl_wear_accumulates_through_the_stack(self):
        """Application writes propagate down to FTL wear accounting."""
        testbed = Testbed(TINY.with_(cpu_slowdown=1.0))
        job = testbed.job(1, 1, 1)
        ctx = job.rank_context(0)

        def app():
            assert ctx.nvmalloc is not None
            var = yield from ctx.nvmalloc.ssdmalloc(4 * CHUNK_SIZE)
            for round_ in range(4):
                for off in range(0, 4 * CHUNK_SIZE, 4096):
                    yield from var.write(off, bytes([round_ + 1]) * 4096)
                yield from var.region.msync()
                yield from ctx.nvmalloc.mount.cache.flush_path(var.backing_path)
            yield from ctx.nvmalloc.ssdfree(var)
            return True

        assert job.engine.run(job.engine.process(app()))
        ssd = job.benefactors[0].ssd
        report = ssd.wear_report()
        # 4 rounds x 1 MiB = 4 MiB = 1024 flash pages at minimum.
        assert report["host_pages_written"] >= 1024
        assert report["write_amplification"] >= 1.0

    def test_trim_on_free_returns_flash(self):
        testbed = Testbed(TINY.with_(cpu_slowdown=1.0))
        job = testbed.job(1, 1, 1)
        ctx = job.rank_context(0)
        ssd = job.benefactors[0].ssd

        def app():
            assert ctx.nvmalloc is not None
            var = yield from ctx.nvmalloc.ssdmalloc(4 * CHUNK_SIZE)
            yield from var.write(0, bytes(4 * CHUNK_SIZE))
            yield from var.region.msync()
            yield from ctx.nvmalloc.mount.cache.flush_path(var.backing_path)
            mapped_before = ssd.ftl.mapped_pages()
            yield from ctx.nvmalloc.ssdfree(var)
            return mapped_before

        mapped_before = job.engine.run(job.engine.process(app()))
        assert mapped_before > 0
        assert ssd.ftl.mapped_pages() == 0  # ssdfree TRIMmed everything


class TestMultipleJobsSequentially:
    def test_store_state_survives_job_teardown(self):
        """Two jobs on one cluster share the same aggregate store state
        via persistent variables (a per-center deployment)."""
        testbed = Testbed(TINY.with_(cpu_slowdown=1.0))
        job1 = testbed.job(2, 2, 2)
        ctx = job1.rank_context(0)

        def first_job(ctx):
            assert ctx.nvmalloc is not None
            var = yield from ctx.nvmalloc.ssdmalloc(
                CHUNK_SIZE, persistent_name="center/dataset"
            )
            yield from var.write(0, b"cross-job data")
            yield from ctx.nvmalloc.ssdfree(var)
            return True

        assert job1.engine.run(job1.engine.process(first_job(ctx)))

        # A second "job" (new NVMalloc context, different node) reads it.
        lib2 = NVMalloc(
            testbed.cluster.node(1), job1.manager,
            fuse_cache_bytes=512 * KiB, page_cache_bytes=256 * KiB,
        )

        def second_job():
            var = yield from lib2.open_persistent("center/dataset")
            data = yield from var.read(0, 14)
            yield from lib2.ssdfree(var)
            yield from lib2.unlink_persistent("center/dataset")
            return data

        out = testbed.engine.run(testbed.engine.process(second_job()))
        assert out == b"cross-job data"
