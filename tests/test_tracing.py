"""Tests for the virtual-time tracing subsystem (``repro.obs``)."""

import json

import pytest

from repro import obs
from repro.obs.critical import critical_path
from repro.obs.export import (
    chrome_trace,
    latency_summary,
    span_tree,
    write_chrome_trace,
)
from repro.obs.tracer import Span, Tracer
from repro.experiments.configs import TINY
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import Testbed
from repro.sim.engine import Engine
from repro.workloads.checkpoint_wl import (
    CheckpointWorkloadConfig,
    run_checkpoint_workload,
)
from repro.workloads.stream import StreamConfig, StreamKernel, run_stream


def make_span(trace, sid, parent, layer, name, start, end):
    span = Span()
    span.trace_id = trace
    span.span_id = sid
    span.parent_id = parent
    span.layer = layer
    span.name = name
    span.start = start
    span.end = end
    span.args = None
    span._stack = []
    return span


@pytest.fixture
def traced():
    """Force tracing on for testbeds built inside the test."""
    was = obs.enabled()
    obs.enable(True)
    yield
    obs.enable(was)
    obs.clear_collected()


class TestTracer:
    def test_begin_end_nesting(self):
        engine = Engine()
        tracer = Tracer(engine)
        outer = tracer.begin("a", "outer")
        inner = tracer.begin("b", "inner", k=1)
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert tracer.current() is inner
        tracer.end(inner)
        assert tracer.current() is outer
        tracer.end(outer)
        assert tracer.current() is None
        assert tracer.roots() == [outer]

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer(Engine())
        a = tracer.begin("x", "a")
        tracer.end(a)
        b = tracer.begin("x", "b")
        tracer.end(b)
        assert a.trace_id != b.trace_id

    def test_end_merges_args(self):
        tracer = Tracer(Engine())
        span = tracer.begin("x", "op", path="/f")
        tracer.end(span, outcome="hit")
        assert span.args == {"path": "/f", "outcome": "hit"}

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(Engine(), max_spans=2)
        for _ in range(5):
            tracer.end(tracer.begin("x", "op"))
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_spans_read_virtual_clock(self):
        engine = Engine()
        tracer = engine.tracer = Tracer(engine)

        def work():
            span = tracer.begin("x", "op")
            yield engine.timeout(2.5)
            tracer.end(span)
            return span

        span = engine.run(engine.process(work()))
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5

    def test_process_forks_creator_span(self):
        """A process created under an open span nests inside it."""
        engine = Engine()
        tracer = engine.tracer = Tracer(engine)

        def child():
            inner = tracer.begin("worker", "step")
            yield engine.timeout(1.0)
            tracer.end(inner)

        root = tracer.begin("app", "run")
        proc = engine.process(child())
        engine.run(proc)
        tracer.end(root)
        (step,) = [s for s in tracer.spans if s.name == "step"]
        assert step.trace_id == root.trace_id
        assert step.parent_id == root.span_id

    def test_interleaved_processes_keep_separate_stacks(self):
        """Two concurrent processes cannot corrupt each other's nesting."""
        engine = Engine()
        tracer = engine.tracer = Tracer(engine)

        def worker(layer, delay):
            span = tracer.begin(layer, "outer")
            yield engine.timeout(delay)
            inner = tracer.begin(layer, "inner")
            assert inner.parent_id == span.span_id, layer
            yield engine.timeout(delay)
            tracer.end(inner)
            tracer.end(span)

        engine.process(worker("p1", 1.0))
        engine.process(worker("p2", 1.5))
        engine.run()
        by_layer = {(s.layer, s.name): s for s in tracer.spans}
        assert by_layer[("p1", "inner")].parent_id == by_layer[("p1", "outer")].span_id
        assert by_layer[("p2", "inner")].parent_id == by_layer[("p2", "outer")].span_id
        # Each root started its own trace.
        assert by_layer[("p1", "outer")].trace_id != by_layer[("p2", "outer")].trace_id

    def test_wrap_runs_and_returns(self):
        engine = Engine()
        tracer = engine.tracer = Tracer(engine)

        def inner():
            yield engine.timeout(1.0)
            return 42

        def outer():
            value = yield from tracer.wrap("lib", "call", inner(), arg=7)
            return value

        assert engine.run(engine.process(outer())) == 42
        (span,) = tracer.spans
        assert (span.layer, span.name) == ("lib", "call")
        assert span.args == {"arg": 7}
        assert span.duration == 1.0

    def test_flow_link_pairs_send_with_recv(self):
        engine = Engine()
        tracer = engine.tracer = Tracer(engine)

        def hop():
            yield engine.timeout(0.5)

        def main():
            yield from tracer.wrap_send("comm", "send", hop(), ("chan",))
            yield from tracer.wrap_recv("comm", "recv", hop(), ("chan",))

        engine.run(engine.process(main()))
        send = next(s for s in tracer.spans if s.name == "send")
        recv = next(s for s in tracer.spans if s.name == "recv")
        assert recv.args["link_trace"] == send.trace_id
        assert recv.args["link_span"] == send.span_id


class TestCriticalPath:
    def test_partition_sums_to_makespan(self):
        spans = [
            make_span(1, 1, None, "app", "run", 0.0, 10.0),
            make_span(1, 2, 1, "fuse", "fetch", 2.0, 8.0),
            make_span(1, 3, 2, "net", "xfer", 3.0, 8.0),
        ]
        cp = critical_path(spans)
        assert cp.makespan == 10.0
        assert cp.layer_seconds == {"app": 4.0, "fuse": 1.0, "net": 5.0}
        assert sum(cp.layer_seconds.values()) == pytest.approx(cp.makespan)
        assert [s.span_id for s in cp.chain] == [1, 2, 3]

    def test_latest_finisher_bounds_concurrent_children(self):
        # Two "ranks" under one root; the later finisher is the chain.
        spans = [
            make_span(1, 1, None, "app", "run", 0.0, 10.0),
            make_span(1, 2, 1, "rank", "r0", 0.0, 6.0),
            make_span(1, 3, 1, "rank", "r1", 0.0, 9.0),
        ]
        cp = critical_path(spans)
        assert cp.layer_seconds["rank"] == 9.0
        assert cp.layer_seconds["app"] == 1.0
        assert [s.span_id for s in cp.chain] == [1, 3]

    def test_explicit_root_and_no_root_error(self):
        spans = [make_span(1, 1, None, "a", "x", 0.0, 1.0)]
        assert critical_path(spans, root=spans[0]).root is spans[0]
        with pytest.raises(ValueError):
            critical_path([make_span(1, 2, 1, "a", "child", 0.0, 1.0)])

    def test_table_lines_end_with_full_total(self):
        spans = [
            make_span(1, 1, None, "app", "run", 0.0, 4.0),
            make_span(1, 2, 1, "net", "xfer", 1.0, 3.0),
        ]
        lines = critical_path(spans).table_lines()
        assert "100.0%" in lines[-1]
        assert "total" in lines[-1]


class TestExport:
    def test_latency_summary_percentiles(self):
        spans = [
            make_span(1, i, None, "net", "xfer", 0.0, float(i))
            for i in range(1, 101)
        ]
        stats = latency_summary(spans)[("net", "xfer")]
        assert stats["count"] == 100
        assert stats["p50"] == pytest.approx(51.0)
        assert stats["max"] == 100.0

    def test_chrome_trace_shape(self, tmp_path):
        spans = [
            make_span(1, 1, None, "app", "run", 0.0, 1.0),
            make_span(1, 2, 1, "net", "xfer", 0.25, 0.75),
        ]
        tracer = Tracer(Engine())
        tracer.spans = spans
        events = chrome_trace([("lbl", tracer)])
        x = [e for e in events if e["ph"] == "X"]
        assert len(x) == 2
        assert x[0]["ts"] == 0.0 and x[0]["dur"] == 1e6
        assert x[1]["args"]["parent"] == 1
        meta = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in meta}
        out = tmp_path / "trace.json"
        count = write_chrome_trace(str(out), [("lbl", tracer)])
        loaded = json.loads(out.read_text())
        assert isinstance(loaded, list) and len(loaded) == count

    def test_span_tree_indents_children(self):
        spans = [
            make_span(1, 1, None, "app", "run", 0.0, 1.0),
            make_span(1, 2, 1, "net", "xfer", 0.25, 0.75),
        ]
        text = span_tree(spans)
        lines = text.splitlines()
        assert lines[0].startswith("app.run")
        assert lines[1].startswith("  net.xfer")


class TestReportTraceLines:
    def test_trace_lines_round_trip_but_not_digested(self):
        plain = ExperimentReport("Fig X", "t", ["a"], rows=[[1]])
        traced = ExperimentReport("Fig X", "t", ["a"], rows=[[1]])
        traced.trace_lines = ["where: the time went"]
        assert plain.digest() == traced.digest()
        back = ExperimentReport.from_payload(traced.to_payload())
        assert back.trace_lines == ["where: the time went"]
        assert "where the time went:" in traced.render()
        assert "where the time went:" not in plain.render()

    def test_old_payload_without_trace_lines_loads(self):
        payload = ExperimentReport("Fig X", "t", ["a"]).to_payload()
        payload.pop("trace_lines")
        assert ExperimentReport.from_payload(payload).trace_lines == []


class TestEndToEnd:
    def test_testbed_attaches_tracer_only_when_enabled(self, traced):
        assert Testbed(TINY).engine.tracer is not None
        obs.enable(False)
        assert Testbed(TINY).engine.tracer is None

    def test_traced_stream_single_trace_and_partition(self, traced):
        testbed = Testbed(TINY)
        job = testbed.job(2, 2, 2, remote_ssd=True)
        result = run_stream(
            job,
            StreamConfig(
                elements=TINY.stream_elements,
                kernel=StreamKernel.TRIAD,
                iterations=2,
                placement={"A": "nvm", "B": "dram", "C": "dram"},
            ),
        )
        assert result.verified
        tracer = testbed.engine.tracer
        assert tracer.spans and not tracer.dropped
        root = max(tracer.roots(), key=lambda s: s.duration)
        assert (root.layer, root.name) == ("app", "stream")
        # The whole stack participates in the root's trace.
        layers = {s.layer for s in tracer.by_trace(root.trace_id)}
        assert {"app", "nvmalloc", "mmap", "pagecache", "fuse",
                "store.client", "benefactor", "net"} <= layers
        # Per-layer attribution partitions the root interval exactly.
        analysis = critical_path(tracer.spans, root=root)
        assert sum(analysis.layer_seconds.values()) == pytest.approx(
            analysis.makespan, rel=1e-9
        )

    def test_tracing_preserves_virtual_results(self, traced):
        def run_once():
            testbed = Testbed(TINY)
            job = testbed.job(1, 1, 1)
            result = run_checkpoint_workload(
                job,
                CheckpointWorkloadConfig(
                    variable_bytes=TINY.checkpoint_variable,
                    dram_state_bytes=TINY.checkpoint_dram_state,
                    timesteps=2,
                ),
            )
            return result, testbed

        result_on, testbed_on = run_once()
        obs.enable(False)
        result_off, testbed_off = run_once()
        assert testbed_on.engine.tracer is not None
        assert testbed_off.engine.tracer is None
        assert result_on.elapsed == result_off.elapsed
        assert testbed_on.engine.now == testbed_off.engine.now
        assert (
            testbed_on.cluster.metrics.snapshot()
            == testbed_off.cluster.metrics.snapshot()
        )
