"""Tests for the parallel-file-system substrate."""

import pytest

from repro.errors import StoreError
from repro.pfs import ParallelFileSystem
from repro.sim import Engine
from repro.util.units import KiB, MB, MiB
from tests.conftest import run


@pytest.fixture
def pfs(engine, small_cluster):
    return ParallelFileSystem(
        engine, small_cluster.network, num_servers=2, stripe_size=1 * MiB
    )


class TestNamespace:
    def test_create_and_size(self, pfs):
        pfs.create("/scratch/a", 1000)
        assert pfs.exists("/scratch/a")
        assert pfs.size("/scratch/a") == 1000

    def test_duplicate_rejected(self, pfs):
        pfs.create("/a", 10)
        with pytest.raises(StoreError):
            pfs.create("/a", 10)
        with pytest.raises(StoreError):
            pfs.put_initial("/a", b"x")

    def test_unlink(self, pfs):
        pfs.create("/a", 10)
        pfs.unlink("/a")
        assert not pfs.exists("/a")
        with pytest.raises(StoreError):
            pfs.unlink("/a")

    def test_needs_servers(self, engine, small_cluster):
        with pytest.raises(StoreError):
            ParallelFileSystem(engine, small_cluster.network, num_servers=0)


class TestDataPath:
    def test_roundtrip(self, engine, pfs):
        pfs.create("/f", 4 * MiB)
        payload = bytes(range(256)) * 8192  # 2 MiB crossing a stripe

        def proc():
            yield from pfs.write("node001", "/f", 512 * KiB, payload)
            return (yield from pfs.read("node002", "/f", 512 * KiB, len(payload)))

        assert run(engine, proc()) == payload

    def test_put_initial_readable(self, engine, pfs):
        pfs.put_initial("/f", b"staged before the job")

        def proc():
            return (yield from pfs.read("node000", "/f", 7, 6))

        assert run(engine, proc()) == b"before"

    def test_bounds(self, engine, pfs):
        pfs.create("/f", 100)
        with pytest.raises(StoreError):
            run(engine, pfs.read("node000", "/f", 90, 20))

    def test_striping_spreads_servers(self, engine, pfs):
        pfs.create("/f", 4 * MiB)

        def proc():
            yield from pfs.write("node000", "/f", 0, bytes(4 * MiB))

        run(engine, proc())
        for server in pfs.servers:
            assert server.bytes_written() == 2 * MiB

    def test_aggregate_bandwidth_bound(self, engine, pfs):
        """A large sequential read is bounded by server bandwidth, not
        per-request latency."""
        pfs.create("/f", 8 * MiB)

        def proc():
            start = engine.now
            yield from pfs.read("node000", "/f", 0, 8 * MiB)
            return engine.now - start

        elapsed = run(engine, proc())
        # 2 servers x 120 MB/s striped, but the single client NIC (234
        # MB/s) and request serialization bound it below ideal; just
        # check it is bandwidth-scale, not seek-scale (which would be
        # 8 MiB / 1 MiB stripes * 8 ms = 64 ms of pure seeking).
        floor = 8 * MiB / (240 * MB)
        assert elapsed >= floor
        assert elapsed < 10 * floor

    def test_read_raw_matches(self, engine, pfs):
        pfs.put_initial("/f", b"ground truth")
        assert pfs.read_raw("/f") == b"ground truth"
