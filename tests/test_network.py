"""Tests for the network fabric."""

import pytest

from repro.errors import NetworkError
from repro.network import BONDED_DUAL_GIGE, GIGE, Network
from repro.sim import Engine
from repro.util.units import KiB, MB


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def net(engine):
    network = Network(engine, BONDED_DUAL_GIGE)
    for name in ("a", "b", "c"):
        network.attach(name)
    return network


class TestAttach:
    def test_duplicate_rejected(self, engine):
        net = Network(engine, GIGE)
        net.attach("x")
        with pytest.raises(NetworkError):
            net.attach("x")

    def test_unknown_endpoint(self, net):
        with pytest.raises(NetworkError):
            net.nic("nope")


class TestTransfer:
    def test_time_model(self, engine, net):
        def proc():
            yield from net.transfer("a", "b", 256 * KiB)
            return engine.now

        expected = BONDED_DUAL_GIGE.latency + 256 * KiB / BONDED_DUAL_GIGE.bandwidth
        assert engine.run(engine.process(proc())) == pytest.approx(expected)

    def test_loopback_free(self, engine, net):
        def proc():
            yield from net.transfer("a", "a", 10 * MB)
            return engine.now

        assert engine.run(engine.process(proc())) == 0.0

    def test_negative_rejected(self, engine, net):
        with pytest.raises(NetworkError):
            engine.run(engine.process(net.transfer("a", "b", -1)))

    def test_byte_accounting(self, engine, net):
        def proc():
            yield from net.transfer("a", "b", 1000)
            yield from net.transfer("b", "c", 500)

        engine.run(engine.process(proc()))
        assert net.total_bytes() == 1500
        assert net.metrics.value("network.a.tx.bytes") == 1000
        assert net.metrics.value("network.b.rx.bytes") == 1000
        assert net.metrics.value("network.b.tx.bytes") == 500

    def test_sender_tx_serializes(self, engine, net):
        """Two transfers from the same sender share its TX port."""

        def proc(dst):
            yield from net.transfer("a", dst, 1 * MB)
            return engine.now

        results = engine.run_all(
            [engine.process(proc("b")), engine.process(proc("c"))]
        )
        one = BONDED_DUAL_GIGE.transfer_time(1 * MB)
        assert results[0] == pytest.approx(one)
        assert results[1] == pytest.approx(2 * one)

    def test_disjoint_pairs_run_in_parallel(self, engine, net):
        def proc(src, dst):
            yield from net.transfer(src, dst, 1 * MB)
            return engine.now

        results = engine.run_all(
            [engine.process(proc("a", "b")), engine.process(proc("c", "a"))]
        )
        one = BONDED_DUAL_GIGE.transfer_time(1 * MB)
        assert results[0] == pytest.approx(one)
        assert results[1] == pytest.approx(one)

    def test_receiver_rx_serializes(self, engine, net):
        """Fan-in to one receiver queues at its RX port (the paper's
        R-SSD(8:8:1) pressure point)."""

        def proc(src):
            yield from net.transfer(src, "c", 1 * MB)
            return engine.now

        results = engine.run_all(
            [engine.process(proc("a")), engine.process(proc("b"))]
        )
        one = BONDED_DUAL_GIGE.transfer_time(1 * MB)
        assert sorted(results) == [
            pytest.approx(one),
            pytest.approx(2 * one),
        ]

    def test_no_deadlock_on_crossing_transfers(self, engine, net):
        """a->b and b->a at the same instant must both complete."""

        def proc(src, dst):
            for _ in range(10):
                yield from net.transfer(src, dst, 64 * KiB)
            return True

        results = engine.run_all(
            [engine.process(proc("a", "b")), engine.process(proc("b", "a"))]
        )
        assert results == [True, True]
