"""Determinism: identical runs produce identical virtual timings.

INTERNALS.md promises exact reproducibility — no wall-clock, no unseeded
randomness, FIFO tie-breaking at equal timestamps.  These tests run whole
experiments twice and require bit-identical virtual times.
"""

import numpy as np

from repro.experiments.configs import TINY
from repro.experiments.runner import Testbed
from repro.workloads import (
    CheckpointWorkloadConfig,
    MatmulConfig,
    SortConfig,
    run_checkpoint_workload,
    run_matmul,
    run_quicksort,
)


def test_matmul_is_deterministic():
    def once():
        testbed = Testbed(TINY)
        job = testbed.job(4, 2, 2)
        result = run_matmul(
            job, testbed.pfs,
            MatmulConfig(n=64, tile=16, b_placement="nvm"),
        )
        return result.stage_times, testbed.engine.now

    first_stages, first_now = once()
    second_stages, second_now = once()
    assert first_stages == second_stages  # exact float equality
    assert first_now == second_now


def test_sort_is_deterministic():
    def once():
        testbed = Testbed(TINY.with_(cpu_slowdown=1.0))
        job = testbed.job(2, 2, 2)
        result = run_quicksort(job, testbed.pfs, SortConfig(
            total_elements=1 << 13, mode="hybrid",
            dram_elements_per_rank=512,
        ))
        return result.elapsed

    assert once() == once()


def test_checkpoint_workload_is_deterministic():
    def once():
        testbed = Testbed(TINY.with_(cpu_slowdown=1.0))
        job = testbed.job(1, 2, 2)
        result = run_checkpoint_workload(job, CheckpointWorkloadConfig(
            variable_bytes=1 << 20, dram_state_bytes=1 << 14, timesteps=2,
        ))
        return result.elapsed, tuple(result.cow_chunks_per_step)

    assert once() == once()


def test_concurrent_interleaving_is_deterministic():
    """Even heavily interleaved multi-rank cache traffic replays exactly."""

    def once():
        testbed = Testbed(TINY.with_(cpu_slowdown=1.0))
        job = testbed.job(4, 2, 2)
        times = []

        def worker(ctx):
            assert ctx.nvmalloc is not None
            arr = yield from ctx.nvmalloc.ssdmalloc_array(
                (1 << 14,), np.float64, owner=f"d{ctx.rank}"
            )
            for s in range(0, 1 << 14, 1 << 11):
                yield from arr.write_slice(
                    s, np.arange(s, s + (1 << 11), dtype=np.float64)
                )
            for s in range(0, 1 << 14, 1 << 11):
                got = yield from arr.read_slice(s, s + (1 << 11))
                assert got[0] == s
            yield from ctx.nvmalloc.ssdfree(arr.variable)
            times.append(ctx.engine.now)
            return True

        job.run(worker)
        return tuple(times)

    assert once() == once()
