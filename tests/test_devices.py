"""Tests for device models (specs, base device, DRAM, SSD, HDD)."""

import pytest

from repro.devices import (
    DDR3_1600,
    DEVICE_CATALOG,
    DRAM,
    HDD,
    HDD_7200RPM,
    INTEL_X25E,
    SSD,
    AccessKind,
    DeviceSpec,
    StorageDevice,
)
from repro.errors import CapacityError, DeviceError
from repro.sim import Engine
from repro.util.units import GB, KiB, MB, MiB


@pytest.fixture
def engine():
    return Engine()


class TestDeviceSpec:
    def test_catalog_matches_table1(self):
        x25e = DEVICE_CATALOG["Intel X25-E"]
        assert x25e.read_bw == 250 * MB
        assert x25e.write_bw == 170 * MB
        assert x25e.latency == 75e-6
        assert x25e.capacity == 32 * GB
        assert x25e.cost_usd == 589.0
        dram = DEVICE_CATALOG["DDR3-1600"]
        assert dram.read_bw == 12_800 * MB
        assert dram.cost_usd < 150.01

    def test_paper_dram_flash_ratio(self):
        # "at least 8.53 times lower than DRAM rates" (paper §I).
        iodrive = DEVICE_CATALOG["Fusion IO ioDrive Duo"]
        assert DDR3_1600.read_bw / iodrive.read_bw == pytest.approx(8.53, rel=0.01)

    def test_access_times(self):
        t = INTEL_X25E.read_time(256 * KiB)
        assert t == pytest.approx(75e-6 + 256 * KiB / (250 * MB))
        assert INTEL_X25E.write_time(0) == 75e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", "ssd", "sata", read_bw=0, write_bw=1,
                       latency=0, capacity=1, cost_usd=1)
        with pytest.raises(ValueError):
            DeviceSpec("x", "ssd", "sata", read_bw=1, write_bw=1,
                       latency=-1, capacity=1, cost_usd=1)

    def test_scaled_preserves_everything_else(self):
        small = INTEL_X25E.scaled(capacity=1 * MiB)
        assert small.capacity == 1 * MiB
        assert small.read_bw == INTEL_X25E.read_bw
        assert small.name == INTEL_X25E.name


class TestStorageDevice:
    def test_single_access_time(self, engine):
        dev = StorageDevice(engine, INTEL_X25E)

        def proc():
            yield from dev.read(1 * MB)
            return engine.now

        expected = 75e-6 + 1 * MB / (250 * MB)
        assert engine.run(engine.process(proc())) == pytest.approx(expected)

    def test_contention_queues(self, engine):
        dev = StorageDevice(engine, INTEL_X25E)  # 1 channel

        def proc():
            yield from dev.read(1 * MB)
            return engine.now

        results = engine.run_all([engine.process(proc()) for _ in range(2)])
        one = 75e-6 + 1 * MB / (250 * MB)
        assert results[0] == pytest.approx(one)
        assert results[1] == pytest.approx(2 * one)

    def test_byte_accounting(self, engine):
        dev = StorageDevice(engine, INTEL_X25E)

        def proc():
            yield from dev.read(100)
            yield from dev.write(200)

        engine.run(engine.process(proc()))
        assert dev.bytes_read() == 100
        assert dev.bytes_written() == 200

    def test_negative_size_rejected(self, engine):
        dev = StorageDevice(engine, INTEL_X25E)
        with pytest.raises(DeviceError):
            engine.run(engine.process(dev.read(-1)))

    def test_utilization(self, engine):
        dev = StorageDevice(engine, INTEL_X25E)

        def proc():
            yield from dev.read(1 * MB)
            yield engine.timeout(dev.spec.read_time(1 * MB))  # idle as long

        engine.run(engine.process(proc()))
        assert dev.utilization() == pytest.approx(0.5)


class TestDRAM:
    def test_budget_enforced(self, engine):
        dram = DRAM(engine, capacity=1 * MiB)
        dram.allocate(512 * KiB)
        dram.allocate(512 * KiB)
        with pytest.raises(CapacityError):
            dram.allocate(1)

    def test_free_returns_budget(self, engine):
        dram = DRAM(engine, capacity=1 * MiB)
        dram.allocate(1 * MiB)
        dram.free(512 * KiB)
        assert dram.available == 512 * KiB
        dram.allocate(512 * KiB)

    def test_over_free_rejected(self, engine):
        dram = DRAM(engine, capacity=1 * MiB)
        dram.allocate(100)
        with pytest.raises(CapacityError):
            dram.free(200)

    def test_negative_rejected(self, engine):
        dram = DRAM(engine, capacity=1 * MiB)
        with pytest.raises(ValueError):
            dram.allocate(-5)
        with pytest.raises(ValueError):
            dram.free(-5)


class TestSSD:
    def test_requires_ssd_spec(self, engine):
        with pytest.raises(DeviceError):
            SSD(engine, DDR3_1600)

    def test_logical_capacity_below_physical(self, engine):
        ssd = SSD(engine, INTEL_X25E, capacity=64 * MiB)
        assert ssd.logical_capacity < 64 * MiB
        assert ssd.logical_capacity > 0.9 * 64 * MiB * 0.9

    def test_extent_bounds_checked(self, engine):
        ssd = SSD(engine, INTEL_X25E, capacity=64 * MiB)
        with pytest.raises(DeviceError):
            engine.run(
                engine.process(ssd.write_extent(ssd.logical_capacity, 4096))
            )

    def test_write_updates_ftl(self, engine):
        ssd = SSD(engine, INTEL_X25E, capacity=64 * MiB)

        def proc():
            yield from ssd.write_extent(0, 256 * KiB)

        engine.run(engine.process(proc()))
        assert ssd.ftl is not None
        assert ssd.ftl.stats.host_pages_written == 64
        assert ssd.ftl.mapped_pages() == 64

    def test_trim_unmaps(self, engine):
        ssd = SSD(engine, INTEL_X25E, capacity=64 * MiB)

        def proc():
            yield from ssd.write_extent(0, 256 * KiB)

        engine.run(engine.process(proc()))
        ssd.trim_extent(0, 256 * KiB)
        assert ssd.ftl.mapped_pages() == 0

    def test_untracked_mode(self, engine):
        ssd = SSD(engine, INTEL_X25E, capacity=64 * MiB, track_ftl=False)
        assert ssd.ftl is None
        assert ssd.logical_capacity == 64 * MiB
        assert ssd.write_amplification == 1.0

    def test_wear_report_keys(self, engine):
        ssd = SSD(engine, INTEL_X25E, capacity=64 * MiB)
        report = ssd.wear_report()
        assert {"write_amplification", "blocks_erased", "erase_max"} <= set(report)


class TestHDD:
    def test_requires_hdd_spec(self, engine):
        with pytest.raises(DeviceError):
            HDD(engine, INTEL_X25E)

    def test_sequential_skips_seek(self, engine):
        hdd = HDD(engine, HDD_7200RPM)

        def proc():
            yield from hdd.read_extent(0, 1 * MB)
            first = engine.now
            yield from hdd.read_extent(1 * MB, 1 * MB)  # sequential
            return first, engine.now

        first, second = engine.run(engine.process(proc()))
        seek = HDD_7200RPM.latency
        xfer = 1 * MB / HDD_7200RPM.read_bw
        assert first == pytest.approx(seek + xfer)
        assert second - first == pytest.approx(xfer)  # no second seek

    def test_discontinuity_pays_seek(self, engine):
        hdd = HDD(engine, HDD_7200RPM)

        def proc():
            yield from hdd.read_extent(0, 1 * MB)
            mid = engine.now
            yield from hdd.read_extent(500 * MB, 1 * MB)  # jump
            return mid, engine.now

        mid, end = engine.run(engine.process(proc()))
        assert end - mid == pytest.approx(
            HDD_7200RPM.latency + 1 * MB / HDD_7200RPM.read_bw
        )

    def test_interleaved_streams_stay_sequential(self, engine):
        """Two interleaved per-stream-sequential readers only seek once
        each (the OST readahead behaviour)."""
        hdd = HDD(engine, HDD_7200RPM)

        def reader(base, stream):
            for i in range(4):
                yield from hdd.read_extent(
                    base + i * MB, 1 * MB, stream=stream
                )

        engine.run_all(
            [
                engine.process(reader(0, "s1")),
                engine.process(reader(500 * MB, "s2")),
            ]
        )
        total_time = engine.now
        expected = 2 * HDD_7200RPM.latency + 8 * MB / HDD_7200RPM.read_bw
        assert total_time == pytest.approx(expected)
