"""Legacy setup shim: enables `pip install -e .` without the wheel package.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
