"""Provisioning-cost analysis (the paper's §I / Fig. 3 closing argument).

"By adding one $300 SSD drive to every 8 compute nodes and using
mechanisms like NVMalloc, we can bring about a 32.47% performance
improvement while running on half the nodes ... future machines can
reduce the total provisioning cost by purchasing a combination of DRAM
and NVM and use them in concert."
"""

from repro.experiments import SMALL, cost_analysis


def test_cost_analysis(report_runner):
    report = report_runner(cost_analysis, SMALL)
    assert report.verified

    rows = {row[0]: row for row in report.rows}
    dram = rows["DRAM(2:16:0)"]
    cheap = rows["R-SSD(8:8:1)"]

    # Comparable memory-subsystem dollars...
    assert cheap[3] < dram[3] * 1.15
    # ...far fewer node-seconds of allocation...
    assert cheap[5] < dram[5] * 0.6
    # ...and the best cost-delay product of the whole grid.
    best = min(row[6] for row in report.rows)
    assert cheap[6] == best
