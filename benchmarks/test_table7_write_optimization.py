"""Table VII: the dirty-page write optimization under random byte writes.

Paper: for 128 K random byte writes into a 2 GB NVM region, flushing only
dirty 4 KB pages sends 504 MB to the SSDs; flushing whole 256 KB chunks
sends 19.3 GB — a ~38x difference (and 64x less device wear per byte).
"""

from repro.experiments import SMALL, table7


def test_table7_write_optimization(report_runner):
    report = report_runner(table7, SMALL)
    assert report.verified

    rows = {row[0]: row for row in report.rows}
    with_opt = rows["w/ Optimization"]
    without = rows["w/o Optimization"]

    # Identical traffic into FUSE...
    assert with_opt[1] == without[1]
    # ...but whole-chunk mode multiplies SSD traffic by ~chunk/page
    # (sparse dirty pages: one dirty page per evicted chunk -> up to 64x;
    # paper measured 38x at its dirty density).
    ratio = without[2] / with_opt[2]
    assert 20 < ratio <= 70
