"""Ablation: FUSE daemon concurrency.

Our model serializes a node's store requests through a single FUSE daemon
thread (matching the paper-era prototype and required to reproduce the
Fig. 2 local-vs-remote gap).  This ablation shows what a multithreaded
daemon would buy: concurrent ranks' chunk fetches pipeline into the
fabric and devices.
"""

from repro.experiments import SMALL, Testbed
from repro.util.tables import render_table
from repro.workloads import StreamConfig, StreamKernel, run_stream


def stream_bw(daemon_threads: int, remote: bool) -> float:
    scale = SMALL.with_(
        dram_per_node=SMALL.stream_elements * 8 * 4, cpu_slowdown=1.0
    )
    testbed = Testbed(scale)
    job = testbed.job(8, 1, 1, remote_ssd=remote, daemon_threads=daemon_threads)
    result = run_stream(
        job,
        StreamConfig(
            elements=scale.stream_elements,
            kernel=StreamKernel.TRIAD,
            iterations=scale.stream_iterations,
            placement={"A": "dram", "B": "nvm", "C": "dram"},
            block_bytes=scale.stream_block,
        ),
    )
    assert result.verified
    return result.bandwidth


def test_ablation_daemon_threads(benchmark):
    grid = [(threads, remote) for threads in (1, 4) for remote in (False, True)]

    def sweep():
        return {key: stream_bw(*key) for key in grid}

    bw = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["Daemon threads", "Benefactor", "TRIAD bandwidth (MB/s)"],
        [
            [threads, "remote" if remote else "local", bw[(threads, remote)] / 1e6]
            for threads, remote in grid
        ],
        title="Ablation: FUSE daemon concurrency (B on NVM)",
    ))
    # Multithreading helps most where latency serializes: the remote case.
    assert bw[(4, True)] > bw[(1, True)]
    remote_gain = bw[(4, True)] / bw[(1, True)]
    local_gain = bw[(4, False)] / bw[(1, False)]
    assert remote_gain >= local_gain * 0.9
