"""Table IV: bytes exchanged app -> FUSE -> SSD during MM compute.

Paper (L-SSD(8:16:16)): with row-major locality the caches absorb almost
everything — SSD transfers collapse to roughly one copy of B per node;
column-major access multiplies both FUSE requests and SSD traffic.
"""

from repro.experiments import SMALL, table4
from repro.util.units import MiB


def test_table4_data_exchanged(report_runner):
    report = report_runner(table4, SMALL)
    assert report.verified

    rows = {row[0]: row for row in report.rows}
    row_major = rows["Row-major"]
    col_major = rows["Column-major"]

    # Aggregated application reads of B: every rank sweeps B once
    # (128 ranks x 2 MiB = 256 MiB).
    assert 200 <= row_major[1] <= 300

    # Row-major: SSD traffic ~ B once per node (16 x 2 MiB = 32 MiB),
    # an ~8x reduction vs application reads.
    assert row_major[3] <= row_major[1] / 4

    # Column-major explodes both FUSE requests and SSD traffic.
    assert col_major[2] > 4 * row_major[2]
    assert col_major[3] > 4 * row_major[3]
