"""Ablation: NVM device class (Table I's three SSDs).

The paper argues PCIe flash narrows the DRAM gap ("interfaces such as
PCIe offer much lower latency") but costs far more per GB.  This ablation
re-runs the Fig. 2-style STREAM TRIAD comparison with each Table I device
as the node-local SSD and reports the DRAM/NVM bandwidth ratio alongside
the $/GB the paper's cost discussion hinges on.
"""

from repro.cluster.hal import HalConfig
from repro.devices.specs import FUSIONIO_IODRIVE_DUO, INTEL_X25E, OCZ_REVODRIVE
from repro.experiments import SMALL

from repro.util.tables import render_table
from repro.util.units import GB
from repro.workloads import StreamConfig, StreamKernel, run_stream

DEVICES = [INTEL_X25E, OCZ_REVODRIVE, FUSIONIO_IODRIVE_DUO]


def stream_slowdown(spec) -> float:
    """DRAM/NVM STREAM TRIAD ratio with this device as the local SSD."""
    scale = SMALL.with_(
        dram_per_node=SMALL.stream_elements * 8 * 4, cpu_slowdown=1.0
    )

    def one(placement):
        # A HAL testbed with this device as the node-local SSD.
        from repro.cluster.hal import make_hal_cluster
        from repro.parallel.job import Job, JobConfig
        from repro.sim.engine import Engine

        engine = Engine()
        config = HalConfig(
            dram_per_node=scale.dram_per_node,
            ssd_spec=spec,
            ssd_per_node=scale.ssd_per_node,
            cpu_spec=scale.cpu_spec(),
        )
        cluster = make_hal_cluster(engine, config)
        job = Job(cluster, JobConfig(
            8, 1, 1,
            fuse_cache_bytes=scale.fuse_cache,
            page_cache_bytes=scale.page_cache,
            benefactor_contribution=scale.benefactor_contribution,
        ))
        result = run_stream(job, StreamConfig(
            elements=scale.stream_elements,
            kernel=StreamKernel.TRIAD,
            iterations=scale.stream_iterations,
            placement=placement,
            block_bytes=scale.stream_block,
        ))
        assert result.verified
        return result.bandwidth

    dram = one({"A": "dram", "B": "dram", "C": "dram"})
    nvm = one({"A": "dram", "B": "nvm", "C": "dram"})
    return dram / nvm


def test_ablation_device_class(benchmark):
    def sweep():
        return {spec.name: stream_slowdown(spec) for spec in DEVICES}

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["Device", "Interface", "$/GB", "DRAM/NVM STREAM ratio"],
        [
            [
                spec.name, spec.interface,
                spec.cost_usd / (spec.capacity / GB),
                ratios[spec.name],
            ]
            for spec in DEVICES
        ],
        title="Ablation: benefactor device class (STREAM TRIAD, B on local NVM)",
    ))
    # Faster devices narrow the gap, in Table I order.
    assert ratios[INTEL_X25E.name] > ratios[OCZ_REVODRIVE.name]
    assert ratios[OCZ_REVODRIVE.name] > ratios[FUSIONIO_IODRIVE_DUO.name]
    # But even the ioDrive stays well below DRAM (the paper's point that
    # NVM extends rather than replaces memory).
    assert ratios[FUSIONIO_IODRIVE_DUO.name] > 5
