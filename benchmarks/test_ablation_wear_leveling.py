"""Ablation: FTL wear leveling on/off.

The paper's lifetime argument assumes the device spreads erases; this
ablation drives a hot-spot write pattern through the FTL and compares
the per-block erase spread with wear leveling enabled and disabled.
"""

from repro.devices.ftl import FlashTranslationLayer
from repro.util.tables import render_table
from repro.util.units import MiB


def spread(wear_leveling: bool) -> tuple[int, int, float]:
    ftl = FlashTranslationLayer(
        capacity=4 * MiB, page_size=4096, pages_per_block=32,
        overprovision=0.1, wear_leveling=wear_leveling,
    )
    hot = list(range(64))  # 2 blocks' worth of hot pages
    for _ in range(600):
        ftl.write_pages(hot)
    low, high = ftl.erase_count_spread()
    return low, high, ftl.stats.write_amplification


def test_ablation_wear_leveling(benchmark):
    def sweep():
        return {on: spread(on) for on in (True, False)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["Wear leveling", "Erase min", "Erase max", "Write amplification"],
        [
            ["on" if on else "off", *results[on]]
            for on in (True, False)
        ],
        title="Ablation: wear leveling under a hot-spot write pattern",
    ))
    on_low, on_high, _ = results[True]
    off_low, off_high, _ = results[False]
    # Leveling keeps the spread tight; without it, some blocks age much
    # faster than others.
    assert (on_high - on_low) <= max(4, (off_high - off_low) // 2)
