"""Figure 5: MM compute time, row-major vs column-major access to B.

Paper: column-major is much slower, degrades further as SSD resources
shrink (L -> R, fewer benefactors), while row-major stays stable; the
row/column gap is far larger with NVMalloc than with DRAM — sub-optimal
access patterns break the latency-hiding of the DRAM caches.
"""

from repro.experiments import SMALL, fig5


def test_fig5_access_pattern(report_runner):
    report = report_runner(fig5, SMALL)
    assert report.verified

    ratio = {row[0]: row[3] for row in report.rows}
    row_time = {row[0]: row[1] for row in report.rows}
    col_time = {row[0]: row[2] for row in report.rows}

    # DRAM barely cares about access order; NVM configs all pay.
    assert ratio["DRAM(2:16:0)"] < 1.05
    nvm_labels = [k for k in ratio if not k.startswith("DRAM")]
    assert all(ratio[k] > 1.1 for k in nvm_labels)
    assert max(ratio[k] for k in nvm_labels) > 1.4

    # Row-major is stable as benefactors shrink; column-major degrades.
    assert row_time["R-SSD(8:8:1)"] < row_time["R-SSD(8:8:8)"] * 1.10
    assert col_time["R-SSD(8:8:1)"] > col_time["R-SSD(8:8:8)"] * 1.15
