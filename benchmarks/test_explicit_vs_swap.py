"""Explicit placement vs transparent swap (the abstract's closing claim).

"Our results suggest that while NVMalloc enables transparent access to
NVM-resident variables, the explicit control it provides is crucial to
optimize application performance."  §I positions kernel swap-to-NVM as
the transparent alternative; this bench runs both mechanisms on the same
workloads and shows where explicit control matters (mixed access
patterns, multi-process sharing, capacity beyond the local device) and
where it does not (plain sequential streaming on a local SSD).
"""

from repro.experiments import SMALL, explicit_vs_swap


def test_explicit_vs_swap(report_runner):
    report = report_runner(explicit_vs_swap, SMALL)
    assert report.verified

    rows = {row[0]: row for row in report.rows}
    # Sequential streaming: swap is competitive (within 2x either way) —
    # the honest baseline that makes the other rows meaningful.
    sweep = rows["Sequential sweep (8 MiB, 2 passes)"]
    assert 0.5 < sweep[3] < 2.0

    # Explicit hot-in-DRAM placement beats the shared LRU.
    hotcold = rows["Hot working set + cold stream"]
    assert hotcold[3] > 1.05

    # One shared mmap copy vs 8 private swapped copies: decisive.
    shared = rows["8 processes reading one 16 MiB dataset"]
    assert shared[3] > 4.0

    # Swap cannot exceed the local partition; the aggregate store can.
    big = rows["Dataset 2x the local NVM partition"]
    assert "fails" in str(big[1])
    assert float(big[2]) > 0
