"""Figure 2: STREAM TRIAD normalized bandwidth by array placement.

Paper: NVMalloc STREAM falls behind DRAM by ~62x (local SSD) and ~115x
(remote SSD) — the deliberate worst case, streaming with zero reuse.
"""

from repro.experiments import SMALL, fig2


def test_fig2_stream_triad(report_runner):
    report = report_runner(fig2, SMALL)
    assert report.verified

    rows = {row[0]: (row[1], row[2]) for row in report.rows}
    assert rows["None"] == (100.0, 100.0)
    for label, (local, remote) in rows.items():
        if label == "None":
            continue
        # Every NVM placement is dramatically slower than DRAM...
        assert local < 5.0, f"{label}: local {local} not <5% of DRAM"
        assert remote < 5.0
        # ...and remote is never faster than local.
        assert remote <= local * 1.05

    # Single-array slowdowns land in the paper's decade: tens-of-x local,
    # roughly 2x worse remote.
    local_ratios = [100.0 / rows[k][0] for k in ("A", "B", "C")]
    remote_ratios = [100.0 / rows[k][1] for k in ("A", "B", "C")]
    assert 30 < sum(local_ratios) / 3 < 130  # paper: 62
    assert 60 < sum(remote_ratios) / 3 < 230  # paper: 115
    assert sum(remote_ratios) > sum(local_ratios)
