"""Figure 4: shared vs individual mmap files for matrix B.

Paper: mapping B to one shared file per node saves storage, I/O, and
network traffic; per-process files are slower by up to 18% (more when all
8 cores contend).  Our cache:matrix ratio is tighter than the paper's, so
the contention penalty overshoots in magnitude — the direction and the
"worst with 8 procs/node" pattern reproduce.
"""

from repro.experiments import SMALL, fig4


def test_fig4_shared_vs_individual(report_runner):
    report = report_runner(fig4, SMALL)
    assert report.verified

    slowdown = {row[0]: row[3] for row in report.rows}
    # Individual files are slower everywhere.
    assert all(s > 0 for s in slowdown.values())
    # The penalty is worst when all 8 cores per node contend for the cache.
    assert slowdown["L-SSD(8:16:16)"] > slowdown["L-SSD(2:16:16)"]
