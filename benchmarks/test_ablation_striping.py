"""Ablation: chunk striping policy (round-robin vs local-first).

The paper stripes across benefactors to share load; local-first placement
avoids the network entirely when the local benefactor has room, at the
cost of concentrating device traffic.  A single-node allocation pattern
shows the trade-off.
"""

import numpy as np

from repro.experiments import SMALL, Testbed
from repro.store import LocalFirstStriping, RoundRobinStriping
from repro.util.tables import render_table
from repro.util.units import MiB


def run_policy(policy_cls) -> tuple[float, float]:
    """One client streaming through a private NVM array.

    Returns (elapsed virtual seconds, network bytes).
    """
    testbed = Testbed(SMALL.with_(cpu_slowdown=1.0))
    job = testbed.job(1, 4, 4)
    assert job.manager is not None
    job.manager.striping = policy_cls()
    ctx = job.rank_context(0)

    def app():
        assert ctx.nvmalloc is not None
        arr = yield from ctx.nvmalloc.ssdmalloc_array(
            (1 << 20,), np.float64, owner="ablate"
        )
        block = 1 << 15
        start = ctx.engine.now
        for s in range(0, 1 << 20, block):
            yield from arr.write_slice(
                s, np.arange(s, s + block, dtype=np.float64)
            )
        yield from arr.variable.region.msync()
        yield from ctx.nvmalloc.mount.cache.flush_all()
        for s in range(0, 1 << 20, block):
            got = yield from arr.read_slice(s, s + block)
            assert got[0] == s
        elapsed = ctx.engine.now - start
        yield from ctx.nvmalloc.ssdfree(arr.variable)
        return elapsed

    elapsed = job.engine.run(job.engine.process(app()))
    return elapsed, testbed.cluster.metrics.value("network.bytes")


def test_ablation_striping(benchmark):
    def sweep():
        return {
            "round-robin": run_policy(RoundRobinStriping),
            "local-first": run_policy(LocalFirstStriping),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["Policy", "Stream time (s)", "Network MiB"],
        [
            [name, elapsed, nbytes / MiB]
            for name, (elapsed, nbytes) in results.items()
        ],
        title="Ablation: striping policy (8 MiB stream, 1 client, 4 benefactors)",
    ))
    # Local-first keeps (almost) everything off the network.
    assert results["local-first"][1] < results["round-robin"][1] / 2
