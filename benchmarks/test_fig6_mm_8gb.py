"""Figure 6: MM at 4x the Fig. 3 data size (the paper's 8 GB/matrix run).

Paper: with 8 GB matrices on 8 GB/node DRAM, only NVM-backed
configurations can run at all; loop tiling favours longer rows, so
computing grows sub-linearly in the flop count, i.e. NVMalloc scales
well to problem sizes beyond physical memory.
"""

import pytest

from repro.errors import CapacityError
from repro.experiments import SMALL, fig6
from repro.experiments.runner import Testbed
from repro.workloads.matmul import MatmulConfig, run_matmul


def test_fig6_mm_beyond_dram(report_runner):
    report = report_runner(fig6, SMALL)
    assert report.verified
    assert len(report.rows) == 4
    # Compute grew sub-linearly vs the 8x flop increase.
    assert "compute grew" in report.measured_claims[0]
    import re

    growth = [
        float(m) for m in re.findall(r"(\d+(?:\.\d+)?)x", report.measured_claims[0])
    ]
    # the last factor is the flop growth itself (8x); compute factors are
    # the ones before it, all sub-linear
    assert len(growth) >= 2
    assert all(g < growth[-1] for g in growth[:-1])


def test_fig6_dram_mode_cannot_run():
    """The DRAM-only configuration is infeasible at this size (the whole
    point of the experiment)."""
    testbed = Testbed(SMALL)
    job = testbed.job(2, 16, 0)
    with pytest.raises(CapacityError):
        run_matmul(
            job,
            testbed.pfs,
            MatmulConfig(
                n=SMALL.matrix_n * 2, tile=SMALL.matrix_tile,
                b_placement="dram", verify=False,
            ),
        )
