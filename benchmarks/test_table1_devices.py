"""Table I: device characteristics the models are seeded from."""

from repro.experiments import table1


def test_table1_device_catalog(report_runner):
    report = report_runner(table1)
    assert report.verified
    assert len(report.rows) == 5
    # The paper's headline ratio: DRAM >= 8.53x the fastest PCIe flash.
    assert "8.53x" in report.measured_claims[0]
