"""Ablation: store chunk size.

The paper fixes chunks at 256 KB "to minimize the number of network
requests".  Smaller chunks pay more per-request overhead on sequential
streams; larger chunks amplify read-modify-write traffic for sparse
writes.  Both effects are measured here.
"""

from repro.experiments import SMALL, Testbed
from repro.util.tables import render_table
from repro.util.units import KiB
from repro.workloads import (
    MatmulConfig,
    RandWriteConfig,
    run_matmul,
    run_randwrite,
)


def mm_compute(chunk_size: int) -> float:
    testbed = Testbed(SMALL)
    job = testbed.job(
        8, 8, 8, chunk_size=chunk_size,
        fuse_cache_bytes=max(SMALL.fuse_cache, 4 * chunk_size),
    )
    result = run_matmul(
        job, testbed.pfs,
        MatmulConfig(n=SMALL.matrix_n, tile=SMALL.matrix_tile,
                     b_placement="nvm"),
    )
    assert result.verified
    return result.compute_time


def randwrite_ssd_bytes(chunk_size: int) -> float:
    testbed = Testbed(SMALL)
    job = testbed.job(
        1, 1, 1, chunk_size=chunk_size, dirty_page_writeback=False,
        fuse_cache_bytes=max(SMALL.fuse_cache, 4 * chunk_size),
    )
    result = run_randwrite(
        job,
        RandWriteConfig(
            region_bytes=SMALL.randwrite_region,
            num_writes=SMALL.randwrite_count // 8,
        ),
    )
    assert result.verified
    return result.written_to_ssd


def test_ablation_chunk_size(benchmark):
    sizes = [64 * KiB, 256 * KiB, 1024 * KiB]

    def sweep():
        return {
            size: (mm_compute(size), randwrite_ssd_bytes(size))
            for size in sizes
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["Chunk", "MM compute (s)", "Unopt. rand-write SSD bytes"],
        [
            [f"{size // KiB} KiB", results[size][0], results[size][1]]
            for size in sizes
        ],
        title="Ablation: chunk size",
    ))
    # Sparse random writes without the dirty-page optimization suffer
    # proportionally to chunk size.
    assert results[1024 * KiB][1] > 2 * results[64 * KiB][1]
