"""Ablation: FUSE chunk-cache size.

The paper fixes the cache at 64 MB and calls the size "a tunable
parameter ... sufficient to aid with bridging the granularity gap, while
also not consuming too much DRAM" (§III-D).  Two findings:

- for MM's shared-B streaming (Fig. 3 mode), lockstep ranks convoy on
  the shared file and even a minimal cache suffices — size barely
  matters (each byte of B is consumed once per sweep);
- for re-referencing workloads (random writes into a region), the cache
  size sets the hit rate directly: once the cache covers the working
  set, read-modify-write refetches and eviction churn disappear.
"""

from repro.experiments import SMALL, Testbed
from repro.util.tables import render_table
from repro.util.units import KiB, MiB
from repro.workloads import (
    MatmulConfig,
    RandWriteConfig,
    run_matmul,
    run_randwrite,
)


def mm_compute(fuse_cache: int) -> float:
    testbed = Testbed(SMALL)
    job = testbed.job(8, 8, 8, fuse_cache_bytes=fuse_cache)
    result = run_matmul(
        job,
        testbed.pfs,
        MatmulConfig(n=SMALL.matrix_n, tile=SMALL.matrix_tile,
                     b_placement="nvm"),
    )
    assert result.verified
    return result.compute_time


def randwrite_elapsed(fuse_cache: int) -> float:
    # Region sized so the sweep crosses full cache coverage.
    scale = SMALL.with_(dram_per_node=32 * MiB)
    testbed = Testbed(scale)
    job = testbed.job(1, 1, 1, fuse_cache_bytes=fuse_cache)
    result = run_randwrite(
        job, RandWriteConfig(region_bytes=8 * MiB, num_writes=2048)
    )
    assert result.verified
    return result.elapsed


def test_ablation_fuse_cache_size(benchmark):
    # MM nodes have only 8 MiB DRAM (the Fig. 3 constraint), so its sweep
    # stops at 2 MiB; the single-node random-write testbed has headroom.
    mm_sizes = [512 * KiB, 1 * MiB, 2 * MiB]
    rw_sizes = [512 * KiB, 2 * MiB, 8 * MiB]

    def sweep():
        return (
            {size: mm_compute(size) for size in mm_sizes},
            {size: randwrite_elapsed(size) for size in rw_sizes},
        )

    mm_times, rw_times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["FUSE cache", "MM compute, shared B (s)"],
        [[f"{size // KiB} KiB", mm_times[size]] for size in mm_sizes],
        title="Ablation: FUSE cache size (streaming, convoy)",
    ))
    print()
    print(render_table(
        ["FUSE cache", "Random-write run (s)"],
        [[f"{size // KiB} KiB", rw_times[size]] for size in rw_sizes],
        title="Ablation: FUSE cache size (re-referencing working set)",
    ))
    mm = [mm_times[s] for s in mm_sizes]
    rw = [rw_times[s] for s in rw_sizes]
    # Streaming with convoy: insensitive.
    assert max(mm) < 1.2 * min(mm)
    # Re-referencing working set: full coverage wins clearly.
    assert rw[0] > 1.5 * rw[-1]
