"""Ablation: decompose B vs replicate B on NVMalloc (§I, §IV-B.2).

§I: with shrinking memory per node, "applications face the prospect of
running wider ... thereby incurring increased communication costs."
§IV-B.2 notes the replicated-B algorithm has "excellent computation
scalability ... requiring little communication with its peers" but
"higher memory consumption (compared to alternatives such as decomposing
both A and B)".

This ablation runs both resolutions of that dilemma with all 8 cores
per node — ring-decomposed B in DRAM vs replicated B on the NVM store —
plus the DRAM-only replicated baseline that can use just 2 cores.
"""

from repro.experiments import SMALL, Testbed
from repro.util.tables import render_table

from repro.workloads import MatmulConfig, run_matmul, run_matmul_decomposed


def test_ablation_decomposition(benchmark):
    def sweep():
        results = {}
        # DRAM-only, replicated B: 2 procs/node is all that fits.
        testbed = Testbed(SMALL)
        job = testbed.job(2, 16, 0)
        results["replicated DRAM(2:16:0)"] = run_matmul(
            job, testbed.pfs,
            MatmulConfig(n=SMALL.matrix_n, tile=SMALL.matrix_tile,
                         b_placement="dram"),
        )
        # Decomposed, all cores, no NVM needed.
        testbed = Testbed(SMALL)
        job = testbed.job(8, 16, 0)
        results["decomposed DRAM(8:16:0)"] = run_matmul_decomposed(
            job, testbed.pfs,
            MatmulConfig(n=SMALL.matrix_n, tile=SMALL.matrix_tile,
                         b_placement="dram"),
        )
        # Replicated on the NVM store, all cores.
        testbed = Testbed(SMALL)
        job = testbed.job(8, 16, 16)
        results["replicated L-SSD(8:16:16)"] = run_matmul(
            job, testbed.pfs,
            MatmulConfig(n=SMALL.matrix_n, tile=SMALL.matrix_tile,
                         b_placement="nvm"),
        )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["Strategy", "Total (s)", "Compute (s)"],
        [
            [name, r.total, r.compute_time]
            for name, r in results.items()
        ],
        title="Ablation: decomposing B vs replicating B via NVMalloc "
              f"({SMALL.matrix_n}x{SMALL.matrix_n})",
    ))
    for r in results.values():
        assert r.verified
    dram2 = results["replicated DRAM(2:16:0)"].total
    decomposed = results["decomposed DRAM(8:16:0)"].total
    nvmalloc = results["replicated L-SSD(8:16:16)"].total
    # Both all-core strategies beat the 2-core baseline...
    assert decomposed < dram2
    assert nvmalloc < dram2
    # ...and NVMalloc keeps the low-communication replicated algorithm
    # competitive with the decomposition (within 40% either way at this
    # scale; at the paper's scale the ring's n^2-per-rank traffic grows).
    assert nvmalloc < decomposed * 1.4
