"""Figure 3: MM runtime with the five-stage breakdown across configs.

Paper headlines: L-SSD(8:16:16) beats DRAM(2:16:0) by 53.75% (NVMalloc
lets all 8 cores/node work); L-SSD(2:16:16) costs only 2.19% over DRAM;
remote SSDs add 1.42% over local; one SSD per 8 nodes — R-SSD(8:8:1) —
still beats DRAM-only by 32.47% on half the nodes.
"""

from repro.experiments import SMALL, fig3


def test_fig3_mm_runtime(report_runner):
    report = report_runner(fig3, SMALL)
    assert report.verified

    totals = {row[0]: row[6] for row in report.rows}
    compute = {row[0]: row[4] for row in report.rows}
    dram = totals["DRAM(2:16:0)"]

    # 8 procs/node on NVM beat the 2-proc DRAM baseline substantially
    # (paper: 53.75%).
    improvement = 1 - totals["L-SSD(8:16:16)"] / dram
    assert 0.30 < improvement < 0.70

    # Same process count: NVM only slightly worse than DRAM (paper 2.19%).
    overhead = totals["L-SSD(2:16:16)"] / dram - 1
    assert overhead < 0.25
    # ... and its *compute* stage matches DRAM's closely: SSD latency is
    # hidden by the cache hierarchy.
    assert compute["L-SSD(2:16:16)"] < compute["DRAM(2:16:0)"] * 1.15

    # Remote vs local: tiny overhead (paper 1.42%).
    assert totals["R-SSD(8:8:8)"] / totals["L-SSD(8:8:8)"] - 1 < 0.05

    # Fewer benefactors only swell the broadcast stage, visibly at 8:8:1.
    bcast = {row[0]: row[3] for row in report.rows}
    assert bcast["R-SSD(8:8:1)"] > bcast["R-SSD(8:8:8)"] * 1.2

    # One $300 SSD per 8 nodes still beats DRAM-only on half the nodes
    # (paper: 32.47%).
    assert totals["R-SSD(8:8:1)"] < dram * 0.85
