"""Output staging through the NVM store vs direct PFS writes (§II/§III-E).

"We have previously shown that checkpointing to such an intermediate
device and draining to PFS in the background is an extremely viable
alternative and can help alleviate the I/O bottleneck."
"""

from repro.experiments import SMALL, Testbed
from repro.util.tables import render_table
from repro.util.units import KiB, MiB
from repro.workloads import StagingConfig, run_staging


def run_mode(mode: str):
    testbed = Testbed(SMALL.with_(cpu_slowdown=1.0, dram_per_node=16 * MiB))
    job = testbed.job(8, 8, 8 if mode == "staged" else 0)
    # Compute per step on the order of the per-step PFS drain time, so
    # the background drain has something to hide behind (the HPC regime
    # the paper targets: compute phases dominate between checkpoints).
    config = StagingConfig(
        burst_bytes=512 * KiB, timesteps=4, compute_seconds=0.8, mode=mode,
    )
    return run_staging(job, testbed.pfs, config)


def test_staging_vs_direct(benchmark):
    def sweep():
        return {mode: run_mode(mode) for mode in ("direct", "staged")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["Strategy", "App time (s)", "Compute stalled on I/O (s)"],
        [
            [mode, results[mode].elapsed, results[mode].compute_stall]
            for mode in ("direct", "staged")
        ],
        title="Output staging: 64 ranks x 4 bursts of 512 KiB",
    ))
    direct = results["direct"]
    staged = results["staged"]
    assert direct.verified and staged.verified
    # Staging cuts the compute loop's I/O stall dramatically...
    assert staged.compute_stall < direct.compute_stall / 2
    # ...and the app finishes sooner end-to-end despite draining the same
    # bytes to the PFS.
    assert staged.elapsed < direct.elapsed
