"""Ablation: FUSE-level next-chunk read-ahead for sequential streams.

The paper's read path fetches whole 256 KB chunks, which already acts as
read-ahead relative to 4 KB faults; this ablation adds explicit async
next-chunk prefetch on top.  Finding: prefetch pays off exactly when the
device is latency-bound (a single reader overlaps fetch with consume,
+~60%); with 8 concurrent readers saturating the single-threaded FUSE
daemon, prefetches only queue ahead of demand fetches and *hurt* — which
is presumably why the paper relies on chunk-granular fetches alone.
"""

from repro.experiments import SMALL, Testbed
from repro.util.tables import render_table
from repro.workloads import StreamConfig, StreamKernel, run_stream


def stream_bw(readahead_chunks: int, threads: int) -> float:
    scale = SMALL.with_(
        dram_per_node=SMALL.stream_elements * 8 * 4, cpu_slowdown=1.0
    )
    testbed = Testbed(scale)
    job = testbed.job(threads, 1, 1, readahead_chunks=readahead_chunks)
    result = run_stream(
        job,
        StreamConfig(
            elements=scale.stream_elements // 2,
            kernel=StreamKernel.SCALE,  # read-dominated: B = k*C, C on NVM
            iterations=2,
            placement={"A": "dram", "B": "dram", "C": "nvm"},
            block_bytes=scale.stream_block,
        ),
    )
    assert result.verified
    return result.bandwidth


def test_ablation_readahead(benchmark):
    grid = [(d, threads) for d in (0, 1, 2) for threads in (1, 8)]

    def sweep():
        return {key: stream_bw(*key) for key in grid}

    bw = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(render_table(
        ["Read-ahead chunks", "Threads", "SCALE bandwidth (MB/s)"],
        [[d, threads, bw[(d, threads)] / 1e6] for d, threads in grid],
        title="Ablation: async FUSE read-ahead depth (sequential read)",
    ))
    # Latency-bound single reader: prefetch overlaps and wins.
    assert bw[(1, 1)] > bw[(0, 1)] * 1.2
    # Saturated daemon: prefetch does not help.
    assert bw[(1, 8)] <= bw[(0, 8)] * 1.05
