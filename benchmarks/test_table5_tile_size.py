"""Table V: MM compute time vs loop-tiling size.

Paper: for column-major access, larger tiles improve locality and cut
compute time steadily (16 -> 128); row-major is inherently sequential and
insensitive to tile size.

Run at L-SSD(8:8:8) (half the paper's node count) to keep the bench
wall-clock reasonable; the tile-size trend is per-node behaviour.
"""

from repro.experiments import SMALL, table5


def test_table5_tile_size(report_runner):
    report = report_runner(
        table5, SMALL, tiles=(16, 32, 64, 128), config=(8, 8, 8, False)
    )
    assert report.verified

    tiles = [row[0] for row in report.rows]
    row_times = [row[1] for row in report.rows]
    col_times = [row[2] for row in report.rows]

    # Column-major improves monotonically with tile size...
    assert all(a > b for a, b in zip(col_times, col_times[1:]))
    # ... by a substantial factor over the sweep.
    assert col_times[0] > 2 * col_times[-1]
    # Row-major is insensitive (within 15%).
    assert max(row_times) < 1.15 * min(row_times)
