"""Table VI: parallel sort of a dataset 1.56x the DRAM sort budget.

Paper: the DRAM-only run cannot load the data at once and needs two
passes with interim runs exchanged through the PFS — ~10x slower than
NVMalloc's one-pass hybrid on L-SSD(8:16:16); R-SSD(8:8:8) is slower
than L-SSD (half the nodes, double the per-node load) but still far
ahead of DRAM-only.
"""

from repro.experiments import SMALL, table6


def test_table6_quicksort(report_runner):
    report = report_runner(table6, SMALL)
    assert report.verified

    times = {row[0]: row[2] for row in report.rows}
    passes = {row[0]: row[3] for row in report.rows}

    assert passes["DRAM(8:16:0)"] == 2
    assert passes["L-SSD(8:16:16)"] == 1

    # Hybrid wins decisively (paper: ~10x; our PFS:SSD bandwidth gap at
    # simulation scale yields a smaller but unambiguous factor).
    speedup = times["DRAM(8:16:0)"] / times["L-SSD(8:16:16)"]
    assert speedup > 1.8

    # R-SSD: half the nodes, double the load — never faster than L-SSD.
    assert times["R-SSD(8:8:8)"] >= times["L-SSD(8:16:16)"] * 0.98
