"""§III-E: chunk-linked checkpointing (beyond the paper's tables).

The paper describes — but does not tabulate — ssdcheckpoint's design:
checkpoints *link* the NVM-resident chunks of mmapped variables instead
of copying them, copy-on-write keeps old checkpoints frozen, and
incremental checkpointing falls out for free.  This bench quantifies it.
"""

from repro.experiments import SMALL, checkpoint_experiment


def test_checkpoint_linking(report_runner):
    report = report_runner(checkpoint_experiment, SMALL)
    assert report.verified

    for t, row in enumerate(report.rows):
        # Physically written: just the DRAM image.
        assert row[1] == SMALL.checkpoint_dram_state
        # Linked: the whole variable, every step, at zero copy cost.
        assert row[2] == SMALL.checkpoint_variable
        # COW appears only after the first checkpoint and stays bounded
        # by the mutated fraction.
        if t == 0:
            assert row[3] == 0
        else:
            assert 0 < row[3] <= 0.3 * (SMALL.checkpoint_variable // (256 * 1024))
