"""Wall-clock benchmark of the batched fast path through the memory stack.

Excluded from tier-1 (``-m "not wallclock"`` in the default addopts);
run explicitly with::

    PYTHONPATH=src pytest benchmarks/test_wallclock_stack.py -m wallclock

or via ``make bench-wallclock``, which also compares against the
checked-in seed baseline.  The virtual outputs are the correctness
anchor: the stack may only get faster in wall-clock terms while its
simulated times and byte-flow counters stay bit-identical.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "tools"))

import bench_wallclock  # noqa: E402

pytestmark = pytest.mark.wallclock

SEED_BASELINE = _ROOT / "benchmarks" / "BENCH_wallclock_seed.json"


@pytest.mark.parametrize("name", sorted(bench_wallclock.WORKLOADS))
def test_workload_runs_and_verifies(name):
    """Each benchmark workload completes, verifies, and reports flows."""
    outcome = bench_wallclock.WORKLOADS[name](bench_wallclock.TINY)
    assert outcome["verified"], f"{name} failed its own verification"
    assert outcome["wall_seconds"] > 0
    assert outcome["virtual_seconds"] > 0
    counters = outcome["counters"]
    assert counters, "no byte-flow counters recorded"
    assert any(k.startswith("pagecache.") for k in counters)
    assert any(k.startswith("fuse.") for k in counters)


@pytest.mark.parametrize("name", sorted(bench_wallclock.WORKLOADS))
def test_virtual_results_deterministic(name):
    """Back-to-back runs agree bit-for-bit on every virtual quantity."""
    first = bench_wallclock.WORKLOADS[name](bench_wallclock.TINY)
    second = bench_wallclock.WORKLOADS[name](bench_wallclock.TINY)
    assert first["virtual_seconds"] == second["virtual_seconds"]
    assert first["counters"] == second["counters"]


def test_runner_emits_report(tmp_path):
    """The CLI runner writes a well-formed JSON report."""
    out = tmp_path / "bench.json"
    rc = bench_wallclock.main(
        ["--scale", "tiny", "--workloads", "stream_triad_nvm",
         "--output", str(out)]
    )
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["schema"] == 1
    assert "stream_triad_nvm" in report["workloads"]


def test_seed_baseline_checked_in():
    """The recorded seed baseline the Makefile target compares against."""
    baseline = json.loads(SEED_BASELINE.read_text())
    assert set(baseline["workloads"]) == set(bench_wallclock.WORKLOADS)
    for name, outcome in baseline["workloads"].items():
        assert outcome["wall_seconds"] > 0, name
        assert outcome["counters"], name
