"""Benchmark harness helpers.

Each benchmark reproduces one table or figure of the paper's evaluation:
it runs the corresponding experiment driver at the calibrated SMALL scale,
prints the same rows the paper reports (plus paper-vs-measured claims),
and asserts that the result is end-to-end verified and that the paper's
qualitative shape holds.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def run_report(benchmark, driver, *args, **kwargs):
    """Time one driver invocation and print its rendered report."""
    result = benchmark.pedantic(
        lambda: driver(*args, **kwargs), rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result


@pytest.fixture
def report_runner(benchmark):
    def runner(driver, *args, **kwargs):
        return run_report(benchmark, driver, *args, **kwargs)

    return runner
