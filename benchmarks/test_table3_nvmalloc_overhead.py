"""Table III: STREAM with vs without NVMalloc on the local SSD.

Paper: NVMalloc itself adds no overhead — its FUSE-level chunk caching
makes it *faster* than raw local-SSD access (COPY 78.17 vs 64.24 MB/s).
Our model reproduces the win for write-dominated kernels (dirty-page
batching: COPY and ADD write array C); for read-dominated kernels the
single-threaded FUSE daemon costs more than read-ahead recovers — a
divergence documented in EXPERIMENTS.md.
"""

from repro.experiments import SMALL, table3


def test_table3_with_vs_without_nvmalloc(report_runner):
    report = report_runner(table3, SMALL)
    assert report.verified
    gains = {row[0]: row[3] for row in report.rows}
    # Write-dominated kernels (C is the destination): NVMalloc wins.
    assert gains["COPY"] > 0
    assert gains["ADD"] > 0
