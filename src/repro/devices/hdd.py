"""Rotating-disk model (parallel-file-system substrate).

The paper's center-wide PFS (Lustre-class) is disk-backed; its high
per-access latency is why the 2-pass DRAM-only quicksort of Table VI loses
to NVMalloc's hybrid configuration by ~10x.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Generator

from repro.devices.base import AccessKind, StorageDevice
from repro.devices.specs import HDD_7200RPM, DeviceSpec
from repro.errors import DeviceError
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.util.recorder import MetricsRecorder


class HDD(StorageDevice):
    """A disk whose latency depends on access locality.

    Sequential follow-on accesses skip the seek penalty; ``sequential_run``
    accesses after a seek pay only transfer time, which is how a striped
    PFS actually behaves for large streaming I/O.
    """

    def __init__(
        self,
        engine: Engine,
        spec: DeviceSpec = HDD_7200RPM,
        *,
        capacity: int | None = None,
        name: str | None = None,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        if spec.kind != "hdd":
            raise DeviceError(f"spec {spec.name} is not an HDD")
        if capacity is not None:
            spec = spec.scaled(capacity=capacity)
        super().__init__(engine, spec, name=name, metrics=metrics)
        # Sequential-stream detection: storage servers keep per-stream
        # readahead / write-behind state, so concurrent sequential
        # streams do not pay a seek on every interleaved request.  A
        # request continuing at any recently-seen end position is treated
        # as sequential; the tracked-position set is bounded like a real
        # server's stream table.
        self._stream_tails: OrderedDict[tuple[object, int], None] = OrderedDict()
        self._max_streams = 512

    def access_extent(
        self,
        kind: AccessKind,
        offset: int,
        nbytes: int,
        *,
        stream: object = None,
    ) -> Generator[Event, object, None]:
        """Process generator: access ``nbytes`` at ``offset``.

        Charges the seek latency only when this ``stream``'s last access
        did not end where this one begins.
        """
        if offset < 0 or nbytes < 0:
            raise DeviceError(f"{self.name}: bad extent ({offset}, {nbytes})")
        req = self._channel.acquire_now()
        if req is None:
            req = self._channel.request()
            yield req
        try:
            bw = (
                self.spec.read_bw if kind is AccessKind.READ else self.spec.write_bw
            )
            duration = nbytes / bw
            key = (stream, offset)
            if key in self._stream_tails:
                del self._stream_tails[key]
            else:
                duration += self.spec.latency  # new stream: seek
            self._stream_tails[(stream, offset + nbytes)] = None
            while len(self._stream_tails) > self._max_streams:
                self._stream_tails.popitem(last=False)
            self.metrics.add(f"device.{self.name}.{kind.value}.bytes", nbytes)
            self.metrics.add(f"device.{self.name}.{kind.value}.time", duration)
            yield self.engine.timeout(duration)
        finally:
            self._channel.release(req)

    def read_extent(
        self, offset: int, nbytes: int, *, stream: object = None
    ) -> Generator[Event, object, None]:
        """Process generator: read ``nbytes`` at ``offset``."""
        yield from self.access_extent(AccessKind.READ, offset, nbytes, stream=stream)

    def write_extent(
        self, offset: int, nbytes: int, *, stream: object = None
    ) -> Generator[Event, object, None]:
        """Process generator: write ``nbytes`` at ``offset``."""
        yield from self.access_extent(AccessKind.WRITE, offset, nbytes, stream=stream)
