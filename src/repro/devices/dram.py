"""DRAM model: the fast memory partition against which NVM is compared."""

from __future__ import annotations

from repro.devices.base import StorageDevice
from repro.devices.specs import DDR3_1600, DeviceSpec
from repro.errors import CapacityError
from repro.sim.engine import Engine
from repro.util.recorder import MetricsRecorder


class DRAM(StorageDevice):
    """Node-local DRAM with explicit capacity accounting.

    The paper's Fig. 3 hinges on DRAM being a hard budget (2 of 8 cores'
    working sets fit, 8 don't), so allocations here are strict: exceeding
    the budget raises :class:`CapacityError` rather than silently swapping —
    compute-node kernels on extreme-scale machines have swap disabled.
    """

    def __init__(
        self,
        engine: Engine,
        spec: DeviceSpec = DDR3_1600,
        *,
        capacity: int | None = None,
        name: str | None = None,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        if capacity is not None:
            spec = spec.scaled(capacity=capacity)
        super().__init__(engine, spec, name=name, metrics=metrics)
        self._allocated = 0

    @property
    def capacity(self) -> int:
        """Total DRAM capacity in bytes."""
        return self.spec.capacity

    @property
    def allocated(self) -> int:
        """Bytes currently reserved by explicit allocations."""
        return self._allocated

    @property
    def available(self) -> int:
        """Bytes not currently reserved."""
        return self.spec.capacity - self._allocated

    def allocate(self, nbytes: int) -> None:
        """Reserve ``nbytes`` of DRAM; raises when the budget is exceeded."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self._allocated + nbytes > self.spec.capacity:
            raise CapacityError(
                f"{self.name}: cannot allocate {nbytes} bytes "
                f"({self._allocated} of {self.spec.capacity} in use)"
            )
        self._allocated += nbytes

    def free(self, nbytes: int) -> None:
        """Release a prior reservation."""
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        if nbytes > self._allocated:
            raise CapacityError(
                f"{self.name}: freeing {nbytes} bytes but only "
                f"{self._allocated} allocated"
            )
        self._allocated -= nbytes
