"""Device characteristic catalog (paper Table I, October 2011 market data).

Bandwidths use decimal vendor units; latencies are per-access setup costs.
``channels`` approximates internal parallelism (how many requests a device
services concurrently before queueing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB, MB


@dataclass(frozen=True)
class DeviceSpec:
    """Static characteristics of a storage or memory device."""

    name: str
    kind: str  # "dram" | "ssd" | "hdd"
    interface: str
    read_bw: float  # bytes/second
    write_bw: float  # bytes/second
    latency: float  # seconds per access
    capacity: int  # bytes
    cost_usd: float
    channels: int = 1
    # SSD-only knobs (ignored for other kinds).
    flash_page: int = 4096  # bytes
    pages_per_block: int = 64
    erase_latency: float = 1.5e-3  # seconds per block erase
    endurance_cycles: int = 100_000  # P/E cycles per block (SLC-class)

    def __post_init__(self) -> None:
        if self.read_bw <= 0 or self.write_bw <= 0:
            raise ValueError(f"{self.name}: bandwidths must be positive")
        if self.latency < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")
        if self.capacity <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.channels < 1:
            raise ValueError(f"{self.name}: channels must be >= 1")

    def read_time(self, nbytes: int) -> float:
        """Service time for one read of ``nbytes``."""
        return self.latency + nbytes / self.read_bw

    def write_time(self, nbytes: int) -> float:
        """Service time for one write of ``nbytes``."""
        return self.latency + nbytes / self.write_bw

    def scaled(self, *, capacity: int | None = None, name: str | None = None) -> "DeviceSpec":
        """A copy with a different capacity (for scaled-down experiments)."""
        from dataclasses import replace

        return replace(
            self,
            capacity=capacity if capacity is not None else self.capacity,
            name=name if name is not None else self.name,
        )

    def partition(self, name: str, capacity: int) -> "DeviceSpec":
        """A named slice of this device: same timing, smaller capacity.

        Models dedicating part of a device to a separate role — e.g. the
        node-local chunk-cache partition the FUSE client's second cache
        tier lives on (``repro.fusefs.localtier``).
        """
        if capacity > self.capacity:
            raise ValueError(
                f"{self.name}: partition of {capacity} exceeds device "
                f"capacity {self.capacity}"
            )
        return self.scaled(capacity=capacity, name=name)


# --- Table I -----------------------------------------------------------

INTEL_X25E = DeviceSpec(
    name="Intel X25-E",
    kind="ssd",
    interface="SATA",
    read_bw=250 * MB,
    write_bw=170 * MB,
    latency=75e-6,
    capacity=32 * GB,
    cost_usd=589.0,
    channels=1,
    endurance_cycles=100_000,  # SLC
)

FUSIONIO_IODRIVE_DUO = DeviceSpec(
    name="Fusion IO ioDrive Duo",
    kind="ssd",
    interface="PCIe",
    read_bw=1_500 * MB,
    write_bw=1_000 * MB,
    latency=30e-6,
    capacity=640 * GB,
    cost_usd=15_378.0,
    channels=4,
    endurance_cycles=10_000,  # MLC
)

OCZ_REVODRIVE = DeviceSpec(
    name="OCZ RevoDrive",
    kind="ssd",
    interface="PCIe",
    read_bw=540 * MB,
    write_bw=480 * MB,
    latency=50e-6,  # not published; between SATA and high-end PCIe
    capacity=240 * GB,
    cost_usd=531.0,
    channels=2,
    endurance_cycles=10_000,  # MLC
)

DDR3_1600 = DeviceSpec(
    name="DDR3-1600",
    kind="dram",
    interface="DIMM",
    read_bw=12_800 * MB,
    write_bw=12_800 * MB,
    latency=12e-9,
    capacity=16 * GB,
    cost_usd=150.0,
    channels=2,
)

# Not in Table I, but needed for the parallel-file-system substrate used by
# the 2-pass DRAM-only quicksort (Table VI) and MM input/output staging.
HDD_7200RPM = DeviceSpec(
    name="7200rpm HDD",
    kind="hdd",
    interface="SAS",
    read_bw=120 * MB,
    write_bw=110 * MB,
    latency=8e-3,  # seek + rotational
    capacity=2_000 * GB,
    cost_usd=200.0,
    channels=1,
)

DEVICE_CATALOG: dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in (
        INTEL_X25E,
        FUSIONIO_IODRIVE_DUO,
        OCZ_REVODRIVE,
        DDR3_1600,
        HDD_7200RPM,
    )
}
