"""SSD device: Table I timing plus FTL wear accounting."""

from __future__ import annotations

from collections.abc import Generator

from repro.devices.base import AccessKind, StorageDevice
from repro.devices.ftl import FlashTranslationLayer
from repro.devices.specs import INTEL_X25E, DeviceSpec
from repro.errors import DeviceError
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.util.recorder import MetricsRecorder


class SSD(StorageDevice):
    """A solid-state device with logical extents mapped through an FTL.

    ``read_extent`` / ``write_extent`` take logical byte offsets; writes
    update the FTL (out-of-place, possibly triggering garbage collection,
    whose relocation and erase time is charged on top of the transfer).
    The size-only :meth:`read` / :meth:`write` inherited from
    :class:`StorageDevice` remain available for callers that do their own
    placement; they bypass FTL mapping but still account transfer time.
    """

    def __init__(
        self,
        engine: Engine,
        spec: DeviceSpec = INTEL_X25E,
        *,
        capacity: int | None = None,
        name: str | None = None,
        metrics: MetricsRecorder | None = None,
        wear_leveling: bool = True,
        track_ftl: bool = True,
    ) -> None:
        if spec.kind != "ssd":
            raise DeviceError(f"spec {spec.name} is not an SSD")
        if capacity is not None:
            spec = spec.scaled(capacity=capacity)
        super().__init__(engine, spec, name=name, metrics=metrics)
        self.track_ftl = track_ftl
        self.ftl: FlashTranslationLayer | None = None
        if track_ftl:
            self.ftl = FlashTranslationLayer(
                capacity=spec.capacity,
                page_size=spec.flash_page,
                pages_per_block=spec.pages_per_block,
                endurance_cycles=spec.endurance_cycles,
                wear_leveling=wear_leveling,
            )
        # GC-time counter, resolved on first GC event (snapshot-identical
        # to on-demand ``metrics.add``: never materializes without GC).
        self._gc_counter = None

    # ------------------------------------------------------------------
    @property
    def logical_capacity(self) -> int:
        """Usable bytes (after FTL overprovisioning, when tracked)."""
        if self.ftl is not None:
            return self.ftl.logical_pages * self.ftl.page_size
        return self.spec.capacity

    def _page_range(self, offset: int, nbytes: int) -> range:
        if offset < 0 or nbytes < 0:
            raise DeviceError(f"{self.name}: bad extent ({offset}, {nbytes})")
        if offset + nbytes > self.logical_capacity:
            raise DeviceError(
                f"{self.name}: extent [{offset}, {offset + nbytes}) exceeds "
                f"logical capacity {self.logical_capacity}"
            )
        assert self.ftl is not None
        page = self.ftl.page_size
        first = offset // page
        last = (offset + nbytes - 1) // page if nbytes else first - 1
        return range(first, last + 1)

    # ------------------------------------------------------------------
    def read_extent(self, offset: int, nbytes: int) -> Generator[Event, object, None]:
        """Process generator: read ``nbytes`` at logical ``offset``."""
        if self.ftl is not None:
            self._page_range(offset, nbytes)  # bounds check
        return self.access(AccessKind.READ, nbytes)

    def write_extent(self, offset: int, nbytes: int) -> Generator[Event, object, None]:
        """Process generator: write ``nbytes`` at logical ``offset``.

        Holds the device channel for transfer time plus any garbage
        collection (relocation traffic + block erases) the write triggered.
        """
        if nbytes == 0:
            return
        gc_penalty = 0.0
        if self.ftl is not None:
            pages = self._page_range(offset, nbytes)
            relocated, erases = self.ftl.write_pages(pages)
            gc_penalty = (
                relocated * self.ftl.page_size / self.spec.write_bw
                + erases * self.spec.erase_latency
            )
            if gc_penalty:
                counter = self._gc_counter
                if counter is None:
                    counter = self._gc_counter = self.metrics.counter(
                        f"device.{self.name}.gc.time"
                    )
                counter.total += gc_penalty
                counter.count += 1
        req = self._acquire_now()
        if req is None:
            req = self._acquire()
            yield req
        try:
            # Same Counter objects the size-only write path uses.
            bytes_counter, time_counter, time_fn = self._write_stats
            duration = time_fn(nbytes) + gc_penalty
            if self._degrade_until > self.engine._now:
                duration *= self._degrade_factor
            bytes_counter.total += nbytes
            bytes_counter.count += 1
            time_counter.total += duration
            time_counter.count += 1
            yield self.engine.timeout(duration)
        finally:
            self._release(req)

    def trim_extent(self, offset: int, nbytes: int) -> None:
        """Discard a logical extent (frees flash, no time charged)."""
        if self.ftl is not None and nbytes > 0:
            self.ftl.trim_pages(self._page_range(offset, nbytes))

    # ------------------------------------------------------------------
    @property
    def write_amplification(self) -> float:
        """Flash pages programmed per host page written (1.0 without FTL)."""
        if self.ftl is None:
            return 1.0
        return self.ftl.stats.write_amplification

    def wear_report(self) -> dict[str, float]:
        """Summary of device wear for lifetime analysis."""
        if self.ftl is None:
            return {"write_amplification": 1.0}
        low, high = self.ftl.erase_count_spread()
        return {
            "host_pages_written": self.ftl.stats.host_pages_written,
            "flash_pages_written": self.ftl.stats.flash_pages_written,
            "pages_relocated": self.ftl.stats.pages_relocated,
            "blocks_erased": self.ftl.stats.blocks_erased,
            "write_amplification": self.ftl.stats.write_amplification,
            "erase_min": low,
            "erase_max": high,
        }
