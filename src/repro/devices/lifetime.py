"""SSD lifetime estimation from endurance and write traffic.

Backs the paper's §I/§III-A lifetime argument ("NVM devices such as SSDs
have limited write cycles. Our design needs to optimize the total write
volume on these devices") with numbers: given a device spec and a host
write rate, how long until the flash endurance budget is exhausted?
"""

from __future__ import annotations

from repro.devices.specs import DeviceSpec


def endurance_budget_bytes(spec: DeviceSpec) -> float:
    """Total bytes of flash programs the device can absorb.

    Capacity times per-block P/E cycles: the standard first-order
    endurance model (every byte of capacity can be rewritten
    ``endurance_cycles`` times).
    """
    if spec.kind != "ssd":
        raise ValueError(f"{spec.name} is not an SSD")
    return float(spec.capacity) * spec.endurance_cycles


def estimated_lifetime_days(
    spec: DeviceSpec,
    host_bytes_per_day: float,
    *,
    write_amplification: float = 1.0,
) -> float:
    """Days until the endurance budget is exhausted.

    ``write_amplification`` converts host writes to flash programs; take
    it from a measured :class:`~repro.devices.ftl.FTLStats` for the
    workload in question (see ``examples/device_wear_study.py``).
    """
    if host_bytes_per_day <= 0:
        raise ValueError("host_bytes_per_day must be positive")
    if write_amplification < 1.0:
        raise ValueError("write amplification cannot be below 1.0")
    flash_per_day = host_bytes_per_day * write_amplification
    return endurance_budget_bytes(spec) / flash_per_day


def lifetime_gain_from_optimization(
    unoptimized_bytes: float, optimized_bytes: float
) -> float:
    """Lifetime multiplier from a write-volume optimization.

    For the paper's Table VII traffic (19.3 GB vs 504 MB per run), this
    is ~38x more device lifetime for the same application work.
    """
    if optimized_bytes <= 0 or unoptimized_bytes <= 0:
        raise ValueError("byte volumes must be positive")
    return unoptimized_bytes / optimized_bytes
