"""Common storage-device timing model."""

from __future__ import annotations

import enum
from collections.abc import Generator

from repro.devices.specs import DeviceSpec
from repro.errors import DeviceError
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import Resource
from repro.util.recorder import MetricsRecorder


class AccessKind(enum.Enum):
    """Direction of a device access."""

    READ = "read"
    WRITE = "write"


class StorageDevice:
    """A device that serves reads and writes with queueing.

    Each device owns a :class:`Resource` with ``spec.channels`` slots; an
    access holds one slot for its full service time, so concurrent clients
    queue exactly as they would at a real device's submission queue.
    """

    def __init__(
        self,
        engine: Engine,
        spec: DeviceSpec,
        *,
        name: str | None = None,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.engine = engine
        self.spec = spec
        self.name = name or spec.name
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self._channel = Resource(engine, capacity=spec.channels, name=self.name)
        # Accesses are the hottest metric call sites: resolve the counter
        # objects and the per-kind timing function once instead of
        # formatting two names and dispatching on kind per access.
        self._counters = {
            kind: (
                self.metrics.counter(f"device.{self.name}.{kind.value}.bytes"),
                self.metrics.counter(f"device.{self.name}.{kind.value}.time"),
                spec.read_time if kind is AccessKind.READ else spec.write_time,
            )
            for kind in AccessKind
        }
        # Kind-resolved views of ``_counters`` plus pre-bound slot
        # acquire/release, so the per-access hot loop does no dict/enum
        # lookups and one attribute hop less per call.
        self._read_stats = self._counters[AccessKind.READ]
        self._write_stats = self._counters[AccessKind.WRITE]
        self._acquire = self._channel.request
        self._acquire_now = self._channel.acquire_now
        self._release = self._channel.release
        # Only call the _pre_access hook when a subclass actually has one.
        self._custom_pre_access = (
            type(self)._pre_access is not StorageDevice._pre_access
        )
        # Transient service-rate degradation (fault injection): until the
        # virtual clock passes the mark, every access's service time is
        # multiplied by the factor.  0.0 means "never degraded" and keeps
        # the hot path to one float compare.
        self._degrade_until = 0.0
        self._degrade_factor = 1.0

    # ------------------------------------------------------------------
    def degrade(self, until: float, factor: float) -> None:
        """Degrade the device's service rate (fault-injection hook).

        Until virtual time ``until``, every access takes ``factor`` times
        its nominal service time — a device whose controller is busy
        (background GC, thermal throttling) but still correct.  Distinct
        from :meth:`~repro.store.benefactor.Benefactor.slow_down`'s flat
        per-op surcharge: a rate factor scales *with* transfer size, so
        large transfers hurt proportionally more.
        """
        if factor < 1.0:
            raise DeviceError(f"{self.name}: degrade factor {factor} < 1")
        self._degrade_until = until
        self._degrade_factor = factor

    # ------------------------------------------------------------------
    def service_time(self, kind: AccessKind, nbytes: int) -> float:
        """Raw service time for a single access, before queueing."""
        if kind is AccessKind.READ:
            return self.spec.read_time(nbytes)
        return self.spec.write_time(nbytes)

    def _pre_access(self, kind: AccessKind, nbytes: int) -> None:
        """Hook for subclasses (FTL accounting etc.); runs at grant time."""

    def access(
        self, kind: AccessKind, nbytes: int
    ) -> Generator[Event, object, None]:
        """Process generator: perform one access of ``nbytes``."""
        if nbytes < 0:
            raise DeviceError(f"{self.name}: negative access size {nbytes}")
        req = self._acquire_now()
        if req is None:
            req = self._acquire()
            yield req
        try:
            if self._custom_pre_access:
                self._pre_access(kind, nbytes)
            bytes_counter, time_counter, time_fn = (
                self._read_stats if kind is AccessKind.READ else self._write_stats
            )
            duration = time_fn(nbytes)
            if self._degrade_until > self.engine._now:
                duration *= self._degrade_factor
            bytes_counter.total += nbytes
            bytes_counter.count += 1
            time_counter.total += duration
            time_counter.count += 1
            yield self.engine.timeout(duration)
        finally:
            self._release(req)

    def access_run(
        self, kind: AccessKind, sizes: "list[int] | tuple[int, ...]"
    ) -> Generator[Event, object, None]:
        """Process generator: one access covering a run of segments.

        A cohort variant of :meth:`access`: the whole run is served as a
        single device access of ``sum(sizes)`` bytes — one slot grant,
        one service timeout, one busy-interval update, and one counter
        update, with the total computed in a vectorized pass.  Use it
        where the model defines a multi-segment run as one transfer (an
        N-page fault run, a contiguous flush run); it is bit-identical
        to ``access(kind, sum(sizes))``, NOT to N separate accesses.
        """
        import numpy as np

        n = len(sizes)
        if not n:
            total = 0
        elif n == 1:
            total = sizes[0]
        else:
            total = int(np.add.reduce(np.asarray(sizes, dtype=np.int64)))
        return self.access(kind, total)

    def read(self, nbytes: int) -> Generator[Event, object, None]:
        """Process generator: one read access."""
        return self.access(AccessKind.READ, nbytes)

    def write(self, nbytes: int) -> Generator[Event, object, None]:
        """Process generator: one write access."""
        return self.access(AccessKind.WRITE, nbytes)

    # ------------------------------------------------------------------
    def bytes_read(self) -> float:
        """Total bytes read from this device."""
        return self.metrics.value(f"device.{self.name}.read.bytes")

    def bytes_written(self) -> float:
        """Total bytes written to this device."""
        return self.metrics.value(f"device.{self.name}.write.bytes")

    def busy_seconds(self) -> float:
        """Slot-seconds of service this device has delivered so far."""
        return self._channel.busy_seconds()

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of slot-seconds busy over ``elapsed`` (default: now)."""
        window = elapsed if elapsed is not None else self.engine.now
        if window <= 0:
            return 0.0
        return self._channel.busy_seconds() / (window * self.spec.channels)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
