"""Common storage-device timing model."""

from __future__ import annotations

import enum
from collections.abc import Generator

from repro.devices.specs import DeviceSpec
from repro.errors import DeviceError
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import Resource
from repro.util.recorder import MetricsRecorder


class AccessKind(enum.Enum):
    """Direction of a device access."""

    READ = "read"
    WRITE = "write"


class StorageDevice:
    """A device that serves reads and writes with queueing.

    Each device owns a :class:`Resource` with ``spec.channels`` slots; an
    access holds one slot for its full service time, so concurrent clients
    queue exactly as they would at a real device's submission queue.
    """

    def __init__(
        self,
        engine: Engine,
        spec: DeviceSpec,
        *,
        name: str | None = None,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.engine = engine
        self.spec = spec
        self.name = name or spec.name
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self._channel = Resource(engine, capacity=spec.channels, name=self.name)

    # ------------------------------------------------------------------
    def service_time(self, kind: AccessKind, nbytes: int) -> float:
        """Raw service time for a single access, before queueing."""
        if kind is AccessKind.READ:
            return self.spec.read_time(nbytes)
        return self.spec.write_time(nbytes)

    def _pre_access(self, kind: AccessKind, nbytes: int) -> None:
        """Hook for subclasses (FTL accounting etc.); runs at grant time."""

    def access(
        self, kind: AccessKind, nbytes: int
    ) -> Generator[Event, object, None]:
        """Process generator: perform one access of ``nbytes``."""
        if nbytes < 0:
            raise DeviceError(f"{self.name}: negative access size {nbytes}")
        req = self._channel.request()
        yield req
        try:
            self._pre_access(kind, nbytes)
            duration = self.service_time(kind, nbytes)
            self.metrics.add(f"device.{self.name}.{kind.value}.bytes", nbytes)
            self.metrics.add(f"device.{self.name}.{kind.value}.time", duration)
            yield self.engine.timeout(duration)
        finally:
            self._channel.release(req)

    def read(self, nbytes: int) -> Generator[Event, object, None]:
        """Process generator: one read access."""
        yield from self.access(AccessKind.READ, nbytes)

    def write(self, nbytes: int) -> Generator[Event, object, None]:
        """Process generator: one write access."""
        yield from self.access(AccessKind.WRITE, nbytes)

    # ------------------------------------------------------------------
    def bytes_read(self) -> float:
        """Total bytes read from this device."""
        return self.metrics.value(f"device.{self.name}.read.bytes")

    def bytes_written(self) -> float:
        """Total bytes written to this device."""
        return self.metrics.value(f"device.{self.name}.write.bytes")

    def busy_seconds(self) -> float:
        """Slot-seconds of service this device has delivered so far."""
        return self._channel.busy_seconds()

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of slot-seconds busy over ``elapsed`` (default: now)."""
        window = elapsed if elapsed is not None else self.engine.now
        if window <= 0:
            return 0.0
        return self._channel.busy_seconds() / (window * self.spec.channels)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
