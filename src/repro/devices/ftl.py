"""Page-mapped flash translation layer.

Models the SSD internals that matter to the paper's lifetime argument
(§III-A "Optimizing NVM performance and lifetime"): logical-to-physical
page mapping, out-of-place writes, greedy garbage collection, wear-aware
block selection, per-block erase budgets, and write-amplification
accounting.  NVMalloc's dirty-page write optimization (Table VII) reduces
host writes; the FTL shows how that translates into device wear.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import CapacityError, EnduranceExceededError

#: Gate for the frontier bulk-write fast path in :meth:`FTL.write_pages`.
#: The fast path is taken only when garbage collection provably cannot
#: trigger, so flipping this off must not change any mapping, count, or
#: returned GC work; tests fuzz that identity (tests/test_bulk_runs_fuzz.py).
BULK_WRITE_RUNS = True


@dataclass
class FTLStats:
    """Cumulative FTL activity."""

    host_pages_written: int = 0
    flash_pages_written: int = 0  # host writes + GC relocations
    pages_relocated: int = 0
    blocks_erased: int = 0

    @property
    def write_amplification(self) -> float:
        """Flash pages programmed per host page written."""
        if self.host_pages_written == 0:
            return 1.0
        return self.flash_pages_written / self.host_pages_written


class FlashTranslationLayer:
    """Page-mapped FTL with greedy GC and wear-aware allocation.

    Physical layout: ``num_blocks`` blocks of ``pages_per_block`` pages.
    A fraction of physical space (``overprovision``) is hidden from the
    logical capacity to give GC headroom, as real SSDs do.
    """

    def __init__(
        self,
        *,
        capacity: int,
        page_size: int = 4096,
        pages_per_block: int = 64,
        overprovision: float = 0.07,
        endurance_cycles: int = 100_000,
        wear_leveling: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= overprovision < 0.5:
            raise ValueError(f"unreasonable overprovision {overprovision}")
        self.page_size = page_size
        self.pages_per_block = pages_per_block
        self.endurance_cycles = endurance_cycles
        self.wear_leveling = wear_leveling

        total_pages = capacity // page_size
        self.num_blocks = max(4, total_pages // pages_per_block)
        self.physical_pages = self.num_blocks * pages_per_block
        self.logical_pages = int(self.physical_pages * (1.0 - overprovision))
        if self.logical_pages < 1:
            raise ValueError("capacity too small for geometry")

        # Mapping state.
        self._l2p: dict[int, int] = {}
        self._p2l: dict[int, int] = {}
        # Per-block state.
        self._erase_counts = [0] * self.num_blocks
        self._valid_counts = [0] * self.num_blocks
        self._write_ptr = [0] * self.num_blocks  # next free page slot in block
        # Free blocks as a heap of (erase_count, block): wear-aware
        # allocation pops the least-worn block in O(log n).  Without wear
        # leveling the erase-count key is replaced by the insertion order.
        self._free_heap: list[tuple[int, int]] = [
            (0, b) for b in range(self.num_blocks)
        ]
        self._free_set: set[int] = set(range(self.num_blocks))
        self._free_seq = self.num_blocks  # FIFO key for non-wear-leveled mode
        self._frontier: int | None = None  # block currently absorbing writes

        self.stats = FTLStats()

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _block_of(self, ppn: int) -> int:
        return ppn // self.pages_per_block

    def free_physical_pages(self) -> int:
        """Physical pages available for new writes (free blocks + frontier)."""
        total = len(self._free_set) * self.pages_per_block
        if self._frontier is not None:
            total += self.pages_per_block - self._write_ptr[self._frontier]
        return total

    def erase_count_spread(self) -> tuple[int, int]:
        """(min, max) per-block erase counts — wear-leveling quality metric."""
        return min(self._erase_counts), max(self._erase_counts)

    def mapped_pages(self) -> int:
        """Number of live logical pages."""
        return len(self._l2p)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def read_page(self, lpn: int) -> bool:
        """Whether logical page ``lpn`` is mapped (reads of unmapped pages
        return zeroes on a real device; callers may care)."""
        self._check_lpn(lpn)
        return lpn in self._l2p

    def write_pages(self, lpns: "list[int] | range") -> tuple[int, int]:
        """Write the given logical pages out-of-place.

        Returns ``(relocated_pages, erases)`` triggered by garbage
        collection during this write burst, so the device model can charge
        the corresponding time.
        """
        # Bulk-run fast path: when the frontier block has room for the
        # whole run, every page lands at consecutive slots of that block
        # and garbage collection cannot trigger (GC only runs when a new
        # frontier must be picked).  Same mapping updates as the generic
        # loop, minus the per-page allocator/GC bookkeeping.
        n = len(lpns)
        frontier = self._frontier
        if (
            n
            and BULK_WRITE_RUNS
            and frontier is not None
            and self._write_ptr[frontier] + n <= self.pages_per_block
        ):
            logical = self.logical_pages
            per_block = self.pages_per_block
            l2p = self._l2p
            p2l = self._p2l
            valid = self._valid_counts
            ppn = frontier * per_block + self._write_ptr[frontier]
            for lpn in lpns:
                if not 0 <= lpn < logical:
                    raise CapacityError(
                        f"logical page {lpn} out of range "
                        f"(0..{logical - 1})"
                    )
                old = l2p.pop(lpn, None)
                if old is not None:
                    del p2l[old]
                    valid[old // per_block] -= 1
                l2p[lpn] = ppn
                p2l[ppn] = lpn
                ppn += 1
            self._write_ptr[frontier] += n
            valid[frontier] += n
            self.stats.host_pages_written += n
            self.stats.flash_pages_written += n
            return (0, 0)
        relocated_before = self.stats.pages_relocated
        erases_before = self.stats.blocks_erased
        for lpn in lpns:
            self._check_lpn(lpn)
            self._invalidate(lpn)
            ppn = self._allocate_page()
            self._l2p[lpn] = ppn
            self._p2l[ppn] = lpn
            self._valid_counts[self._block_of(ppn)] += 1
            self.stats.host_pages_written += 1
            self.stats.flash_pages_written += 1
        return (
            self.stats.pages_relocated - relocated_before,
            self.stats.blocks_erased - erases_before,
        )

    def trim_pages(self, lpns: "list[int] | range") -> None:
        """Discard logical pages (TRIM): frees flash without rewriting."""
        for lpn in lpns:
            self._check_lpn(lpn)
            self._invalidate(lpn)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise CapacityError(
                f"logical page {lpn} out of range (0..{self.logical_pages - 1})"
            )

    def _invalidate(self, lpn: int) -> None:
        ppn = self._l2p.pop(lpn, None)
        if ppn is not None:
            del self._p2l[ppn]
            self._valid_counts[self._block_of(ppn)] -= 1

    def _free_block(self, block: int) -> None:
        key = self._erase_counts[block] if self.wear_leveling else self._free_seq
        self._free_seq += 1
        heapq.heappush(self._free_heap, (key, block))
        self._free_set.add(block)

    def _pick_free_block(self) -> int:
        # Wear-aware: the heap yields the least-worn free block (or FIFO
        # order when wear leveling is disabled).
        while True:
            _, block = heapq.heappop(self._free_heap)
            if block in self._free_set:
                self._free_set.remove(block)
                return block

    def _allocate_page(self) -> int:
        if self._frontier is None or (
            self._write_ptr[self._frontier] >= self.pages_per_block
        ):
            # Keep one spare block in reserve for GC relocation headroom.
            if len(self._free_set) <= 1:
                self._garbage_collect()
            # GC relocations may have installed a fresh, partially used
            # frontier; re-check before burning another free block, or
            # its remaining slots would leak.
            if self._frontier is None or (
                self._write_ptr[self._frontier] >= self.pages_per_block
            ):
                if not self._free_set:
                    raise CapacityError("FTL out of free blocks")
                self._frontier = self._pick_free_block()
        block = self._frontier
        ppn = block * self.pages_per_block + self._write_ptr[block]
        self._write_ptr[block] += 1
        return ppn

    def _garbage_collect(self) -> None:
        """Greedy GC: reclaim the full block with the fewest valid pages."""
        candidates = [
            b
            for b in range(self.num_blocks)
            if b != self._frontier
            and b not in self._free_set
            and self._write_ptr[b] >= self.pages_per_block
        ]
        if not candidates:
            raise CapacityError("FTL garbage collection found no victim block")
        if self.wear_leveling:
            # Greedy on reclaimed space, wear-aware on ties: equally stale
            # blocks are reclaimed least-worn-first so victims rotate.
            victim = min(
                candidates,
                key=lambda b: (self._valid_counts[b], self._erase_counts[b]),
            )
        else:
            victim = min(candidates, key=lambda b: self._valid_counts[b])
        # Relocate valid pages. They go through the normal allocation path,
        # which may consume the reserve block but never recurses into GC
        # (the victim frees at least as many pages as it relocates thanks
        # to overprovisioning).
        moved: list[tuple[int, int]] = []  # (lpn, old_ppn)
        base = victim * self.pages_per_block
        for slot in range(self.pages_per_block):
            ppn = base + slot
            lpn = self._p2l.get(ppn)
            if lpn is not None:
                moved.append((lpn, ppn))
        if len(moved) >= self.pages_per_block:
            raise CapacityError(
                "FTL thrashing: victim block is fully valid (device full)"
            )
        for lpn, old_ppn in moved:
            del self._p2l[old_ppn]
            self._valid_counts[victim] -= 1
            new_ppn = self._relocation_target()
            self._l2p[lpn] = new_ppn
            self._p2l[new_ppn] = lpn
            self._valid_counts[self._block_of(new_ppn)] += 1
            self.stats.pages_relocated += 1
            self.stats.flash_pages_written += 1
        # Erase the victim.
        self._erase_counts[victim] += 1
        if self._erase_counts[victim] > self.endurance_cycles:
            raise EnduranceExceededError(
                f"block {victim} exceeded {self.endurance_cycles} P/E cycles"
            )
        self._write_ptr[victim] = 0
        self._free_block(victim)
        self.stats.blocks_erased += 1

    def _relocation_target(self) -> int:
        """A physical page for a GC relocation (uses the frontier/reserve)."""
        if self._frontier is None or (
            self._write_ptr[self._frontier] >= self.pages_per_block
        ):
            if not self._free_set:
                raise CapacityError("FTL out of space during relocation")
            self._frontier = self._pick_free_block()
        block = self._frontier
        ppn = block * self.pages_per_block + self._write_ptr[block]
        self._write_ptr[block] += 1
        return ppn
