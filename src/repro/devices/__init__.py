"""Device models seeded from the paper's Table I.

Devices are *timing and wear* models: they charge virtual time for accesses
(latency + size/bandwidth, with FIFO queueing per device channel) and, for
SSDs, track flash-translation-layer state (page mapping, erase counts,
write amplification).  Payload bytes live one layer up, in the store.
"""

from repro.devices.specs import (
    DDR3_1600,
    DEVICE_CATALOG,
    FUSIONIO_IODRIVE_DUO,
    HDD_7200RPM,
    INTEL_X25E,
    OCZ_REVODRIVE,
    DeviceSpec,
)
from repro.devices.base import AccessKind, StorageDevice
from repro.devices.dram import DRAM
from repro.devices.ftl import FlashTranslationLayer
from repro.devices.ssd import SSD
from repro.devices.hdd import HDD

__all__ = [
    "AccessKind",
    "DDR3_1600",
    "DEVICE_CATALOG",
    "DRAM",
    "DeviceSpec",
    "FlashTranslationLayer",
    "FUSIONIO_IODRIVE_DUO",
    "HDD",
    "HDD_7200RPM",
    "INTEL_X25E",
    "OCZ_REVODRIVE",
    "SSD",
    "StorageDevice",
]
