"""Cluster utilization reporting.

Every device channel, NIC port, and core is a FIFO resource that
accounts its busy slot-seconds; this module folds those into the
per-component utilization view an operator would pull from a real
cluster's monitoring — useful for understanding *where* an experiment's
time went (e.g. Fig. 3's broadcast growth shows up as benefactor-NIC RX
saturation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class ComponentUtilization:
    """Busy fraction of one hardware component over a window."""

    component: str  # e.g. "node003.ssd"
    kind: str  # "core" | "dram" | "ssd" | "nic.tx" | "nic.rx"
    busy_seconds: float
    utilization: float  # busy slot-seconds / (window x slots)


def utilization_report(
    cluster: Cluster, *, window: float | None = None
) -> list[ComponentUtilization]:
    """Per-component utilization over ``window`` (default: virtual now).

    Rows are ordered hottest-first within each kind.
    """
    elapsed = window if window is not None else cluster.engine.now
    rows: list[ComponentUtilization] = []

    def add(component: str, kind: str, busy: float, slots: int) -> None:
        util = busy / (elapsed * slots) if elapsed > 0 else 0.0
        rows.append(
            ComponentUtilization(
                component=component, kind=kind,
                busy_seconds=busy, utilization=util,
            )
        )

    for node in cluster.nodes:
        core_busy = sum(core.busy_seconds() for core in node.cores)
        add(f"{node.name}.cores", "core", core_busy, node.num_cores)
        add(
            f"{node.name}.dram", "dram",
            node.dram.busy_seconds(), node.dram.spec.channels,
        )
        if node.ssd is not None:
            add(
                f"{node.name}.ssd", "ssd",
                node.ssd.busy_seconds(), node.ssd.spec.channels,
            )
        add(f"{node.name}.nic.tx", "nic.tx", node.nic.tx.busy_seconds(), 1)
        add(f"{node.name}.nic.rx", "nic.rx", node.nic.rx.busy_seconds(), 1)

    rows.sort(key=lambda r: (r.kind, -r.utilization))
    return rows


def hottest(
    cluster: Cluster, kind: str, *, window: float | None = None
) -> ComponentUtilization:
    """The busiest component of one kind (e.g. the bottleneck SSD)."""
    rows = [r for r in utilization_report(cluster, window=window) if r.kind == kind]
    if not rows:
        raise ValueError(f"no components of kind {kind!r}")
    return max(rows, key=lambda r: r.utilization)
