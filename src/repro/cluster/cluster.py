"""Cluster container: engine + nodes + fabric + shared metrics."""

from __future__ import annotations

from repro.cluster.cpu import CPUSpec
from repro.cluster.node import Node
from repro.devices.specs import DeviceSpec
from repro.network.fabric import Network
from repro.network.link import LinkSpec
from repro.sim.engine import Engine
from repro.util.recorder import MetricsRecorder


class Cluster:
    """A homogeneous cluster of compute nodes on one switched fabric.

    ``ssd_nodes`` selects which node ids carry a node-local SSD; the paper
    evaluates both "every node equipped" (L-SSD runs) and "a dedicated
    subset of fat nodes" (R-SSD runs).
    """

    def __init__(
        self,
        engine: Engine,
        *,
        num_nodes: int,
        cores_per_node: int,
        cpu_spec: CPUSpec,
        dram_spec: DeviceSpec,
        dram_per_node: int,
        link_spec: LinkSpec,
        ssd_spec: DeviceSpec | None = None,
        ssd_capacity: int | None = None,
        ssd_nodes: set[int] | None = None,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"cluster needs >= 1 node, got {num_nodes}")
        self.engine = engine
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self.network = Network(engine, link_spec, metrics=self.metrics)
        equipped = (
            set(range(num_nodes)) if ssd_nodes is None and ssd_spec is not None
            else (ssd_nodes or set())
        )
        self.nodes: list[Node] = []
        for node_id in range(num_nodes):
            spec = ssd_spec if node_id in equipped else None
            self.nodes.append(
                Node(
                    engine,
                    node_id=node_id,
                    num_cores=cores_per_node,
                    cpu_spec=cpu_spec,
                    dram_spec=dram_spec,
                    dram_capacity=dram_per_node,
                    network=self.network,
                    ssd_spec=spec,
                    ssd_capacity=ssd_capacity if spec is not None else None,
                    metrics=self.metrics,
                )
            )

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        """Total cores across all nodes."""
        return sum(n.num_cores for n in self.nodes)

    @property
    def total_dram(self) -> int:
        """Aggregate DRAM capacity in bytes."""
        return sum(n.dram.capacity for n in self.nodes)

    def ssd_equipped_nodes(self) -> list[Node]:
        """Nodes carrying a node-local SSD, in id order."""
        return [n for n in self.nodes if n.has_ssd]

    def node(self, node_id: int) -> Node:
        """The node with id ``node_id``."""
        return self.nodes[node_id]

    def __repr__(self) -> str:
        return (
            f"<Cluster nodes={self.num_nodes} cores={self.total_cores} "
            f"ssd_nodes={len(self.ssd_equipped_nodes())}>"
        )
