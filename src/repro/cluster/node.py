"""A compute node: cores + DRAM + optional node-local SSD + NIC."""

from __future__ import annotations

from repro.cluster.cpu import Core, CPUSpec
from repro.devices.dram import DRAM
from repro.devices.specs import DeviceSpec
from repro.devices.ssd import SSD
from repro.network.fabric import Network
from repro.sim.engine import Engine
from repro.util.recorder import MetricsRecorder


class Node:
    """One cluster node.

    ``ssd`` may be ``None``: the paper's deployment argument (§I) is that
    only a subset of nodes will carry NVM devices; benefactors run on the
    equipped subset.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        node_id: int,
        num_cores: int,
        cpu_spec: CPUSpec,
        dram_spec: DeviceSpec,
        dram_capacity: int,
        network: Network,
        ssd_spec: DeviceSpec | None = None,
        ssd_capacity: int | None = None,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        if num_cores < 1:
            raise ValueError(f"node needs >= 1 core, got {num_cores}")
        self.engine = engine
        self.node_id = node_id
        self.name = f"node{node_id:03d}"
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self.cores = [
            Core(engine, cpu_spec, f"{self.name}.core{c}") for c in range(num_cores)
        ]
        self.dram = DRAM(
            engine,
            dram_spec,
            capacity=dram_capacity,
            name=f"{self.name}.dram",
            metrics=self.metrics,
        )
        self.ssd: SSD | None = None
        if ssd_spec is not None:
            self.ssd = SSD(
                engine,
                ssd_spec,
                capacity=ssd_capacity,
                name=f"{self.name}.ssd",
                metrics=self.metrics,
            )
        self.nic = network.attach(self.name)
        self.network = network

    @property
    def num_cores(self) -> int:
        """Number of cores on this node."""
        return len(self.cores)

    @property
    def has_ssd(self) -> bool:
        """True when the node carries a node-local SSD."""
        return self.ssd is not None

    def __repr__(self) -> str:
        return (
            f"<Node {self.name} cores={self.num_cores} "
            f"dram={self.dram.capacity} ssd={'yes' if self.has_ssd else 'no'}>"
        )
