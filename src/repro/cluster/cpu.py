"""CPU core model.

A core is a unit-capacity resource; computation charges time derived from
an effective flop rate.  The effective rate folds in instruction mix and
DRAM access costs for cache-friendly kernels — the paper's compute phases
are loop-tiled precisely so that DRAM behaves like part of the pipeline.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.resources import Resource


@dataclass(frozen=True)
class CPUSpec:
    """Static characteristics of one core."""

    clock_hz: float
    flops_per_cycle: float = 2.0  # sustained, not peak

    @property
    def flops(self) -> float:
        """Sustained floating-point operations per second."""
        return self.clock_hz * self.flops_per_cycle

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ValueError(f"negative flops: {flops}")
        return flops / self.flops


# Table II: 2.4 GHz cores.  Sustained 2 flops/cycle is typical for tiled
# dense kernels of that era without hand-tuned SIMD.
HAL_CPU = CPUSpec(clock_hz=2.4e9, flops_per_cycle=2.0)


class Core:
    """One hardware core, exclusively held by whoever is computing on it."""

    def __init__(self, engine: Engine, spec: CPUSpec, name: str) -> None:
        self.engine = engine
        self.spec = spec
        self.name = name
        self._res = Resource(engine, capacity=1, name=name)

    def compute(self, flops: float) -> Generator[Event, object, None]:
        """Process generator: occupy the core for ``flops`` worth of work.

        Plain function returning the resource's generator directly (no
        wrapper frame on the per-event resume path).
        """
        return self._res.use(self.spec.compute_time(flops))

    def busy(self, seconds: float) -> Generator[Event, object, None]:
        """Process generator: occupy the core for a fixed duration."""
        return self._res.use(seconds)

    def busy_seconds(self) -> float:
        """Total seconds this core has been occupied."""
        return self._res.busy_seconds()

    def __repr__(self) -> str:
        return f"<Core {self.name}>"
