"""The HAL testbed (paper Table II), with a scaling knob.

Paper scale: 16 nodes x 8 cores @ 2.4 GHz, 8 GB DRAM/node, one 32 GB Intel
X25-E per node, bonded dual GigE.  ``HalConfig.scaled`` shrinks capacities
(DRAM, SSD) by a power-of-two factor while keeping every *ratio* — and the
fixed 256 KB chunk / 4 KB page granularities — intact, so cache-coverage
and DRAM-fit effects reproduce at simulation-friendly sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.cluster import Cluster
from repro.cluster.cpu import HAL_CPU, CPUSpec
from repro.devices.specs import DDR3_1600, INTEL_X25E, DeviceSpec
from repro.network.link import BONDED_DUAL_GIGE, LinkSpec
from repro.sim.engine import Engine
from repro.util.recorder import MetricsRecorder
from repro.util.units import GB, GiB


@dataclass(frozen=True)
class HalConfig:
    """Parameters of a HAL-like testbed."""

    num_nodes: int = 16
    cores_per_node: int = 8
    cpu_spec: CPUSpec = HAL_CPU
    dram_spec: DeviceSpec = DDR3_1600
    dram_per_node: int = 8 * GiB
    ssd_spec: DeviceSpec = INTEL_X25E
    ssd_per_node: int = 32 * GB
    link_spec: LinkSpec = BONDED_DUAL_GIGE

    def scaled(self, divisor: int) -> "HalConfig":
        """Shrink per-node capacities by ``divisor`` (ratios preserved)."""
        if divisor < 1:
            raise ValueError(f"divisor must be >= 1, got {divisor}")
        return replace(
            self,
            dram_per_node=self.dram_per_node // divisor,
            ssd_per_node=self.ssd_per_node // divisor,
        )


HAL_TESTBED = HalConfig()


def make_hal_cluster(
    engine: Engine,
    config: HalConfig = HAL_TESTBED,
    *,
    ssd_nodes: set[int] | None = None,
    metrics: MetricsRecorder | None = None,
) -> Cluster:
    """Build a HAL-like cluster on ``engine``.

    ``ssd_nodes`` restricts which nodes carry SSDs (default: all, as on
    HAL); pass an explicit subset to model a fat-node partition.
    """
    return Cluster(
        engine,
        num_nodes=config.num_nodes,
        cores_per_node=config.cores_per_node,
        cpu_spec=config.cpu_spec,
        dram_spec=config.dram_spec,
        dram_per_node=config.dram_per_node,
        link_spec=config.link_spec,
        ssd_spec=config.ssd_spec,
        ssd_capacity=config.ssd_per_node,
        ssd_nodes=ssd_nodes,
        metrics=metrics,
    )
