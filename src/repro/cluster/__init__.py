"""Cluster substrate: CPU cores, nodes, and testbed factories."""

from repro.cluster.cpu import Core, CPUSpec, HAL_CPU
from repro.cluster.node import Node
from repro.cluster.cluster import Cluster
from repro.cluster.hal import HAL_TESTBED, HalConfig, make_hal_cluster
from repro.cluster.utilization import (
    ComponentUtilization,
    hottest,
    utilization_report,
)

__all__ = [
    "ComponentUtilization",
    "hottest",
    "utilization_report",
    "Cluster",
    "Core",
    "CPUSpec",
    "HAL_CPU",
    "HAL_TESTBED",
    "HalConfig",
    "Node",
    "make_hal_cluster",
]
