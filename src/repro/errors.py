"""Exception hierarchy for the NVMalloc reproduction.

Every layer raises a subclass of :class:`ReproError` so that callers can
catch simulation-domain failures without swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class SimulationError(ReproError):
    """Misuse of the discrete-event engine (e.g. yielding a non-event)."""


class DeviceError(ReproError):
    """Errors raised by device models."""


class CapacityError(DeviceError):
    """A device or store ran out of space."""


class EnduranceExceededError(DeviceError):
    """An SSD block exceeded its program/erase cycle budget."""


class NetworkError(ReproError):
    """Errors raised by the network substrate."""


class StoreError(ReproError):
    """Errors raised by the aggregate NVM store."""


class ChunkNotFoundError(StoreError):
    """A chunk id could not be resolved to a benefactor."""


class FileNotFoundInStoreError(StoreError):
    """A logical file name is unknown to the manager."""


class FileExistsInStoreError(StoreError):
    """A logical file name already exists at the manager."""


class BenefactorDownError(StoreError):
    """The targeted benefactor has been marked offline."""


class FuseError(ReproError):
    """Errors raised by the FUSE-like file system layer."""


class BadFileDescriptorError(FuseError):
    """Operation on a closed or unknown file descriptor."""


class MmapError(ReproError):
    """Errors raised by the mmap emulation layer."""


class NVMallocError(ReproError):
    """Errors raised by the NVMalloc core library."""


class AllocationError(NVMallocError):
    """``ssdmalloc`` could not satisfy an allocation."""


class CheckpointError(NVMallocError):
    """``ssdcheckpoint`` or restart failed."""


class CommError(ReproError):
    """Errors raised by the simulated MPI layer."""
