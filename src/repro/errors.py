"""Exception hierarchy for the NVMalloc reproduction.

Every layer raises a subclass of :class:`ReproError` so that callers can
catch simulation-domain failures without swallowing programming errors.
"""

from __future__ import annotations

from typing import NamedTuple


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class SimulationError(ReproError):
    """Misuse of the discrete-event engine (e.g. yielding a non-event)."""


class DeviceError(ReproError):
    """Errors raised by device models."""


class CapacityError(DeviceError):
    """A device or store ran out of space."""


class EnduranceExceededError(DeviceError):
    """An SSD block exceeded its program/erase cycle budget."""


class NetworkError(ReproError):
    """Errors raised by the network substrate."""


class StoreError(ReproError):
    """Errors raised by the aggregate NVM store."""


class ChunkNotFoundError(StoreError):
    """A chunk id could not be resolved to a benefactor."""


class FileNotFoundInStoreError(StoreError):
    """A logical file name is unknown to the manager."""


class FileExistsInStoreError(StoreError):
    """A logical file name already exists at the manager."""


class BenefactorDownError(StoreError):
    """The targeted benefactor has been marked offline.

    Transient from the client's point of view: an administratively
    offline benefactor may return (``mark_online``), and a replicated
    chunk may still be readable elsewhere — the retry/failover loop in
    :class:`~repro.store.client.StoreClient` re-resolves and retries.
    """


class ChunkUnavailableError(BenefactorDownError):
    """Every replica of a chunk is gone; retrying cannot succeed.

    Raised by the manager once a chunk lands in its *lost* set (all
    benefactors holding replicas crashed before re-replication could
    restore redundancy).  Subclasses :class:`BenefactorDownError` so
    callers that treat any benefactor failure as fatal keep working,
    while the client's failover loop treats it as terminal rather than
    retryable.
    """


class ReplicationError(StoreError):
    """Replicated placement or re-replication could not be satisfied.

    E.g. a replication degree larger than the number of distinct online
    benefactors with space, or a re-replication copy whose source and
    target both died mid-flight.
    """


class FuseError(ReproError):
    """Errors raised by the FUSE-like file system layer."""


class BadFileDescriptorError(FuseError):
    """Operation on a closed or unknown file descriptor."""


class MmapError(ReproError):
    """Errors raised by the mmap emulation layer."""


class NVMallocError(ReproError):
    """Errors raised by the NVMalloc core library."""


class AllocationError(NVMallocError):
    """``ssdmalloc`` could not satisfy an allocation."""


class LostChunk(NamedTuple):
    """One unrecoverably lost chunk attached to a :class:`CheckpointError`.

    ``epoch`` is the checkpoint epoch whose file references the chunk
    (``None`` when the loss was detected outside any epoch context) and
    ``replicas`` the last-known benefactor names that held a copy before
    every one of them crashed.
    """

    chunk_id: int
    epoch: int | None = None
    replicas: tuple[str, ...] = ()


class CheckpointError(NVMallocError):
    """``ssdcheckpoint`` or restart failed.

    When the failure is unrecoverable data loss, ``lost_chunks`` holds
    one :class:`LostChunk` record per chunk whose every replica is gone
    (sorted by chunk id); it is empty for other checkpoint failures.
    Bare chunk ids passed by older call sites are normalized into
    records with no epoch/replica detail.
    """

    def __init__(
        self, message: str, lost_chunks: tuple[LostChunk | int, ...] = ()
    ) -> None:
        super().__init__(message)
        self.lost_chunks = tuple(
            entry if isinstance(entry, LostChunk) else LostChunk(entry)
            for entry in lost_chunks
        )

    @property
    def lost_chunk_ids(self) -> tuple[int, ...]:
        """The bare chunk ids of every lost chunk, sorted."""
        return tuple(sorted(entry.chunk_id for entry in self.lost_chunks))


class RestoreError(CheckpointError):
    """Restart could not reconstruct a checkpoint epoch.

    Raised only when a chunk required by the restored epoch is lost at
    every replica (degraded-but-readable stores ride the client's
    retry/failover loop instead).  ``epoch`` is the epoch the restore
    resolved to before failing, and ``lost_chunks`` details each
    irrecoverable chunk.  Subclasses :class:`CheckpointError` so callers
    that treat any checkpoint failure uniformly keep working.
    """

    def __init__(
        self,
        message: str,
        lost_chunks: tuple[LostChunk | int, ...] = (),
        epoch: int | None = None,
    ) -> None:
        super().__init__(message, lost_chunks=lost_chunks)
        self.epoch = epoch


class CommError(ReproError):
    """Errors raised by the simulated MPI layer."""


class MetricsError(ReproError):
    """Misuse of the metrics layer (e.g. reading an empty time series)."""
