"""NVMalloc reproduction (IPDPS 2012).

Exposes an aggregate SSD store — built from compute-node-local NVM devices
contributed by benefactor processes — as an explicitly managed secondary
memory partition, on a discrete-event simulated cluster substrate.

Public entry point is :class:`repro.core.NVMalloc`; see README.md for a
quickstart and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"
