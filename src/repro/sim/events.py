"""Event primitives for the simulation kernel.

Hot-path design notes (see docs/INTERNALS.md, "Event kernel"):

- ``Event.callbacks`` is *polymorphic* to avoid materializing a list for
  the overwhelmingly common one-waiter event:

  * ``None``        — pending, no callbacks registered yet
  * a callable      — pending, exactly one callback
  * a ``list``      — pending, two or more callbacks in registration order
  * ``_PROCESSED``  — the event fired and its callbacks have run

- Triggering with ``delay == 0`` (or a delay too small to advance the
  float clock) appends the event to the engine's *now ring* instead of
  the heap: no sequence number, no entry tuple, no heap sift.  The ring
  is FIFO, which is exactly the schedule-order tie-break the heap's
  ``seq`` field exists to provide.

- The engine's run loop drains each queue in uninterrupted runs (see
  ``engine.py``): the heap's run of events at the current instant, then
  the ring with no per-event heap probe.  The invariant making that
  legal lives here: every trigger that lands at ``time <= now`` goes to
  the ring, so the heap never acquires entries at the current instant
  while that instant is being processed.
"""

from __future__ import annotations

import typing
from heapq import heappush

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

_PENDING = object()

#: Sentinel stored in ``Event.callbacks`` once the event has been processed.
_PROCESSED = object()


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` schedules it
    to *trigger*, at which point all registered callbacks run exactly once.
    Processes wait on events by yielding them.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: object = None
        self._value: object = _PENDING
        self._ok = True
        self._scheduled = False

    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is _PROCESSED

    @property
    def ok(self) -> bool:
        """True unless the event carries an exception."""
        return self._ok

    @property
    def value(self) -> object:
        """The event's payload (or exception).  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # ------------------------------------------------------------------
    def succeed(self, value: object = None, *, delay: float = 0.0) -> "Event":
        """Schedule this event to trigger with ``value`` after ``delay``."""
        if self._scheduled:
            raise SimulationError(f"{self!r} has already been triggered")
        engine = self.engine
        if delay == 0.0:
            self._value = value
            self._ok = True
            self._scheduled = True
            engine._ring.append(self)
        elif delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        else:
            self._value = value
            self._ok = True
            self._scheduled = True
            now = engine._now
            time = now + delay
            if time <= now:  # delay too small to advance the float clock
                engine._ring.append(self)
            else:
                engine._seq += 1
                heappush(engine._heap, (time, engine._seq, self))
        return self

    def fail(self, exception: BaseException, *, delay: float = 0.0) -> "Event":
        """Schedule this event to trigger by raising ``exception``."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._scheduled:
            raise SimulationError(f"{self!r} has already been triggered")
        engine = self.engine
        if delay == 0.0:
            self._value = exception
            self._ok = False
            self._scheduled = True
            engine._ring.append(self)
        elif delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        else:
            self._value = exception
            self._ok = False
            self._scheduled = True
            now = engine._now
            time = now + delay
            if time <= now:
                engine._ring.append(self)
            else:
                engine._seq += 1
                heappush(engine._heap, (time, engine._seq, self))
        return self

    # Called when the event fires outside the engine's inlined dispatch.
    def _process(self) -> None:
        callbacks = self.callbacks
        self.callbacks = _PROCESSED
        if callbacks is None:
            return
        if callbacks.__class__ is list:
            for callback in callbacks:
                callback(self)
        else:
            callbacks(self)

    def add_callback(self, callback: typing.Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires (immediately if done)."""
        callbacks = self.callbacks
        if callbacks is None:
            self.callbacks = callback
        elif callbacks is _PROCESSED:
            callback(self)
        elif callbacks.__class__ is list:
            callbacks.append(callback)
        else:
            self.callbacks = [callbacks, callback]

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: object = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Timeouts are the hottest event type (every device access, FUSE
        # crossing, and compute step creates one): construct pre-triggered
        # in one go instead of going through __init__ + succeed().  Prefer
        # ``engine.timeout()``, which additionally recycles processed
        # timeouts from a free list.
        self.engine = engine
        self.callbacks = None
        self._value = value
        self._ok = True
        self._scheduled = True
        self.delay = delay
        if delay == 0.0:
            engine._ring.append(self)
        else:
            now = engine._now
            time = now + delay
            if time <= now:
                engine._ring.append(self)
            else:
                engine._seq += 1
                heappush(engine._heap, (time, engine._seq, self))


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> object:
        """The value passed to ``Process.interrupt``."""
        return self.args[0] if self.args else None


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, engine: "Engine", events: typing.Sequence[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        for event in self.events:
            if event.engine is not engine:
                raise SimulationError("cannot mix events from different engines")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
        else:
            for event in self.events:
                event.add_callback(self._check)

    def _collect(self) -> dict[Event, object]:
        # ``processed`` (callbacks ran, i.e. the event's time arrived), not
        # ``triggered``: a Timeout is scheduled — hence triggered — at
        # construction, long before it fires.
        return {e: e.value for e in self.events if e.processed and e.ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every constituent event has fired.

    Fails immediately (with the first failure) if any constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        assert event.processed  # we are inside its callback
        if not event.ok:
            assert isinstance(event.value, BaseException)
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            assert isinstance(event.value, BaseException)
            self.fail(event.value)
            return
        self.succeed(self._collect())
