"""Event primitives for the simulation kernel."""

from __future__ import annotations

import typing
from heapq import heappush

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

_PENDING = object()


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` schedules it
    to *trigger*, at which point all registered callbacks run exactly once.
    Processes wait on events by yielding them.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: list[typing.Callable[["Event"], None]] | None = []
        self._value: object = _PENDING
        self._ok = True
        self._scheduled = False

    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True unless the event carries an exception."""
        return self._ok

    @property
    def value(self) -> object:
        """The event's payload (or exception).  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # ------------------------------------------------------------------
    def succeed(self, value: object = None, *, delay: float = 0.0) -> "Event":
        """Schedule this event to trigger with ``value`` after ``delay``."""
        if self._scheduled:
            raise SimulationError(f"{self!r} has already been triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._value = value
        self._ok = True
        self._scheduled = True
        engine = self.engine
        engine._seq += 1
        heappush(engine._heap, (engine._now + delay, engine._seq, self))
        return self

    def fail(self, exception: BaseException, *, delay: float = 0.0) -> "Event":
        """Schedule this event to trigger by raising ``exception``."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._scheduled:
            raise SimulationError(f"{self!r} has already been triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._value = exception
        self._ok = False
        self._scheduled = True
        engine = self.engine
        engine._seq += 1
        heappush(engine._heap, (engine._now + delay, engine._seq, self))
        return self

    # Called by the engine when the event fires.
    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: typing.Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires (immediately if done)."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: object = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Timeouts are the hottest event type (every device access, FUSE
        # crossing, and compute step creates one): construct pre-triggered
        # in one go instead of going through __init__ + succeed().
        self.engine = engine
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self.delay = delay
        engine._seq += 1
        heappush(engine._heap, (engine._now + delay, engine._seq, self))


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> object:
        """The value passed to ``Process.interrupt``."""
        return self.args[0] if self.args else None


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, engine: "Engine", events: typing.Sequence[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        for event in self.events:
            if event.engine is not engine:
                raise SimulationError("cannot mix events from different engines")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
        else:
            for event in self.events:
                event.add_callback(self._check)

    def _collect(self) -> dict[Event, object]:
        # ``processed`` (callbacks ran, i.e. the event's time arrived), not
        # ``triggered``: a Timeout is scheduled — hence triggered — at
        # construction, long before it fires.
        return {e: e.value for e in self.events if e.processed and e.ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every constituent event has fired.

    Fails immediately (with the first failure) if any constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        assert event.processed  # we are inside its callback
        if not event.ok:
            assert isinstance(event.value, BaseException)
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            assert isinstance(event.value, BaseException)
            self.fail(event.value)
            return
        self.succeed(self._collect())
