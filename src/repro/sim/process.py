"""Generator-driven simulation processes."""

from __future__ import annotations

import typing
from collections.abc import Generator

from repro.errors import SimulationError
from repro.sim.events import Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine


class Process(Event):
    """A running simulation activity.

    Wraps a generator that yields :class:`Event` objects.  Each yielded
    event suspends the process until the event fires; the event's value is
    sent back into the generator (or its exception thrown in).  The process
    itself is an event that fires with the generator's return value, so
    processes can wait on each other by yielding them.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, object, object],
        name: str | None = None,
    ) -> None:
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__} "
                "(did you forget a yield in the process function?)"
            )
        super().__init__(engine)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current simulation time.
        bootstrap = Event(engine)
        bootstrap.succeed(None)
        bootstrap.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self._waiting_on is None:
            raise SimulationError(
                f"cannot interrupt {self.name}: it has not started waiting yet"
            )
        # Detach from whatever it was waiting on, then resume with the error.
        waited = self._waiting_on
        if waited.callbacks is not None and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
        self._waiting_on = None
        poke = Event(self.engine)
        poke.fail(Interrupt(cause))
        poke.add_callback(self._resume)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                exc = event.value
                assert isinstance(exc, BaseException)
                target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances"
            )
            try:
                self._generator.throw(error)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:  # noqa: BLE001
                self.fail(exc)
            return
        if target.engine is not self.engine:
            self.fail(SimulationError("yielded event belongs to another engine"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"
