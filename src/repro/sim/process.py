"""Generator-driven simulation processes."""

from __future__ import annotations

import typing
from collections.abc import Generator

from repro.errors import SimulationError
from repro.sim.events import _PENDING, _PROCESSED, Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine


class Process(Event):
    """A running simulation activity.

    Wraps a generator that yields :class:`Event` objects.  Each yielded
    event suspends the process until the event fires; the event's value is
    sent back into the generator (or its exception thrown in).  The process
    itself is an event that fires with the generator's return value, so
    processes can wait on each other by yielding them.
    """

    __slots__ = ("_generator", "_waiting_on", "name", "_resume_cb", "_trace_stack")

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, object, object],
        name: str | None = None,
    ) -> None:
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__} "
                "(did you forget a yield in the process function?)"
            )
        self.engine = engine
        self.callbacks = None
        self._value = _PENDING
        self._ok = True
        self._scheduled = False
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # One bound method for the process's whole life: registering the
        # resume callback happens on every yield, and binding allocates.
        # With a tracer attached, the traced variant swaps the tracer's
        # active span stack to this process's around every resume, and
        # the creator's innermost open span is forked as the base parent
        # of everything this process records (context propagation).
        tracer = engine.tracer
        if tracer is None:
            self._resume_cb = resume = self._resume
        else:
            active = tracer._active
            self._trace_stack = [active[-1]] if active else []
            self._resume_cb = resume = self._traced_resume
        # Kick off at the current simulation time: a pre-triggered
        # single-callback event straight onto the now ring.
        bootstrap = Event(engine)
        bootstrap._value = None
        bootstrap._scheduled = True
        bootstrap.callbacks = resume
        engine._ring.append(bootstrap)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._scheduled

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self._scheduled:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waited = self._waiting_on
        if waited is None:
            raise SimulationError(
                f"cannot interrupt {self.name}: it has not started waiting yet"
            )
        # Detach from whatever it was waiting on, then resume with the error.
        resume = self._resume_cb
        callbacks = waited.callbacks
        if callbacks is resume:
            waited.callbacks = None
        elif callbacks.__class__ is list:
            try:
                callbacks.remove(resume)
            except ValueError:
                pass
        self._waiting_on = None
        poke = Event(self.engine)
        poke.fail(Interrupt(cause))
        poke.add_callback(resume)

    # ------------------------------------------------------------------
    def _traced_resume(self, event: Event) -> None:
        """Resume under this process's span stack (tracing enabled only).

        Save/restore keeps nesting correct even when resuming this
        process synchronously creates and resumes others.
        """
        tracer = self.engine.tracer
        saved = tracer._active
        tracer._active = self._trace_stack
        try:
            self._resume(event)
        finally:
            tracer._active = saved

    def _resume(self, event: Event) -> None:
        # The hottest loop of the whole simulator: one iteration per yield
        # of every process.  An already-processed event is consumed
        # immediately instead of recursing through add_callback — same
        # semantics, flat stack, no extra queue trip.  In 3.11+ the try
        # blocks cost nothing unless they catch, so the common path is a
        # bare send() plus two attribute loads and identity checks.
        generator = self._generator
        send = generator.send
        engine = self.engine
        resume = self._resume_cb
        while True:
            self._waiting_on = None
            if event._ok:
                try:
                    target = send(event._value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:  # noqa: BLE001 - propagate via event
                    self.fail(exc)
                    return
            else:
                exc = event._value
                assert isinstance(exc, BaseException)
                try:
                    target = generator.throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as thrown:  # noqa: BLE001
                    self.fail(thrown)
                    return
            try:
                callbacks = target.callbacks
                target_engine = target.engine
            except AttributeError:
                self._reject_yield(target)
                return
            if target_engine is not engine:
                self.fail(SimulationError("yielded event belongs to another engine"))
                return
            if callbacks is None:
                # Pending with no waiters: we become the single callback.
                self._waiting_on = target
                target.callbacks = resume
                return
            if callbacks is _PROCESSED:
                # Already processed: its value is final, resume right away.
                event = target
                continue
            self._waiting_on = target
            if callbacks.__class__ is list:
                callbacks.append(resume)
            else:
                target.callbacks = [callbacks, resume]
            return

    def _reject_yield(self, target: object) -> None:
        """Cold path: the generator yielded something that is no event."""
        error = SimulationError(
            f"process {self.name!r} yielded {target!r}; processes may "
            "only yield Event instances"
        )
        try:
            self._generator.throw(error)
        except StopIteration as stop:
            self.succeed(stop.value)
        except BaseException as exc:  # noqa: BLE001
            self.fail(exc)

    def __repr__(self) -> str:
        state = "done" if self._scheduled else "alive"
        return f"<Process {self.name} {state}>"
