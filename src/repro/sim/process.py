"""Generator-driven simulation processes."""

from __future__ import annotations

import typing
from collections.abc import Generator

from repro.errors import SimulationError
from repro.sim.events import Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine


class Process(Event):
    """A running simulation activity.

    Wraps a generator that yields :class:`Event` objects.  Each yielded
    event suspends the process until the event fires; the event's value is
    sent back into the generator (or its exception thrown in).  The process
    itself is an event that fires with the generator's return value, so
    processes can wait on each other by yielding them.
    """

    __slots__ = ("_generator", "_waiting_on", "name", "_resume_cb")

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, object, object],
        name: str | None = None,
    ) -> None:
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__} "
                "(did you forget a yield in the process function?)"
            )
        super().__init__(engine)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # One bound method for the process's whole life: registering the
        # resume callback happens on every yield, and binding allocates.
        self._resume_cb = self._resume
        # Kick off at the current simulation time.
        bootstrap = Event(engine)
        bootstrap.succeed(None)
        bootstrap.add_callback(self._resume_cb)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self._waiting_on is None:
            raise SimulationError(
                f"cannot interrupt {self.name}: it has not started waiting yet"
            )
        # Detach from whatever it was waiting on, then resume with the error.
        waited = self._waiting_on
        if waited.callbacks is not None and self._resume_cb in waited.callbacks:
            waited.callbacks.remove(self._resume_cb)
        self._waiting_on = None
        poke = Event(self.engine)
        poke.fail(Interrupt(cause))
        poke.add_callback(self._resume_cb)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # The hottest loop of the whole simulator: one iteration per yield
        # of every process.  An already-triggered event (its callbacks have
        # run) is consumed immediately instead of recursing through
        # add_callback — same semantics, flat stack, no extra heap trip.
        send = self._generator.send
        while True:
            self._waiting_on = None
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    exc = event._value
                    assert isinstance(exc, BaseException)
                    target = self._generator.throw(exc)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self.fail(exc)
                return
            if not isinstance(target, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes may "
                    "only yield Event instances"
                )
                try:
                    self._generator.throw(error)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except BaseException as exc:  # noqa: BLE001
                    self.fail(exc)
                return
            if target.engine is not self.engine:
                self.fail(SimulationError("yielded event belongs to another engine"))
                return
            callbacks = target.callbacks
            if callbacks is None:
                # Already processed: its value is final, resume right away.
                event = target
                continue
            self._waiting_on = target
            callbacks.append(self._resume_cb)
            return

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"
