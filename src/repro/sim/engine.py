"""The event loop: a time-ordered heap of triggered events."""

from __future__ import annotations

import heapq
import typing
from collections.abc import Generator

from repro.errors import SimulationError
from repro.sim.events import Event, Timeout
from repro.sim.process import Process


class Engine:
    """Discrete-event simulation engine.

    Maintains the virtual clock and the pending-event heap.  Create one per
    experiment; all simulation objects (devices, links, processes) hold a
    reference to it.
    """

    __slots__ = ("_now", "_heap", "_seq", "_active_processes")

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_processes = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event to be processed after ``delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, object, object]) -> Process:
        """Register ``generator`` as a simulation process and start it."""
        return Process(self, generator)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("no more events to process")
        time, _, event = heapq.heappop(self._heap)
        self._now = time
        # Inline Event._process: the heap pop/dispatch pair runs for every
        # single event of a simulation, so one avoided call matters.
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        - ``until is None``: run until the event heap is exhausted.
        - ``until`` is a number: run until virtual time reaches it.
        - ``until`` is an :class:`Event` (e.g. a :class:`Process`): run until
          that event fires, then return its value (re-raising a failure).
        """
        heap = self._heap
        heappop = heapq.heappop
        if isinstance(until, Event):
            stop_event = until
            while stop_event.callbacks is not None:
                if not heap:
                    raise SimulationError(
                        "simulation ran out of events before the awaited event "
                        "fired (deadlock: a process is waiting on an event "
                        "nothing will trigger)"
                    )
                time, _, event = heappop(heap)
                self._now = time
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
            if not stop_event.ok:
                value = stop_event.value
                assert isinstance(value, BaseException)
                raise value
            return stop_event.value
        if until is None:
            while heap:
                time, _, event = heappop(heap)
                self._now = time
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
            return None
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"until={horizon} is in the past (now={self._now})"
            )
        while heap and heap[0][0] <= horizon:
            self.step()
        self._now = max(self._now, horizon)
        return None

    def run_all(self, processes: typing.Sequence[Process]) -> list[object]:
        """Run until every process in ``processes`` completes; return values."""
        from repro.sim.events import AllOf

        self.run(AllOf(self, list(processes)))
        return [p.value for p in processes]
