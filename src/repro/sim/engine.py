"""The event loop: a time heap drained in per-instant runs plus a
zero-delay "now ring" drained in pure batches.

Two structures hold triggered events:

- ``_heap`` — ``(time, seq, event)`` entries for strictly-future events.
- ``_ring`` — an append-only FIFO of events that fire *at the current
  instant* (``delay == 0``, or a positive delay too small to advance the
  float clock).  The zero-delay fast path skips the heap round-trip that
  would otherwise dominate resource grants, channel handoffs, and
  immediate ``succeed()`` chains, and needs neither a sequence number
  nor an entry tuple.

Ordering invariant (the reason virtual results stay bit-identical with a
plain heapq kernel): at any instant ``t``, every heap event at time ``t``
was scheduled *before* processing of ``t`` began — the ring was empty
when ``t`` started, and any schedule during ``t`` that lands at ``t``
goes to the ring, never the heap (``schedule``/``succeed``/``fail``/
``Timeout`` all route ``time <= now`` onto the ring, and a positive
delay can only produce ``time > now``).  Hence the dispatch rule
"drain the heap's run of events at ``now`` first, then the ring, then
advance time" reproduces exact global ``(time, seq)`` FIFO order.

Batched dispatch: that invariant means the heap can never interleave
with the ring *within* an instant, so the run loop drains each queue in
uninterrupted runs — the heap is probed only while draining the
at-``now`` run (a small minority of events), and ring events cost one
``popleft`` plus the callback dispatch, with **no** heap peek at all.
The previous kernel paid a ``heap and heap[0][0] <= now`` probe before
every single event; on grant/handoff-heavy workloads the ring carries
60–70 % of all events, so dropping that probe is the bulk of the win.
"""

from __future__ import annotations

import sys
import typing
from collections import deque
from collections.abc import Generator, Iterable, Sequence
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.sim.events import _PROCESSED, Event, Timeout
from repro.sim.process import Process

#: CPython's refcount probe gates free-list reuse: a pooled object is
#: recycled only when the pool held the last reference.  On runtimes
#: without refcounts the pools stay cold and every object is fresh.
_getrefcount = getattr(sys, "getrefcount", None) or (lambda obj: -1)

#: Free lists never grow beyond this many parked objects.
_POOL_LIMIT = 512


class Engine:
    """Discrete-event simulation engine.

    Maintains the virtual clock and the pending-event queues.  Create one
    per experiment; all simulation objects (devices, links, processes)
    hold a reference to it.
    """

    __slots__ = (
        "_now", "_heap", "_ring", "_seq", "_events",
        "_timeout_pool", "_request_pool", "_active_processes", "tracer",
    )

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._ring: deque[Event] = deque()
        self._seq = 0
        self._events = 0
        self._timeout_pool: list[Timeout] = []
        self._request_pool: list[Event] = []
        self._active_processes = 0
        # Optional repro.obs.Tracer.  None (the default) keeps every
        # instrumented call site on its raw fast path; spans only read
        # the clock, so attaching one never perturbs virtual results.
        self.tracer = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events this engine has dispatched so far."""
        return self._events

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event to be processed after ``delay``."""
        if delay == 0.0:
            self._ring.append(event)
        elif delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        else:
            now = self._now
            time = now + delay
            if time <= now:
                self._ring.append(event)
            else:
                self._seq += 1
                heappush(self._heap, (time, self._seq, event))

    def schedule_batch(
        self, events: Sequence[Event], delays: Iterable[float]
    ) -> None:
        """Schedule many triggered events in one pass.

        Timestamps are computed with one vectorized numpy add over the
        whole cohort, then events are binned (ring vs heap) in input
        order — bit-identical to calling :meth:`schedule` once per
        event.  This is the bulk path the sharded runner uses to deliver
        a lookahead window's worth of cross-shard messages.
        """
        import numpy as np

        now = self._now
        darr = np.asarray(
            delays if isinstance(delays, np.ndarray) else list(delays),
            dtype=np.float64,
        )
        if darr.shape != (len(events),):
            raise SimulationError(
                f"schedule_batch: {len(events)} events but {darr.size} delays"
            )
        if darr.size and float(darr.min()) < 0:
            raise SimulationError("cannot schedule into the past (batch)")
        times = now + darr
        ring_append = self._ring.append
        heap = self._heap
        seq = self._seq
        for event, time in zip(events, times.tolist()):
            if time <= now:
                ring_append(event)
            else:
                seq += 1
                heappush(heap, (time, seq, event))
        self._seq = seq

    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event that fires ``delay`` seconds from now.

        Recycles processed timeouts from a free list when nothing else
        still references them, so steady-state simulation loops allocate
        no timeout objects at all.
        """
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            # Reusable only if the pool held the last reference: the local
            # binding plus getrefcount's argument make exactly two.
            if _getrefcount(timeout) == 2:
                if delay < 0:
                    pool.append(timeout)
                    raise SimulationError(f"negative timeout delay: {delay}")
                timeout.callbacks = None
                timeout._value = value
                timeout._ok = True
                timeout._scheduled = True
                timeout.delay = delay
                if delay == 0.0:
                    self._ring.append(timeout)
                else:
                    now = self._now
                    time = now + delay
                    if time <= now:
                        self._ring.append(timeout)
                    else:
                        self._seq += 1
                        heappush(self._heap, (time, self._seq, timeout))
                return timeout
        return Timeout(self, delay, value)

    def timeouts(self, delays: Iterable[float]) -> list[Timeout]:
        """A cohort of timeouts, one per delay, timestamped in one pass.

        Equivalent to ``[self.timeout(d) for d in delays]`` — same events
        in the same schedule order, bit-identical — but with the
        timestamp arithmetic vectorized over the whole cohort and the
        free-list recycling inlined.
        """
        import numpy as np

        darr = np.asarray(
            delays if isinstance(delays, np.ndarray) else list(delays),
            dtype=np.float64,
        )
        if darr.size and float(darr.min()) < 0:
            raise SimulationError("negative timeout delay in batch")
        now = self._now
        pool = self._timeout_pool
        ring_append = self._ring.append
        heap = self._heap
        out: list[Timeout] = []
        append = out.append
        for delay, time in zip(darr.tolist(), (now + darr).tolist()):
            timeout = None
            if pool:
                candidate = pool.pop()
                if _getrefcount(candidate) == 2:
                    timeout = candidate
                    timeout.callbacks = None
                    timeout._value = None
                    timeout._ok = True
                    timeout._scheduled = True
                    timeout.delay = delay
                    if time <= now:
                        ring_append(timeout)
                    else:
                        self._seq += 1
                        heappush(heap, (time, self._seq, timeout))
            if timeout is None:
                timeout = Timeout(self, delay)
            append(timeout)
        return out

    def process(self, generator: Generator[Event, object, object]) -> Process:
        """Register ``generator`` as a simulation process and start it."""
        return Process(self, generator)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        heap = self._heap
        now = self._now
        if heap and heap[0][0] <= now:
            _, _, event = heappop(heap)
        elif self._ring:
            event = self._ring.popleft()
        elif heap:
            time, _, event = heappop(heap)
            self._now = time
        else:
            raise SimulationError("no more events to process")
        self._events += 1
        event._process()

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        - ``until is None``: run until both event queues are exhausted.
        - ``until`` is a number: run until virtual time reaches it.
        - ``until`` is an :class:`Event` (e.g. a :class:`Process`): run until
          that event fires, then return its value (re-raising a failure).

        The dispatch body is inlined into each branch; the ``None`` and
        horizon branches drain each queue in uninterrupted runs (module
        docstring): the heap's run at the new instant first, then the
        ring with no per-event heap probe, then one heap pop to advance.
        """
        heap = self._heap
        ring = self._ring
        ring_popleft = ring.popleft
        tpool = self._timeout_pool
        tpool_append = tpool.append
        n = 0
        if isinstance(until, Event):
            # Same run-drain structure as below, with the stop condition
            # re-checked between events (it can flip mid-run).  The ring
            # drain still sheds the per-event heap probe.
            stop_event = until
            stop = stop_event
            now = self._now
            try:
                while stop.callbacks is not _PROCESSED:
                    if heap and heap[0][0] <= now:
                        _, _, event = heappop(heap)
                        n += 1
                        callbacks = event.callbacks
                        event.callbacks = _PROCESSED
                        if callbacks.__class__ is list:
                            for callback in callbacks:
                                callback(event)
                        elif callbacks is not None:
                            callbacks(event)
                        if event.__class__ is Timeout and len(tpool) < _POOL_LIMIT:
                            tpool_append(event)
                        continue
                    if ring:
                        # Pure ring run: only the stop check interleaves.
                        while True:
                            event = ring_popleft()
                            n += 1
                            callbacks = event.callbacks
                            event.callbacks = _PROCESSED
                            if callbacks.__class__ is list:
                                for callback in callbacks:
                                    callback(event)
                            elif callbacks is not None:
                                callbacks(event)
                            if event.__class__ is Timeout and len(tpool) < _POOL_LIMIT:
                                tpool_append(event)
                            if stop.callbacks is _PROCESSED or not ring:
                                break
                        continue
                    if heap:
                        time, _, event = heappop(heap)
                        self._now = now = time
                        n += 1
                        callbacks = event.callbacks
                        event.callbacks = _PROCESSED
                        if callbacks.__class__ is list:
                            for callback in callbacks:
                                callback(event)
                        elif callbacks is not None:
                            callbacks(event)
                        if event.__class__ is Timeout and len(tpool) < _POOL_LIMIT:
                            tpool_append(event)
                        continue
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event fired (deadlock: a process is waiting on an "
                        "event nothing will trigger)"
                    )
            finally:
                self._events += n
            if not stop_event.ok:
                value = stop_event.value
                assert isinstance(value, BaseException)
                raise value
            return stop_event.value
        if until is None:
            try:
                while True:
                    # Pure ring run: no heap probe per event — the
                    # ordering invariant guarantees the heap holds nothing
                    # for the current instant once the at-``now`` run
                    # below has drained.
                    while ring:
                        event = ring_popleft()
                        n += 1
                        callbacks = event.callbacks
                        event.callbacks = _PROCESSED
                        if callbacks.__class__ is list:
                            for callback in callbacks:
                                callback(event)
                        elif callbacks is not None:
                            callbacks(event)
                        if event.__class__ is Timeout and len(tpool) < _POOL_LIMIT:
                            tpool_append(event)
                    if not heap:
                        break
                    # Advance to the next instant and drain the heap's run
                    # of events at exactly that instant.  Their dispatch
                    # can only append to the ring (a positive delay lands
                    # strictly in the future), never ahead of this run.
                    time, _, event = heappop(heap)
                    self._now = now = time
                    while True:
                        n += 1
                        callbacks = event.callbacks
                        event.callbacks = _PROCESSED
                        if callbacks.__class__ is list:
                            for callback in callbacks:
                                callback(event)
                        elif callbacks is not None:
                            callbacks(event)
                        if event.__class__ is Timeout and len(tpool) < _POOL_LIMIT:
                            tpool_append(event)
                        if heap and heap[0][0] <= now:
                            _, _, event = heappop(heap)
                        else:
                            break
            finally:
                self._events += n
            return None
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"until={horizon} is in the past (now={self._now})"
            )
        try:
            while True:
                while ring:
                    event = ring_popleft()
                    n += 1
                    callbacks = event.callbacks
                    event.callbacks = _PROCESSED
                    if callbacks.__class__ is list:
                        for callback in callbacks:
                            callback(event)
                    elif callbacks is not None:
                        callbacks(event)
                    if event.__class__ is Timeout and len(tpool) < _POOL_LIMIT:
                        tpool_append(event)
                if not heap or heap[0][0] > horizon:
                    break
                time, _, event = heappop(heap)
                self._now = now = time
                while True:
                    n += 1
                    callbacks = event.callbacks
                    event.callbacks = _PROCESSED
                    if callbacks.__class__ is list:
                        for callback in callbacks:
                            callback(event)
                    elif callbacks is not None:
                        callbacks(event)
                    if event.__class__ is Timeout and len(tpool) < _POOL_LIMIT:
                        tpool_append(event)
                    if heap and heap[0][0] <= now:
                        _, _, event = heappop(heap)
                    else:
                        break
        finally:
            self._events += n
        self._now = max(self._now, horizon)
        return None

    def run_all(self, processes: typing.Sequence[Process]) -> list[object]:
        """Run until every process in ``processes`` completes; return values."""
        from repro.sim.events import AllOf

        self.run(AllOf(self, list(processes)))
        return [p.value for p in processes]
