"""The event loop: a zero-delay "now ring" plus a time-ordered heap.

Two queues hold triggered events:

- ``_heap`` — a ``(time, seq, event)`` heap for events with a positive
  delay; ``seq`` breaks timestamp ties in schedule order.
- ``_ring`` — an append-only FIFO of events that fire *at the current
  instant* (``delay == 0``, or a positive delay too small to advance the
  float clock).  The zero-delay fast path skips the heap round-trip that
  would otherwise dominate resource grants, channel handoffs, and
  immediate ``succeed()`` chains, and needs neither a sequence number
  nor an entry tuple.

Ordering invariant (the reason virtual results stay bit-identical with a
plain heapq kernel): at any instant ``t``, every heap entry at time ``t``
was pushed *before* processing of ``t`` began — the ring was empty when
``t`` started, and any schedule during ``t`` that lands at ``t`` goes to
the ring, never the heap.  Hence all heap entries at ``now`` precede all
ring entries in schedule order, and the dispatch rule "drain heap
entries at ``now`` first, then the ring, then advance time" reproduces
exact FIFO (``seq``) order for same-time events.
"""

from __future__ import annotations

import sys
import typing
from collections import deque
from collections.abc import Generator
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.sim.events import _PROCESSED, Event, Timeout
from repro.sim.process import Process

#: CPython's refcount probe gates free-list reuse: a pooled object is
#: recycled only when the pool held the last reference.  On runtimes
#: without refcounts the pools stay cold and every object is fresh.
_getrefcount = getattr(sys, "getrefcount", None) or (lambda obj: -1)

#: Free lists never grow beyond this many parked objects.
_POOL_LIMIT = 512


class Engine:
    """Discrete-event simulation engine.

    Maintains the virtual clock and the pending-event queues.  Create one
    per experiment; all simulation objects (devices, links, processes)
    hold a reference to it.
    """

    __slots__ = (
        "_now", "_heap", "_ring", "_seq", "_events",
        "_timeout_pool", "_request_pool", "_active_processes", "tracer",
    )

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._ring: deque[Event] = deque()
        self._seq = 0
        self._events = 0
        self._timeout_pool: list[Timeout] = []
        self._request_pool: list[Event] = []
        self._active_processes = 0
        # Optional repro.obs.Tracer.  None (the default) keeps every
        # instrumented call site on its raw fast path; spans only read
        # the clock, so attaching one never perturbs virtual results.
        self.tracer = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events this engine has dispatched so far."""
        return self._events

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event to be processed after ``delay``."""
        if delay == 0.0:
            self._ring.append(event)
        elif delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        else:
            now = self._now
            time = now + delay
            if time <= now:
                self._ring.append(event)
            else:
                self._seq += 1
                heappush(self._heap, (time, self._seq, event))

    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event that fires ``delay`` seconds from now.

        Recycles processed timeouts from a free list when nothing else
        still references them, so steady-state simulation loops allocate
        no timeout objects at all.
        """
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            # Reusable only if the pool held the last reference: the local
            # binding plus getrefcount's argument make exactly two.
            if _getrefcount(timeout) == 2:
                if delay < 0:
                    pool.append(timeout)
                    raise SimulationError(f"negative timeout delay: {delay}")
                timeout.callbacks = None
                timeout._value = value
                timeout._ok = True
                timeout._scheduled = True
                timeout.delay = delay
                if delay == 0.0:
                    self._ring.append(timeout)
                else:
                    now = self._now
                    time = now + delay
                    if time <= now:
                        self._ring.append(timeout)
                    else:
                        self._seq += 1
                        heappush(self._heap, (time, self._seq, timeout))
                return timeout
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, object, object]) -> Process:
        """Register ``generator`` as a simulation process and start it."""
        return Process(self, generator)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        heap = self._heap
        ring = self._ring
        now = self._now
        if heap and heap[0][0] <= now:
            event = heappop(heap)[2]
        elif ring:
            event = ring.popleft()
        elif heap:
            time, _, event = heappop(heap)
            self._now = time
        else:
            raise SimulationError("no more events to process")
        self._events += 1
        event._process()

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        - ``until is None``: run until both event queues are exhausted.
        - ``until`` is a number: run until virtual time reaches it.
        - ``until`` is an :class:`Event` (e.g. a :class:`Process`): run until
          that event fires, then return its value (re-raising a failure).

        The dispatch body is inlined into each branch: the pop/dispatch
        pair runs once per event of the whole simulation, so per-event
        call and attribute overhead is the kernel's price floor.
        """
        heap = self._heap
        ring = self._ring
        ring_popleft = ring.popleft
        tpool = self._timeout_pool
        tpool_append = tpool.append
        n = 0
        if isinstance(until, Event):
            stop_event = until
            # ``now`` mirrors self._now as a local: nothing inside the
            # loop advances the clock except the heap branch below.
            now = self._now
            try:
                while stop_event.callbacks is not _PROCESSED:
                    # Heap entries at the current instant always precede
                    # ring entries in schedule order (module docstring).
                    if heap and heap[0][0] <= now:
                        event = heappop(heap)[2]
                    elif ring:
                        event = ring_popleft()
                    elif heap:
                        time, _, event = heappop(heap)
                        self._now = now = time
                    else:
                        raise SimulationError(
                            "simulation ran out of events before the awaited "
                            "event fired (deadlock: a process is waiting on an "
                            "event nothing will trigger)"
                        )
                    n += 1
                    callbacks = event.callbacks
                    event.callbacks = _PROCESSED
                    if callbacks.__class__ is list:
                        for callback in callbacks:
                            callback(event)
                    elif callbacks is not None:
                        callbacks(event)
                    if event.__class__ is Timeout and len(tpool) < _POOL_LIMIT:
                        tpool_append(event)
            finally:
                self._events += n
            if not stop_event.ok:
                value = stop_event.value
                assert isinstance(value, BaseException)
                raise value
            return stop_event.value
        if until is None:
            now = self._now
            try:
                while True:
                    if heap and heap[0][0] <= now:
                        event = heappop(heap)[2]
                    elif ring:
                        event = ring_popleft()
                    elif heap:
                        time, _, event = heappop(heap)
                        self._now = now = time
                    else:
                        break
                    n += 1
                    callbacks = event.callbacks
                    event.callbacks = _PROCESSED
                    if callbacks.__class__ is list:
                        for callback in callbacks:
                            callback(event)
                    elif callbacks is not None:
                        callbacks(event)
                    if event.__class__ is Timeout and len(tpool) < _POOL_LIMIT:
                        tpool_append(event)
            finally:
                self._events += n
            return None
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"until={horizon} is in the past (now={self._now})"
            )
        now = self._now
        try:
            while True:
                if heap and heap[0][0] <= now:
                    event = heappop(heap)[2]
                elif ring:
                    event = ring_popleft()
                elif heap and heap[0][0] <= horizon:
                    time, _, event = heappop(heap)
                    self._now = now = time
                else:
                    break
                n += 1
                callbacks = event.callbacks
                event.callbacks = _PROCESSED
                if callbacks.__class__ is list:
                    for callback in callbacks:
                        callback(event)
                elif callbacks is not None:
                    callbacks(event)
                if event.__class__ is Timeout and len(tpool) < _POOL_LIMIT:
                    tpool_append(event)
        finally:
            self._events += n
        self._now = max(self._now, horizon)
        return None

    def run_all(self, processes: typing.Sequence[Process]) -> list[object]:
        """Run until every process in ``processes`` completes; return values."""
        from repro.sim.events import AllOf

        self.run(AllOf(self, list(processes)))
        return [p.value for p in processes]
