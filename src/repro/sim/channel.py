"""Unbounded FIFO message channels for process communication.

The simulated MPI layer (:mod:`repro.parallel`) builds its point-to-point
and collective operations on channels: ``put`` never blocks, ``get`` returns
an event that fires when a message is available.  Handoffs ride the
engine's zero-delay now ring — a matched put/get pair costs one ring
append, no heap traffic.
"""

from __future__ import annotations

import typing
from collections import deque

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine


class Channel:
    """An unbounded FIFO of messages with blocking receive."""

    __slots__ = ("engine", "name", "_items", "_getters")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._items: deque[object] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: object) -> None:
        """Deposit ``item``; wakes the oldest waiting receiver, if any."""
        getters = self._getters
        if getters:
            event = getters.popleft()
            # Inline Event.succeed: a still-queued getter cannot have fired.
            event._value = item
            event._scheduled = True
            self.engine._ring.append(event)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next message."""
        engine = self.engine
        event = Event(engine)
        items = self._items
        if items:
            event._value = items.popleft()
            event._scheduled = True
            engine._ring.append(event)
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return (
            f"<Channel {self.name or id(self):#x} items={len(self._items)}"
            f" waiting={len(self._getters)}>"
        )
