"""Capacity-limited resources with FIFO queueing.

Devices, network links, and CPU cores are modelled as resources: a request
is granted when a slot frees up, in arrival order.  Service time is imposed
by the holder (request -> timeout -> release), for which :meth:`Resource.use`
provides the common pattern.

Grant events ride the engine's zero-delay now ring: a grant always fires
at the instant of the request or release that produced it, so it never
needs the heap.  Released requests are parked on an engine-wide free list
and recycled (refcount-gated) by later requests, making the steady-state
request/release cycle allocation-free.
"""

from __future__ import annotations

import sys
import typing
from collections import deque
from collections.abc import Generator

from repro.errors import SimulationError
from repro.sim.events import _PENDING, _PROCESSED, Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

_getrefcount = getattr(sys, "getrefcount", None) or (lambda obj: -1)

_POOL_LIMIT = 512

#: Gate for :meth:`Resource.acquire_now` synchronous grants.  The fast
#: path fires only when skipping the ring round trip is provably
#: order-identical, so flipping this off must not change virtual time,
#: counters, or bytes anywhere; tests fuzz that identity
#: (tests/test_bulk_runs_fuzz.py).
SYNC_GRANTS = True


class Request(Event):
    """A pending or granted claim on one slot of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        # Requests are created for every device/NIC access: initialize the
        # Event slots in place rather than through super().__init__.
        self.engine = resource.engine
        self.callbacks = None
        self._value = _PENDING
        self._ok = True
        self._scheduled = False
        self.resource = resource


class Resource:
    """``capacity`` interchangeable slots, granted first-come first-served."""

    __slots__ = (
        "engine", "capacity", "name", "_queue", "_users",
        "_busy_time", "_last_change", "_last_users",
    )

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._queue: deque[Request] = deque()
        self._users: set[Request] = set()
        # Utilization accounting.
        self._busy_time = 0.0
        self._last_change = engine.now
        self._last_users = 0

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def busy_seconds(self) -> float:
        """Aggregate slot-seconds of service delivered so far."""
        self._account()
        return self._busy_time

    def _account(self) -> None:
        """Settle busy-time up to now; callers must re-sync ``_last_users``
        after mutating the user set."""
        now = self.engine.now
        self._busy_time += self._last_users * (now - self._last_change)
        self._last_change = now
        self._last_users = len(self._users)

    # ------------------------------------------------------------------
    def request(self) -> Request:
        """Claim a slot; the returned event fires when the claim is granted."""
        engine = self.engine
        pool = engine._request_pool
        req: Request | None = None
        if pool:
            candidate = pool.pop()
            # Recycle only if the pool held the last reference.  A granted
            # request's value is the request itself, so the self-reference
            # adds one to the expected count (local binding + getrefcount
            # argument + self-ref); a cancelled-then-parked request has no
            # grant value and expects two.
            expected = 3 if candidate._value is candidate else 2
            if _getrefcount(candidate) == expected:
                req = candidate
                req.callbacks = None
                req._value = _PENDING
                req._ok = True
                req._scheduled = False
                req.resource = self
        if req is None:
            req = Request(self)
        users = self._users
        if len(users) < self.capacity:
            now = engine._now
            if now != self._last_change:
                self._busy_time += self._last_users * (now - self._last_change)
                self._last_change = now
            users.add(req)
            self._last_users += 1
            # Inline Event.succeed without its already-triggered/delay
            # checks: a freshly built Request cannot have fired yet.
            req._value = req
            req._scheduled = True
            engine._ring.append(req)
        else:
            self._queue.append(req)
        return req

    def acquire_now(self) -> Request | None:
        """Grant a slot synchronously when that is provably unobservable.

        A ``request()`` whose grant rides the now-ring parks the caller
        and resumes it after everything already queued at this instant
        has run.  When nothing is queued — the ring is empty and no heap
        event is due at ``now`` — the caller would have been the sole
        ring entry and resumed immediately with nothing running in
        between, so continuing inline is order-identical to the parked
        path and merely skips one event dispatch plus a full
        generator-chain resume.  Returns ``None`` whenever any of that
        cannot be guaranteed (slot contention, pending same-instant
        work); callers must then fall back to ``request()`` + ``yield``.
        """
        users = self._users
        if len(users) >= self.capacity or not SYNC_GRANTS:
            return None
        engine = self.engine
        if engine._ring:
            return None
        heap = engine._heap
        now = engine._now
        if heap and heap[0][0] <= now:
            return None
        pool = engine._request_pool
        req: Request | None = None
        if pool:
            candidate = pool.pop()
            expected = 3 if candidate._value is candidate else 2
            if _getrefcount(candidate) == expected:
                req = candidate
                req._ok = True
                req.resource = self
        if req is None:
            req = Request(self)
        if now != self._last_change:
            self._busy_time += self._last_users * (now - self._last_change)
            self._last_change = now
        users.add(req)
        self._last_users += 1
        # The grant never needs dispatching: mark it already processed so
        # release() can park it for reuse, and self-referenced so the
        # pool's refcount gate treats it like any dispatched grant.
        req._value = req
        req._scheduled = True
        req.callbacks = _PROCESSED
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        users = self._users
        try:
            users.remove(request)
        except KeyError:
            raise SimulationError(
                f"release of a request that does not hold {self.name or 'resource'}"
            ) from None
        engine = self.engine
        now = engine._now
        if now != self._last_change:
            self._busy_time += self._last_users * (now - self._last_change)
            self._last_change = now
        queue = self._queue
        if queue:
            capacity = self.capacity
            ring_append = engine._ring.append
            while queue and len(users) < capacity:
                nxt = queue.popleft()
                users.add(nxt)
                # Inline succeed: a still-queued request cannot have fired.
                nxt._value = nxt
                nxt._scheduled = True
                ring_append(nxt)
            self._last_users = len(users)
        else:
            self._last_users -= 1
        # Park the released request for reuse.  Only once its grant has
        # been dispatched: a request released before its grant left the
        # ring (cancel of an unawaited grant) must keep its identity.
        pool = engine._request_pool
        if request.callbacks is _PROCESSED and len(pool) < _POOL_LIMIT:
            pool.append(request)

    def cancel(self, request: Request) -> None:
        """Withdraw a request: releases it if granted, dequeues it if not."""
        if request in self._users:
            self.release(request)
        else:
            try:
                self._queue.remove(request)
            except ValueError:
                pass  # never enqueued or already granted+released

    def use(self, duration: float) -> Generator[Event, object, None]:
        """Generator: hold one slot for ``duration`` virtual seconds.

        Usage inside a process: ``yield from resource.use(t)``.  The slot
        (or queue position) is given back even if the caller is aborted
        while waiting for the grant.
        """
        req = self.acquire_now()
        try:
            if req is None:
                req = self.request()
                yield req
            yield self.engine.timeout(duration)
        except BaseException:
            self.cancel(req)
            raise
        else:
            # Happy path: the grant fired, so the slot is held — release
            # directly instead of re-deriving that through cancel().
            self.release(req)

    def use_run(
        self, durations: "Sequence[float] | np.ndarray"
    ) -> Generator[Event, object, None]:
        """Hold one slot once for a whole cohort of segment durations.

        The cohort is served as a single grant/timeout/release whose
        duration is the vectorized sum of ``durations`` — one
        busy-interval update and one queue round trip for an N-segment
        run, instead of N.  This is for runs the model *defines* as one
        access (an N-page DRAM run, a multi-page device transfer), not
        for merging independent accesses: collapsing separately-queued
        accesses would change grant interleaving under contention and
        with it the virtual timeline.
        """
        import numpy as np

        darr = np.asarray(
            durations if isinstance(durations, np.ndarray) else list(durations),
            dtype=np.float64,
        )
        total = float(np.add.reduce(darr)) if darr.size else 0.0
        yield from self.use(total)

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name or id(self):#x} {self.in_use}/{self.capacity}"
            f" queued={self.queue_length}>"
        )
