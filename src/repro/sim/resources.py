"""Capacity-limited resources with FIFO queueing.

Devices, network links, and CPU cores are modelled as resources: a request
is granted when a slot frees up, in arrival order.  Service time is imposed
by the holder (request -> timeout -> release), for which :meth:`Resource.use`
provides the common pattern.
"""

from __future__ import annotations

import typing
from collections import deque
from collections.abc import Generator
from heapq import heappush

from repro.errors import SimulationError
from repro.sim.events import _PENDING, Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine


class Request(Event):
    """A pending or granted claim on one slot of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        # Requests are created for every device/NIC access: initialize the
        # Event slots in place rather than through super().__init__.
        self.engine = resource.engine
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._scheduled = False
        self.resource = resource


class Resource:
    """``capacity`` interchangeable slots, granted first-come first-served."""

    __slots__ = (
        "engine", "capacity", "name", "_queue", "_users",
        "_busy_time", "_last_change", "_last_users",
    )

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._queue: deque[Request] = deque()
        self._users: set[Request] = set()
        # Utilization accounting.
        self._busy_time = 0.0
        self._last_change = engine.now
        self._last_users = 0

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def busy_seconds(self) -> float:
        """Aggregate slot-seconds of service delivered so far."""
        self._account()
        return self._busy_time

    def _account(self) -> None:
        """Settle busy-time up to now; callers must re-sync ``_last_users``
        after mutating the user set."""
        now = self.engine.now
        self._busy_time += self._last_users * (now - self._last_change)
        self._last_change = now
        self._last_users = len(self._users)

    # ------------------------------------------------------------------
    def request(self) -> Request:
        """Claim a slot; the returned event fires when the claim is granted."""
        req = Request(self)
        users = self._users
        if len(users) < self.capacity:
            engine = self.engine
            now = engine._now
            self._busy_time += self._last_users * (now - self._last_change)
            self._last_change = now
            users.add(req)
            self._last_users = len(users)
            # Inline Event.succeed without its already-triggered/delay
            # checks: a freshly built Request cannot have fired yet.
            req._value = req
            req._scheduled = True
            engine._seq += 1
            heappush(engine._heap, (now, engine._seq, req))
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        users = self._users
        if request not in users:
            raise SimulationError(
                f"release of a request that does not hold {self.name or 'resource'}"
            )
        now = self.engine._now
        self._busy_time += self._last_users * (now - self._last_change)
        self._last_change = now
        users.remove(request)
        queue = self._queue
        capacity = self.capacity
        while queue and len(users) < capacity:
            nxt = queue.popleft()
            users.add(nxt)
            nxt.succeed(nxt)
        self._last_users = len(users)

    def cancel(self, request: Request) -> None:
        """Withdraw a request: releases it if granted, dequeues it if not."""
        if request in self._users:
            self.release(request)
        else:
            try:
                self._queue.remove(request)
            except ValueError:
                pass  # never enqueued or already granted+released

    def use(self, duration: float) -> Generator[Event, object, None]:
        """Generator: hold one slot for ``duration`` virtual seconds.

        Usage inside a process: ``yield from resource.use(t)``.  The slot
        (or queue position) is given back even if the caller is aborted
        while waiting for the grant.
        """
        req = self.request()
        try:
            yield req
            yield self.engine.timeout(duration)
        finally:
            self.cancel(req)

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name or id(self):#x} {self.in_use}/{self.capacity}"
            f" queued={self.queue_length}>"
        )
