"""Discrete-event simulation kernel.

A small simpy-style engine: simulation processes are Python generators that
yield :class:`Event` objects (timeouts, resource requests, other processes,
channel receives) and are resumed when those events trigger.  Virtual time
advances only through scheduled events, so a whole 128-core cluster run
completes in milliseconds of wall-clock time while producing the same
queueing/contention behaviour a real testbed would.
"""

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.resources import Request, Resource
from repro.sim.channel import Channel

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "Timeout",
]
