"""Span-based tracing on the simulation's virtual clock.

A :class:`Tracer` records :class:`Span` objects — named intervals of
*virtual* time attributed to one layer of the memory stack.  Recording a
span reads the engine clock and appends to a list; it never creates
events, timeouts, or metric counters, so a traced run is event-for-event
and counter-for-counter identical to an untraced one (the property the
tracing-identity gate in CI asserts).

Context propagation rides the simulator's own concurrency structure:

- Each :class:`~repro.sim.process.Process` owns a span *stack*.  While a
  process is being resumed, the tracer's active stack is swapped to that
  process's stack, so spans opened inside it nest under the process's
  own open spans — no matter how other processes interleave between its
  yields.
- A process created while a span is open (rank launch, prefetch,
  re-replication) *forks* that span: the creator's current innermost
  span becomes the base parent of everything the new process records.
  This is how one trace id follows a request across process boundaries.
- Messages hopping between ranks carry a *flow link*: the sender's span
  identity is queued per ``(src, dst, tag)`` channel and attached to the
  matching receive span (channels are FIFO per key, so the pairing is
  deterministic).

When ``engine.tracer is None`` (the default) none of this exists: call
sites pay one attribute load and a branch, and the hot per-event resume
loop is completely untouched.
"""

from __future__ import annotations

import typing
from collections import deque

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from collections.abc import Generator
    from repro.sim.engine import Engine
    from repro.sim.events import Event

#: Recording stops (and drops are counted) past this many spans, so a
#: pathological run cannot exhaust memory through its own trace.
DEFAULT_MAX_SPANS = 1 << 20


class Span:
    """One named interval of virtual time in one layer of the stack."""

    __slots__ = (
        "trace_id", "span_id", "parent_id",
        "layer", "name", "start", "end", "args", "_stack",
    )

    trace_id: int
    span_id: int
    parent_id: int | None
    layer: str
    name: str
    start: float
    end: float
    args: dict[str, object] | None

    @property
    def duration(self) -> float:
        """Virtual seconds between begin and end."""
        return self.end - self.start

    def __repr__(self) -> str:
        return (
            f"<Span {self.layer}.{self.name} trace={self.trace_id} "
            f"id={self.span_id} [{self.start:.6f}, {self.end:.6f}]>"
        )


class Tracer:
    """Collects spans against one engine's virtual clock.

    Attach with ``engine.tracer = Tracer(engine)`` *before* creating any
    processes: process construction is where per-process span stacks and
    context forks are wired up.
    """

    def __init__(
        self, engine: "Engine", *, max_spans: int = DEFAULT_MAX_SPANS
    ) -> None:
        self.engine = engine
        self.max_spans = max_spans
        #: All recorded spans in begin order (ends filled in place).
        self.spans: list[Span] = []
        #: Spans not recorded because ``max_spans`` was reached.
        self.dropped = 0
        # The root stack holds spans opened outside any process (driver
        # code around ``engine.run``); ``_active`` always points at the
        # stack of whatever context is currently executing.
        self._root: list[Span] = []
        self._active: list[Span] = self._root
        self._next_span = 0
        self._next_trace = 0
        # Flow side-table: (src, dst, tag) -> sender span identities,
        # FIFO like the underlying message channels.
        self._flows: dict[object, deque[tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    def begin(self, layer: str, name: str, **args: object) -> Span:
        """Open a span under the current context; returns it for :meth:`end`."""
        stack = self._active
        parent = stack[-1] if stack else None
        span = Span()
        span.layer = layer
        span.name = name
        span.start = span.end = self.engine._now
        if parent is not None:
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        else:
            self._next_trace += 1
            span.trace_id = self._next_trace
            span.parent_id = None
        self._next_span += 1
        span.span_id = self._next_span
        span.args = args or None
        span._stack = stack
        stack.append(span)
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    def end(self, span: Span, **args: object) -> None:
        """Close ``span`` at the current virtual time.

        Pops by identity from the stack the span was opened on — not
        from whatever stack happens to be active — so a wrapper finalized
        out of context (generator GC) can never corrupt another
        process's nesting.
        """
        span.end = self.engine._now
        if args:
            merged = dict(span.args) if span.args else {}
            merged.update(args)
            span.args = merged
        stack = span._stack
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                del stack[i]
                break

    def current(self) -> Span | None:
        """The innermost open span of the current context, if any."""
        stack = self._active
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    def wrap(
        self,
        layer: str,
        name: str,
        gen: "Generator[Event, object, object]",
        **args: object,
    ) -> "Generator[Event, object, object]":
        """Run ``gen`` inside a span.

        The span begins at the wrapper's *first resume* — inside the
        owning process's frame, under that process's span stack — not at
        wrapper creation, which may happen in a different context.
        """
        span = self.begin(layer, name, **args)
        try:
            result = yield from gen
        finally:
            self.end(span)
        return result

    def wrap_send(
        self,
        layer: str,
        name: str,
        gen: "Generator[Event, object, object]",
        flow_key: object,
        **args: object,
    ) -> "Generator[Event, object, object]":
        """Like :meth:`wrap`, queueing this span as the flow source for
        the next receive on ``flow_key``."""
        span = self.begin(layer, name, **args)
        flows = self._flows.get(flow_key)
        if flows is None:
            flows = self._flows[flow_key] = deque()
        flows.append((span.trace_id, span.span_id))
        try:
            result = yield from gen
        finally:
            self.end(span)
        return result

    def wrap_recv(
        self,
        layer: str,
        name: str,
        gen: "Generator[Event, object, object]",
        flow_key: object,
        **args: object,
    ) -> "Generator[Event, object, object]":
        """Like :meth:`wrap`, linking the matching sender span (if one
        is queued on ``flow_key``) into this span's args."""
        span = self.begin(layer, name, **args)
        try:
            result = yield from gen
        finally:
            flows = self._flows.get(flow_key)
            if flows:
                link_trace, link_span = flows.popleft()
                self.end(span, link_trace=link_trace, link_span=link_span)
            else:
                self.end(span)
        return result

    # ------------------------------------------------------------------
    def roots(self) -> list[Span]:
        """Recorded spans with no parent, in begin order."""
        return [span for span in self.spans if span.parent_id is None]

    def by_trace(self, trace_id: int) -> list[Span]:
        """All recorded spans of one trace, in begin order."""
        return [span for span in self.spans if span.trace_id == trace_id]

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (
            f"<Tracer spans={len(self.spans)} dropped={self.dropped} "
            f"traces={self._next_trace}>"
        )
