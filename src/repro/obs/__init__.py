"""Virtual-time distributed tracing for the simulated memory stack.

Enable with the ``REPRO_TRACE=1`` environment variable or the
``--trace`` flag of ``python -m repro.experiments`` /
``tools/bench_wallclock.py``; every :class:`~repro.experiments.runner.Testbed`
built while tracing is on attaches a :class:`~repro.obs.tracer.Tracer`
to its engine.  Spans read the virtual clock and never schedule events,
so traced runs stay bit-identical (virtual times, counters, report
digests) to untraced ones — see ``docs/INTERNALS.md``, "Tracing".
"""

from __future__ import annotations

import os
import typing

from repro.obs.critical import CriticalPath, critical_path
from repro.obs.export import (
    LATENCY_SCHEMA,
    chrome_trace,
    latency_json,
    latency_lines,
    latency_summary,
    span_tree,
    write_chrome_trace,
)
from repro.obs.tracer import Span, Tracer

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

_enabled = os.environ.get("REPRO_TRACE", "") not in ("", "0")

#: Tracers harvested from completed runs, as ``(label, tracer)`` pairs,
#: for end-of-run export (see :func:`collect` / :func:`collected`).
_collected: list[tuple[str, Tracer]] = []


def enabled() -> bool:
    """Whether new testbeds should attach a tracer."""
    return _enabled


def enable(on: bool = True) -> None:
    """Turn tracing on (or off) for subsequently built testbeds."""
    global _enabled
    _enabled = on
    # Propagate to forked workers, which re-import this module's state
    # lazily from the environment.
    os.environ["REPRO_TRACE"] = "1" if on else "0"


def new_tracer_if_enabled(engine: "Engine") -> Tracer | None:
    """A fresh tracer bound to ``engine`` when tracing is on, else None."""
    return Tracer(engine) if _enabled else None


def collect(label: str, tracer: Tracer) -> None:
    """Stash a finished run's tracer for later export."""
    _collected.append((label, tracer))


def collected() -> list[tuple[str, Tracer]]:
    """All tracers collected so far, in collection order."""
    return list(_collected)


def clear_collected() -> None:
    """Drop all collected tracers (tests, repeated CLI runs)."""
    _collected.clear()


def report_lines(label: str, tracer: Tracer) -> list[str]:
    """A compact "where the time went" summary for one run's tracer.

    Critical-path table of the longest root span plus per-op latency
    percentiles — the lines experiments attach to their reports.
    """
    if not tracer.spans:
        return []
    lines = [
        f"{label}: {len(tracer.spans)} spans, "
        f"{tracer._next_trace} traces"
        + (f", {tracer.dropped} dropped" if tracer.dropped else "")
    ]
    try:
        analysis = critical_path(tracer.spans)
    except ValueError:
        analysis = None
    if analysis is not None:
        lines.extend(analysis.table_lines())
    lines.extend(latency_lines(tracer.spans, max_rows=10))
    return lines


__all__ = [
    "CriticalPath",
    "LATENCY_SCHEMA",
    "Span",
    "Tracer",
    "chrome_trace",
    "clear_collected",
    "collect",
    "collected",
    "critical_path",
    "enable",
    "enabled",
    "latency_json",
    "latency_lines",
    "latency_summary",
    "new_tracer_if_enabled",
    "report_lines",
    "span_tree",
    "write_chrome_trace",
]
