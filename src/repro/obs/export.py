"""Exporters for recorded span trees.

- :func:`chrome_trace` — Chrome ``trace_event`` JSON array (open in
  ``chrome://tracing`` or https://ui.perfetto.dev); virtual seconds map
  to trace microseconds, each exported tracer becomes one "process" and
  each layer one "thread".
- :func:`span_tree` — plain-text indented span tree for terminals/tests.
- :func:`latency_summary` — per-(layer, op) virtual-latency percentiles.
- :func:`latency_json` — the same percentiles plus log-spaced histogram
  buckets as a schema-versioned JSON-safe payload, for dashboards and
  cross-run tooling (``tools/profile_stack.py --layers-out`` embeds it).
"""

from __future__ import annotations

import bisect
import json

from repro.obs.tracer import Span, Tracer

#: Bump when the :func:`latency_json` payload layout changes.  Consumers
#: must check this before interpreting the ``ops`` table.
LATENCY_SCHEMA = 1

#: Default histogram bucket upper bounds (virtual seconds): powers of two
#: from 1 us to ~8 s.  Durations above the last bound land in a final
#: overflow bucket, so every payload has ``len(bounds) + 1`` counts.
LATENCY_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    1e-6 * 2.0**i for i in range(24)
)


def _percentile(durations: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not durations:
        return 0.0
    rank = min(len(durations) - 1, max(0, int(q * len(durations))))
    return durations[rank]


def latency_summary(
    spans: list[Span],
) -> dict[tuple[str, str], dict[str, float]]:
    """Per-(layer, name) count/p50/p95/p99/max of span durations."""
    buckets: dict[tuple[str, str], list[float]] = {}
    for span in spans:
        buckets.setdefault((span.layer, span.name), []).append(span.duration)
    summary: dict[tuple[str, str], dict[str, float]] = {}
    for key in sorted(buckets):
        durations = sorted(buckets[key])
        summary[key] = {
            "count": float(len(durations)),
            "p50": _percentile(durations, 0.50),
            "p95": _percentile(durations, 0.95),
            "p99": _percentile(durations, 0.99),
            "max": durations[-1],
            "total": sum(durations),
        }
    return summary


def latency_json(
    spans: list[Span],
    *,
    bucket_bounds: tuple[float, ...] = LATENCY_BUCKET_BOUNDS,
) -> dict[str, object]:
    """Machine-readable per-``layer.op`` latency payload.

    Returns a JSON-safe dict: ``schema`` (see :data:`LATENCY_SCHEMA`),
    the ``bucket_bounds`` used (upper bounds, virtual seconds), and an
    ``ops`` table keyed by ``"layer.op"`` with the same count/p50/p95/
    p99/max/total fields as :func:`latency_summary` plus ``buckets`` —
    ``len(bucket_bounds) + 1`` counts, the last an overflow bucket.
    Everything derives from virtual durations, so the payload is
    bit-deterministic across runs of the same simulation.
    """
    bounds = [float(b) for b in bucket_bounds]
    if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
        raise ValueError("bucket_bounds must be strictly increasing")
    durations_by_key: dict[tuple[str, str], list[float]] = {}
    for span in spans:
        durations_by_key.setdefault(
            (span.layer, span.name), []
        ).append(span.duration)
    ops: dict[str, dict[str, object]] = {}
    for layer, name in sorted(durations_by_key):
        durations = sorted(durations_by_key[(layer, name)])
        counts = [0] * (len(bounds) + 1)
        for duration in durations:
            counts[bisect.bisect_left(bounds, duration)] += 1
        ops[f"{layer}.{name}"] = {
            "count": len(durations),
            "p50": _percentile(durations, 0.50),
            "p95": _percentile(durations, 0.95),
            "p99": _percentile(durations, 0.99),
            "max": durations[-1],
            "total": sum(durations),
            "buckets": counts,
        }
    return {
        "schema": LATENCY_SCHEMA,
        "unit": "virtual_seconds",
        "bucket_bounds": bounds,
        "ops": ops,
    }


def latency_lines(spans: list[Span], *, max_rows: int = 20) -> list[str]:
    """The latency summary as aligned text lines (microseconds)."""
    summary = latency_summary(spans)
    rows = sorted(
        summary.items(), key=lambda kv: (-kv[1]["total"], kv[0])
    )[:max_rows]
    lines = [
        f"  {'layer.op':<28s} {'count':>8s} {'p50us':>10s} "
        f"{'p95us':>10s} {'p99us':>10s}"
    ]
    for (layer, name), stats in rows:
        lines.append(
            f"  {layer + '.' + name:<28s} {int(stats['count']):>8d} "
            f"{stats['p50'] * 1e6:>10.2f} {stats['p95'] * 1e6:>10.2f} "
            f"{stats['p99'] * 1e6:>10.2f}"
        )
    return lines


def chrome_trace(
    tracers: list[tuple[str, Tracer]]
) -> list[dict[str, object]]:
    """Chrome ``trace_event`` complete-events for the given tracers.

    ``tracers`` is ``[(label, tracer), ...]``; each pair gets its own
    pid (named ``label`` via metadata events) and one tid per layer.
    Timestamps are virtual seconds scaled to microseconds.
    """
    events: list[dict[str, object]] = []
    for pid, (label, tracer) in enumerate(tracers, start=1):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": label},
            }
        )
        layers = sorted({span.layer for span in tracer.spans})
        tids = {layer: tid for tid, layer in enumerate(layers, start=1)}
        for layer, tid in tids.items():
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": layer},
                }
            )
        for span in tracer.spans:
            args: dict[str, object] = {
                "trace": span.trace_id,
                "span": span.span_id,
            }
            if span.parent_id is not None:
                args["parent"] = span.parent_id
            if span.args:
                args.update(span.args)
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tids[span.layer],
                    "name": f"{span.layer}.{span.name}",
                    "cat": span.layer,
                    "ts": span.start * 1e6,
                    "dur": (span.end - span.start) * 1e6,
                    "args": args,
                }
            )
    return events


def write_chrome_trace(path: str, tracers: list[tuple[str, Tracer]]) -> int:
    """Write :func:`chrome_trace` JSON to ``path``; returns event count."""
    events = chrome_trace(tracers)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(events, handle, separators=(",", ":"), default=str)
        handle.write("\n")
    return len(events)


def span_tree(
    spans: list[Span], *, max_spans: int = 2000, indent: str = "  "
) -> str:
    """Plain-text indented dump of the span forest, begin-ordered."""
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s.start, s.span_id))
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        if len(lines) >= max_spans:
            return
        extra = ""
        if span.args:
            extra = " " + " ".join(
                f"{k}={v}" for k, v in sorted(span.args.items())
            )
        lines.append(
            f"{indent * depth}{span.layer}.{span.name} "
            f"[{span.start * 1e3:.3f}ms +{span.duration * 1e6:.2f}us "
            f"trace={span.trace_id}]{extra}"
        )
        for child in children.get(span.span_id, ()):
            emit(child, depth + 1)

    for root in children.get(None, ()):
        emit(root, 0)
    if len(lines) >= max_spans:
        lines.append(f"... ({len(spans)} spans total, output truncated)")
    return "\n".join(lines)
