"""Critical-path analysis over a recorded span tree.

Answers "where did the virtual time go" for one completed root span
(an ``app`` STREAM run, a checkpoint loop, ...): walks the tree backward
from the root's end, always descending into the latest-finishing child,
and attributes every instant of the root's interval to exactly one
layer — the deepest span that was covering it on that chain.  The
resulting per-layer totals *partition* the root interval, so they sum to
the run's virtual makespan by construction.

With concurrent children (ranks forked from one root span), the
latest-finisher rule selects the dependency chain that actually bounded
completion: whatever work was still running when the parent finished,
recursively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import Span


@dataclass
class CriticalPath:
    """Per-layer attribution of one root span's interval."""

    root: Span
    #: layer -> virtual seconds of the root interval attributed to it.
    layer_seconds: dict[str, float] = field(default_factory=dict)
    #: The longest dependency chain, root first.
    chain: list[Span] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """The root span's duration (what the layer shares sum to)."""
        return self.root.duration

    def shares(self) -> list[tuple[str, float, float]]:
        """``(layer, seconds, fraction)`` rows, largest share first."""
        total = self.makespan
        rows = sorted(
            self.layer_seconds.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [
            (layer, seconds, seconds / total if total else 0.0)
            for layer, seconds in rows
        ]

    def table_lines(self, *, max_rows: int = 12) -> list[str]:
        """A plain-text "where the time went" table."""
        lines = [
            f"critical path of {self.root.layer}.{self.root.name} "
            f"(trace {self.root.trace_id}): makespan {self.makespan:.6f}s "
            f"across {len(self.chain)} chained spans"
        ]
        rows = self.shares()
        shown = rows[:max_rows]
        for layer, seconds, share in shown:
            lines.append(f"  {layer:<16s} {seconds:12.6f}s  {100 * share:5.1f}%")
        hidden = rows[max_rows:]
        if hidden:
            rest = sum(seconds for _, seconds, _ in hidden)
            lines.append(
                f"  ({len(hidden)} more layers) {rest:12.6f}s  "
                f"{100 * rest / self.makespan if self.makespan else 0.0:5.1f}%"
            )
        lines.append(
            f"  {'total':<16s} {sum(self.layer_seconds.values()):12.6f}s  100.0%"
        )
        return lines


def _children_index(spans: list[Span]) -> dict[int, list[Span]]:
    children: dict[int, list[Span]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    return children


def critical_path(spans: list[Span], root: Span | None = None) -> CriticalPath:
    """Analyze the critical path under ``root``.

    ``root`` defaults to the longest parentless span.  Raises
    ``ValueError`` when there is nothing to analyze.
    """
    if root is None:
        candidates = [s for s in spans if s.parent_id is None]
        if not candidates:
            raise ValueError("no root span to analyze")
        root = max(candidates, key=lambda s: (s.duration, -s.span_id))
    children = _children_index(spans)
    result = CriticalPath(root=root)
    layer_seconds = result.layer_seconds

    def attribute(span: Span, lo: float, hi: float) -> None:
        """Attribute ``[lo, hi]`` of ``span``'s interval to layers.

        Walk the span's children latest-end first: the gap between a
        child's end and the running cursor belongs to the span itself,
        the child's own window recurses, and overlapping earlier
        siblings are skipped (they were not the binding dependency).
        """
        cursor = hi
        for child in sorted(
            children.get(span.span_id, ()),
            key=lambda c: (c.end, c.span_id),
            reverse=True,
        ):
            if child.end > cursor:
                continue
            if child.end <= lo:
                break
            if cursor > child.end:
                layer_seconds[span.layer] = (
                    layer_seconds.get(span.layer, 0.0) + (cursor - child.end)
                )
            attribute(child, max(lo, child.start), child.end)
            cursor = max(lo, child.start)
            if cursor <= lo:
                break
        if cursor > lo:
            layer_seconds[span.layer] = (
                layer_seconds.get(span.layer, 0.0) + (cursor - lo)
            )

    attribute(root, root.start, root.end)

    # The chain itself: descend through latest-finishing children.
    chain = [root]
    node, cursor = root, root.end
    while True:
        kids = [
            c
            for c in children.get(node.span_id, ())
            if c.end <= cursor and c.end > node.start
        ]
        if not kids:
            break
        node = max(kids, key=lambda c: (c.end, c.span_id))
        cursor = node.end
        chain.append(node)
    result.chain = chain
    return result
