"""Parallel file system substrate (Lustre-class, disk-backed).

The HPC center's scratch PFS appears in the evaluation twice: MM stages
its input/output matrices there, and the DRAM-only 2-pass quicksort of
Table VI must exchange interim sorted runs through it — which is exactly
why it loses to NVMalloc's hybrid configuration by ~10x.
"""

from repro.pfs.pfs import ParallelFileSystem

__all__ = ["ParallelFileSystem"]
