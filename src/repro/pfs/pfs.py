"""A striped, disk-backed parallel file system model.

``num_servers`` I/O servers each own one HDD; files are striped across
servers in ``stripe_size`` units.  Clients reach the PFS over the cluster
fabric through a single storage-network endpoint whose NIC models the
shared ingress bottleneck of a central scratch system.  Payload bytes are
real, so staged data round-trips exactly.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.devices.hdd import HDD
from repro.devices.specs import HDD_7200RPM, DeviceSpec
from repro.errors import StoreError
from repro.network.fabric import Network
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.util.recorder import MetricsRecorder
from repro.util.units import MiB


class ParallelFileSystem:
    """Center-wide scratch storage shared by all compute nodes."""

    ENDPOINT = "pfs"

    def __init__(
        self,
        engine: Engine,
        network: Network,
        *,
        num_servers: int = 4,
        stripe_size: int = 1 * MiB,
        hdd_spec: DeviceSpec = HDD_7200RPM,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        if num_servers < 1:
            raise StoreError("PFS needs at least one I/O server")
        self.engine = engine
        self.network = network
        self.stripe_size = stripe_size
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self.nic = network.attach(self.ENDPOINT)
        self.servers = [
            HDD(engine, hdd_spec, name=f"pfs.ost{i}", metrics=self.metrics)
            for i in range(num_servers)
        ]
        self._files: dict[str, bytearray] = {}

    # ------------------------------------------------------------------
    # Namespace
    # ------------------------------------------------------------------
    def create(self, name: str, size: int) -> None:
        """Create a zero-filled file (metadata-only in simulated time)."""
        if name in self._files:
            raise StoreError(f"PFS file {name!r} already exists")
        if size < 0:
            raise StoreError(f"negative size {size}")
        self._files[name] = bytearray(size)

    def exists(self, name: str) -> bool:
        """True when the PFS holds a file called ``name``."""
        return name in self._files

    def size(self, name: str) -> int:
        """Size of a PFS file in bytes."""
        return len(self._file(name))

    def unlink(self, name: str) -> None:
        """Delete a PFS file."""
        self._file(name)
        del self._files[name]

    def _file(self, name: str) -> bytearray:
        try:
            return self._files[name]
        except KeyError:
            raise StoreError(f"no PFS file {name!r}") from None

    def read_raw(self, name: str) -> bytes:
        """The raw stored contents, for verification in tests/drivers
        (charges no simulated time)."""
        return bytes(self._file(name))

    def put_initial(self, name: str, data: bytes) -> None:
        """Pre-populate a file without charging time (experiment setup:
        input data already resides on scratch before the job starts)."""
        if name in self._files:
            raise StoreError(f"PFS file {name!r} already exists")
        self._files[name] = bytearray(data)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _stripes(self, offset: int, length: int) -> list[tuple[int, int, int]]:
        """(server, server_offset, piece) runs covering the byte range."""
        runs: list[tuple[int, int, int]] = []
        cursor = offset
        end = offset + length
        nservers = len(self.servers)
        while cursor < end:
            stripe_idx = cursor // self.stripe_size
            in_stripe = cursor - stripe_idx * self.stripe_size
            piece = min(self.stripe_size - in_stripe, end - cursor)
            server = stripe_idx % nservers
            # Offset on the server's disk: stripes land contiguously per
            # server in round-robin order.
            server_off = (stripe_idx // nservers) * self.stripe_size + in_stripe
            runs.append((server, server_off, piece))
            cursor += piece
        return runs

    def read(
        self, client: str, name: str, offset: int, length: int
    ) -> Generator[Event, object, bytes]:
        """Read bytes from a PFS file into a compute node."""
        data = self._file(name)
        self._check(name, offset, length)
        for server, server_off, piece in self._stripes(offset, length):
            yield from self.servers[server].read_extent(
                server_off, piece, stream=(name, client)
            )
        yield from self.network.transfer(self.ENDPOINT, client, length)
        self.metrics.add("pfs.read.bytes", length)
        return bytes(data[offset : offset + length])

    def write(
        self, client: str, name: str, offset: int, payload: bytes
    ) -> Generator[Event, object, None]:
        """Write bytes from a compute node to a PFS file."""
        data = self._file(name)
        self._check(name, offset, len(payload))
        yield from self.network.transfer(client, self.ENDPOINT, len(payload))
        for server, server_off, piece in self._stripes(offset, len(payload)):
            yield from self.servers[server].write_extent(
                server_off, piece, stream=(name, client)
            )
        data[offset : offset + len(payload)] = payload
        self.metrics.add("pfs.write.bytes", len(payload))

    def _check(self, name: str, offset: int, length: int) -> None:
        size = len(self._file(name))
        if offset < 0 or length < 0 or offset + length > size:
            raise StoreError(
                f"PFS access [{offset}, {offset + length}) outside {name!r} "
                f"of size {size}"
            )
