"""Communicator: point-to-point and collective operations between ranks."""

from __future__ import annotations

import typing
from collections.abc import Generator

import numpy as np

from repro.cluster.node import Node
from repro.devices.base import AccessKind
from repro.errors import CommError
from repro.sim.channel import Channel
from repro.sim.engine import Engine
from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.nvmalloc import NVMalloc
    from repro.cluster.cpu import Core


def payload_bytes(data: object) -> int:
    """Wire size of a message payload."""
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if isinstance(data, (bytes, bytearray, memoryview)):
        return len(data)
    if isinstance(data, (list, tuple)):
        return sum(payload_bytes(item) for item in data) + 16
    # Small control payloads (ints, tuples of metadata, None).
    return 64


class Communicator:
    """An MPI_COMM_WORLD-like group over a set of (rank -> node) bindings."""

    def __init__(self, engine: Engine, nodes: list[Node]) -> None:
        if not nodes:
            raise CommError("communicator needs at least one rank")
        self.engine = engine
        self.nodes = nodes  # index = rank
        self._inboxes: dict[tuple[int, int, int], Channel] = {}
        self._barrier_count = 0
        self._barrier_waiters: list[Event] = []
        self._barrier_generation = 0

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self.nodes)

    def node_of(self, rank: int) -> Node:
        """The node hosting ``rank``."""
        self._check_rank(rank)
        return self.nodes[rank]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommError(f"rank {rank} out of range (size {self.size})")

    def _inbox(self, src: int, dst: int, tag: int) -> Channel:
        key = (src, dst, tag)
        channel = self._inboxes.get(key)
        if channel is None:
            channel = self._inboxes[key] = Channel(
                self.engine, name=f"{src}->{dst}#{tag}"
            )
        return channel

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(
        self, data: object, *, src: int, dest: int, tag: int = 0
    ) -> Generator[Event, object, None]:
        """Dispatch :meth:`_send_impl`, spanned when tracing is on.

        The send span is queued as the flow source for the matching
        receive (inbox channels are FIFO per ``(src, dest, tag)``, so
        sender and receiver spans pair deterministically).
        """
        gen = self._send_impl(data, src=src, dest=dest, tag=tag)
        tracer = self.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap_send(
            "comm", "send", gen, (src, dest, tag),
            src=src, dest=dest, tag=tag, bytes=payload_bytes(data),
        )

    def _send_impl(
        self, data: object, *, src: int, dest: int, tag: int = 0
    ) -> Generator[Event, object, None]:
        """Blocking-send semantics: returns once the payload is delivered."""
        nodes = self.nodes
        size = len(nodes)
        if not 0 <= src < size:
            raise CommError(f"rank {src} out of range (size {size})")
        if not 0 <= dest < size:
            raise CommError(f"rank {dest} out of range (size {size})")
        nbytes = payload_bytes(data)
        src_node = nodes[src]
        dst_node = nodes[dest]
        if src_node is dst_node:
            # Same node: shared-memory copy at DRAM speed.  Inlined
            # StorageDevice.access (DRAM has no _pre_access hook;
            # event-for-event identical, one generator hop less).
            dram = src_node.dram
            req = dram._acquire_now()
            if req is None:
                req = dram._acquire()
                yield req
            try:
                bytes_counter, time_counter, time_fn = dram._write_stats
                duration = time_fn(nbytes)
                bytes_counter.total += nbytes
                bytes_counter.count += 1
                time_counter.total += duration
                time_counter.count += 1
                yield self.engine.timeout(duration)
            finally:
                dram._release(req)
        else:
            yield from src_node.network.transfer(src_node.name, dst_node.name, nbytes)
        self._inbox(src, dest, tag).put(data)

    def recv(
        self, *, source: int, dst: int, tag: int = 0
    ) -> Generator[Event, object, object]:
        """Dispatch :meth:`_recv_impl`; a traced receive links the
        matching send span into its args (``link_trace``/``link_span``)."""
        gen = self._recv_impl(source=source, dst=dst, tag=tag)
        tracer = self.engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap_recv(
            "comm", "recv", gen, (source, dst, tag),
            src=source, dest=dst, tag=tag,
        )

    def _recv_impl(
        self, *, source: int, dst: int, tag: int = 0
    ) -> Generator[Event, object, object]:
        """Receive the next message from ``source``."""
        self._check_rank(source)
        self._check_rank(dst)
        data = yield self._inbox(source, dst, tag).get()
        return data

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def bcast(
        self, data: object, *, root: int, rank: int, tag: int = 1_000
    ) -> Generator[Event, object, object]:
        """Binomial-tree broadcast (log2(P) rounds, as real MPI does)."""
        self._check_rank(root)
        self._check_rank(rank)
        size = self.size
        # Work in a rotated space where the root is rank 0.
        virtual = (rank - root) % size
        mask = 1
        received = data if virtual == 0 else None
        while mask < size:
            if virtual & mask:
                src_virtual = virtual - mask
                src = (src_virtual + root) % size
                received = yield from self.recv(source=src, dst=rank, tag=tag)
                break
            mask <<= 1
        # Forward to children in decreasing mask order.
        if virtual == 0:
            received = data
        child_mask = mask >> 1 if virtual else _highest_bit(size)
        while child_mask:
            child_virtual = virtual + child_mask
            if child_virtual < size and not virtual & child_mask:
                child = (child_virtual + root) % size
                yield from self.send(received, src=rank, dest=child, tag=tag)
            child_mask >>= 1
        return received

    def scatter(
        self, chunks: list[object] | None, *, root: int, rank: int, tag: int = 2_000
    ) -> Generator[Event, object, object]:
        """Root sends ``chunks[i]`` to rank ``i``; returns this rank's piece."""
        self._check_rank(root)
        if rank == root:
            if chunks is None or len(chunks) != self.size:
                raise CommError(
                    f"scatter root needs exactly {self.size} chunks"
                )
            for dest, item in enumerate(chunks):
                if dest != root:
                    yield from self.send(item, src=root, dest=dest, tag=tag)
            return chunks[root]
        return (yield from self.recv(source=root, dst=rank, tag=tag))

    def gather(
        self, data: object, *, root: int, rank: int, tag: int = 3_000
    ) -> Generator[Event, object, list[object] | None]:
        """Collect every rank's ``data`` at the root (rank order)."""
        self._check_rank(root)
        if rank != root:
            yield from self.send(data, src=rank, dest=root, tag=tag)
            return None
        results: list[object] = [None] * self.size
        results[root] = data
        for src in range(self.size):
            if src != root:
                results[src] = yield from self.recv(source=src, dst=root, tag=tag)
        return results

    def allgather(
        self, data: object, *, rank: int, tag: int = 4_000
    ) -> Generator[Event, object, list[object]]:
        """Gather to rank 0, then broadcast the full list."""
        gathered = yield from self.gather(data, root=0, rank=rank, tag=tag)
        result = yield from self.bcast(gathered, root=0, rank=rank, tag=tag + 1)
        assert isinstance(result, list)
        return result

    def barrier(self, *, rank: int) -> Generator[Event, object, None]:
        """All ranks wait until every rank has arrived."""
        self._check_rank(rank)
        self._barrier_count += 1
        if self._barrier_count == self.size:
            self._barrier_count = 0
            self._barrier_generation += 1
            waiters, self._barrier_waiters = self._barrier_waiters, []
            for event in waiters:
                event.succeed(None)
        else:
            event = self.engine.event()
            self._barrier_waiters.append(event)
            yield event


def _highest_bit(n: int) -> int:
    """Largest power of two strictly below ``n`` (0 when n <= 1)."""
    if n <= 1:
        return 0
    return 1 << (n - 1).bit_length() - 1


class RankContext:
    """Everything one MPI rank needs: identity, core, comm, NVMalloc."""

    def __init__(
        self,
        *,
        rank: int,
        comm: Communicator,
        core: "Core",
        nvmalloc: "NVMalloc | None",
    ) -> None:
        self.rank = rank
        self.comm = comm
        self.core = core
        self.nvmalloc = nvmalloc
        self.node = comm.node_of(rank)

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.comm.size

    @property
    def engine(self) -> Engine:
        """The simulation engine ranks run on."""
        return self.comm.engine

    # Convenience pass-throughs so workload code reads like mpi4py.
    def send(self, data: object, dest: int, tag: int = 0):
        """mpi4py-style pass-through to the communicator."""
        return self.comm.send(data, src=self.rank, dest=dest, tag=tag)

    def recv(self, source: int, tag: int = 0):
        """mpi4py-style pass-through to the communicator."""
        return self.comm.recv(source=source, dst=self.rank, tag=tag)

    def bcast(self, data: object, root: int = 0):
        """mpi4py-style pass-through to the communicator."""
        return self.comm.bcast(data, root=root, rank=self.rank)

    def scatter(self, chunks: list[object] | None, root: int = 0):
        """mpi4py-style pass-through to the communicator."""
        return self.comm.scatter(chunks, root=root, rank=self.rank)

    def gather(self, data: object, root: int = 0):
        """mpi4py-style pass-through to the communicator."""
        return self.comm.gather(data, root=root, rank=self.rank)

    def allgather(self, data: object):
        """mpi4py-style pass-through to the communicator."""
        return self.comm.allgather(data, rank=self.rank)

    def barrier(self):
        """mpi4py-style pass-through to the communicator."""
        return self.comm.barrier(rank=self.rank)

    def compute(self, flops: float):
        """Occupy this rank's core for ``flops`` of work."""
        return self.core.compute(flops)

    def dram_array(self, shape: tuple[int, ...], dtype: object = np.float64):
        """A DRAM-resident typed array on this rank's node (budget-checked).

        Works in DRAM-only jobs too, where no NVMalloc context exists.
        """
        from repro.core.variable import DRAMArray

        return DRAMArray(self.node.dram, tuple(int(s) for s in shape), np.dtype(dtype))

    def __repr__(self) -> str:
        return f"<RankContext rank={self.rank}/{self.size} on {self.node.name}>"
