"""Sharded single-run execution with conservative lookahead-window sync.

The orchestrator (``repro.experiments.parallel``) parallelizes *across*
experiments; this module parallelizes *within* one large simulation.  The
model is partitioned by node group into shards, each owning a private
:class:`~repro.sim.engine.Engine` and its nodes' resources.  The only
cross-shard coupling is the network fabric, and every cross-shard message
takes at least the link's one-way propagation latency ``L`` to arrive.
That bound is the classic conservative-PDES lookahead:

    A shard executing the window ``[T, T + L)`` can only *send* messages
    with ``send_time >= T``, which therefore arrive at
    ``recv_time >= T + L`` — never inside the window being executed.

So the runner advances all shards in lockstep windows of length ``L``:
deliver every in-flight message due before the window's horizon, run each
shard's engine to the horizon, collect the messages it emitted, barrier,
route, repeat.  No shard ever sees an event out of order, which makes the
execution **bit-identical regardless of how many OS processes execute
it** — worker count is a wall-clock knob (``--shards N``), never a model
parameter.  Windows with no scheduled activity are skipped by jumping the
window start to the earliest pending event or delivery.

Determinism rules (the invariants the shard-identity tests pin):

- messages delivered into a shard within one window are sorted by
  ``(recv_time, send_time, src_shard, seq)`` before being scheduled as a
  batch (:meth:`~repro.sim.engine.Engine.schedule_batch`), so arrival
  order never depends on worker scheduling;
- shard models are built and advanced in shard-id order within each
  worker, and each shard's engine is fully isolated;
- worker assignment is round-robin by shard id, but since each shard
  sees an identical (inbound, horizon) sequence either way, the worker
  count cannot influence any virtual result.

Shard *models* are built inside the worker that owns them (simulation
object graphs do not pickle); a :class:`ShardSpec` carries a dotted
``module:function`` builder path plus plain-data parameters, which is all
that crosses process boundaries besides the message tuples themselves.
"""

from __future__ import annotations

import importlib
import time as _time
from dataclasses import dataclass, field
from multiprocessing import Pipe
from typing import Protocol

from repro.errors import SimulationError
from repro.network.link import LinkSpec

#: Message tuple layout — plain data so it pickles fast and sorts
#: deterministically: (recv_time, send_time, src_shard, seq, dst_shard,
#: dst_node, kind, nbytes, req_id).
RECV_TIME, SEND_TIME, SRC_SHARD, SEQ, DST_SHARD = 0, 1, 2, 3, 4
DST_NODE, KIND, NBYTES, REQ_ID = 5, 6, 7, 8


@dataclass(frozen=True)
class ShardSpec:
    """Plain-data description of a sharded run (picklable)."""

    #: Model partitions.  Fixed by the scenario — NOT the worker count.
    num_shards: int
    nodes_per_shard: int
    #: Dotted ``module:function`` path; called as ``builder(spec, shard_id)``
    #: inside the owning worker to construct that shard's model.
    builder: str
    #: Cross-shard link (propagation latency == the lookahead window).
    link: LinkSpec
    #: Workload parameters interpreted by the builder.
    timesteps: int = 2
    chunks_per_step: int = 4
    chunk_bytes: int = 256 * 1024
    compute_seconds: float = 2e-3
    ack_bytes: int = 4 * 1024
    #: Benefactor-side SSD service model.
    ssd_write_bandwidth: float = 170e6
    ssd_latency: float = 75e-6

    @property
    def lookahead(self) -> float:
        """The conservative window length: min cross-shard delivery delay."""
        return self.link.latency


class ShardModel(Protocol):
    """What the window runner needs from a shard (see scaleout builder)."""

    def deliver(self, messages: list[tuple]) -> None:
        """Schedule sorted inbound messages as arrival events."""

    def advance(self, horizon: float) -> None:
        """Run this shard's engine up to ``horizon`` virtual seconds."""

    def take_outbox(self) -> list[tuple]:
        """Drain and return messages emitted since the last call."""

    def next_time(self) -> float | None:
        """Earliest pending local event time, or None when idle."""

    def summary(self) -> dict:
        """Plain-data result: counters, finish_time, events, done."""


def resolve_builder(path: str):
    """Import a ``module:function`` dotted builder path."""
    module_name, _, func_name = path.partition(":")
    if not func_name:
        raise SimulationError(f"builder path {path!r} is not 'module:function'")
    return getattr(importlib.import_module(module_name), func_name)


@dataclass
class ShardRunResult:
    """Outcome of one sharded run."""

    #: Per-shard plain-data summaries, in shard-id order (digest input).
    summaries: list[dict]
    #: Virtual completion time: max over shards of program finish time.
    makespan: float
    #: Total events dispatched across every shard engine.
    events: int
    windows: int
    workers: int
    #: Wall-clock telemetry — NEVER fold into digests or report rows.
    wall_seconds: float = 0.0
    #: Sum over windows of (slowest worker − each worker): time workers
    #: spent waiting at the window barrier.  If this dominates
    #: ``wall_seconds``, the lookahead window is too small for the load.
    barrier_wait_seconds: float = 0.0
    window_walls: list[float] = field(default_factory=list)

    @property
    def barrier_share(self) -> float:
        """Fraction of total worker-seconds lost to the window barrier."""
        busy = self.wall_seconds * self.workers
        return self.barrier_wait_seconds / busy if busy > 0 else 0.0


class _SerialBackend:
    """All shards advanced in-process — the reference execution."""

    def __init__(self, spec: ShardSpec) -> None:
        builder = resolve_builder(spec.builder)
        self.models = [builder(spec, i) for i in range(spec.num_shards)]

    @property
    def worker_count(self) -> int:
        return 1

    def initial_times(self) -> dict[int, float | None]:
        return {i: m.next_time() for i, m in enumerate(self.models)}

    def window(
        self, horizon: float, inbound: dict[int, list[tuple]]
    ) -> tuple[dict[int, list[tuple]], dict[int, float | None], list[float]]:
        start = _time.perf_counter()
        out: dict[int, list[tuple]] = {}
        times: dict[int, float | None] = {}
        for i, model in enumerate(self.models):
            messages = inbound.get(i)
            if messages:
                model.deliver(messages)
            model.advance(horizon)
            out[i] = model.take_outbox()
            times[i] = model.next_time()
        return out, times, [_time.perf_counter() - start]

    def finish(self) -> list[dict]:
        return [m.summary() for m in self.models]


def _shard_worker(conn, spec: ShardSpec, shard_ids: list[int]) -> None:
    """Persistent worker: owns ``shard_ids`` for the whole run."""
    builder = resolve_builder(spec.builder)
    models = {i: builder(spec, i) for i in sorted(shard_ids)}
    conn.send({i: m.next_time() for i, m in models.items()})
    while True:
        message = conn.recv()
        tag = message[0]
        if tag == "window":
            _, horizon, inbound = message
            start = _time.perf_counter()
            out: dict[int, list[tuple]] = {}
            times: dict[int, float | None] = {}
            for i, model in models.items():  # insertion order == shard order
                msgs = inbound.get(i)
                if msgs:
                    model.deliver(msgs)
                model.advance(horizon)
                out[i] = model.take_outbox()
                times[i] = model.next_time()
            conn.send((out, times, _time.perf_counter() - start))
        elif tag == "finish":
            conn.send({i: m.summary() for i, m in models.items()})
            conn.close()
            return


class _ProcessBackend:
    """Shards spread round-robin over persistent worker processes."""

    def __init__(self, spec: ShardSpec, workers: int) -> None:
        from repro.experiments.parallel import mp_context

        ctx = mp_context()
        if ctx is None:  # pragma: no cover - non-fork platforms
            import multiprocessing as ctx  # type: ignore[no-redef]
        self.assignment = [
            [i for i in range(spec.num_shards) if i % workers == w]
            for w in range(workers)
        ]
        self._conns = []
        self._procs = []
        for shard_ids in self.assignment:
            parent_conn, child_conn = Pipe()
            proc = ctx.Process(
                target=_shard_worker, args=(child_conn, spec, shard_ids)
            )
            proc.daemon = True
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    @property
    def worker_count(self) -> int:
        return len(self._procs)

    def initial_times(self) -> dict[int, float | None]:
        times: dict[int, float | None] = {}
        for conn in self._conns:
            times.update(conn.recv())
        return times

    def window(
        self, horizon: float, inbound: dict[int, list[tuple]]
    ) -> tuple[dict[int, list[tuple]], dict[int, float | None], list[float]]:
        for conn, shard_ids in zip(self._conns, self.assignment):
            sub = {i: inbound[i] for i in shard_ids if i in inbound}
            conn.send(("window", horizon, sub))
        out: dict[int, list[tuple]] = {}
        times: dict[int, float | None] = {}
        walls: list[float] = []
        for conn in self._conns:
            worker_out, worker_times, wall = conn.recv()
            out.update(worker_out)
            times.update(worker_times)
            walls.append(wall)
        return out, times, walls

    def finish(self) -> list[dict]:
        for conn in self._conns:
            conn.send(("finish",))
        summaries: dict[int, dict] = {}
        for conn, proc in zip(self._conns, self._procs):
            summaries.update(conn.recv())
            conn.close()
            proc.join(timeout=30)
        return [summaries[i] for i in sorted(summaries)]


def run_sharded(spec: ShardSpec, workers: int = 1) -> ShardRunResult:
    """Execute a sharded simulation to completion.

    ``workers`` picks the execution backend only: 1 runs every shard
    in-process; N > 1 spreads the shards over N forked workers.  Virtual
    results are identical either way (see module docstring).
    """
    if spec.num_shards < 1:
        raise SimulationError("need at least one shard")
    if spec.lookahead <= 0:
        raise SimulationError(
            "conservative sync needs a positive cross-shard latency "
            "(the lookahead window would be empty)"
        )
    start = _time.perf_counter()
    effective = max(1, min(workers, spec.num_shards))
    backend = (
        _SerialBackend(spec)
        if effective == 1
        else _ProcessBackend(spec, effective)
    )
    lookahead = spec.lookahead
    times = backend.initial_times()
    inflight: list[tuple] = []
    windows = 0
    barrier_wait = 0.0
    window_walls: list[float] = []
    while True:
        pending = [t for t in times.values() if t is not None]
        pending.extend(m[RECV_TIME] for m in inflight)
        if not pending:
            break
        window_start = min(pending)
        horizon = window_start + lookahead
        inbound: dict[int, list[tuple]] = {}
        still_flying: list[tuple] = []
        for message in inflight:
            if message[RECV_TIME] < horizon:
                inbound.setdefault(message[DST_SHARD], []).append(message)
            else:
                still_flying.append(message)
        inflight = still_flying
        for messages in inbound.values():
            # Tuple order sorts by (recv_time, send_time, src_shard, seq):
            # the deterministic delivery order, whatever worker produced
            # each message first.
            messages.sort()
        out, times, walls = backend.window(horizon, inbound)
        for messages in out.values():
            inflight.extend(messages)
        windows += 1
        window_wall = max(walls)
        window_walls.append(window_wall)
        barrier_wait += window_wall * len(walls) - sum(walls)
    summaries = backend.finish()
    return ShardRunResult(
        summaries=summaries,
        makespan=max(
            (s["finish_time"] for s in summaries if s["finish_time"] is not None),
            default=0.0,
        ),
        events=sum(s["events"] for s in summaries),
        windows=windows,
        workers=backend.worker_count,
        wall_seconds=_time.perf_counter() - start,
        barrier_wait_seconds=barrier_wait,
        window_walls=window_walls,
    )


def shard_workers_from_env(default: int = 1) -> int:
    """The ``--shards`` knob: worker count from ``$REPRO_SHARDS``.

    Execution-only — experiment digests are invariant to this value.
    """
    import os

    raw = os.environ.get("REPRO_SHARDS", "")
    try:
        return max(1, int(raw)) if raw else default
    except ValueError:
        return default


__all__ = [
    "ShardModel",
    "ShardRunResult",
    "ShardSpec",
    "resolve_builder",
    "run_sharded",
    "shard_workers_from_env",
]
