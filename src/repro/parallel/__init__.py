"""Simulated MPI: ranks as simulation processes, collectives over the fabric.

The paper's workloads (MM, parallel quicksort) are MPI programs; here each
rank is a discrete-event process pinned to one core, and point-to-point /
collective operations move real numpy payloads while charging network time
through the cluster fabric (mpi4py-style API surface, lower-cased object
methods, ``yield from`` instead of blocking calls).
"""

from repro.parallel.comm import Communicator, RankContext
from repro.parallel.job import Job, JobConfig

__all__ = ["Communicator", "Job", "JobConfig", "RankContext"]
