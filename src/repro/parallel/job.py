"""Job launcher: the paper's ``x:y:z`` configurations.

``JobConfig(procs_per_node=x, num_nodes=y, num_benefactors=z)`` reproduces
the labels of Figs. 3-6: x MPI processes on each of y compute nodes, with
z SSD benefactors that are either *local* (a subset of the compute nodes,
L-SSD) or *remote* (a disjoint fat-node partition, R-SSD).  ``z == 0``
gives the DRAM-only baseline (no aggregate store is assembled).
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.core.nvmalloc import NVMalloc
from repro.errors import CommError, StoreError
from repro.parallel.comm import Communicator, RankContext
from repro.sim.events import Event
from repro.store.benefactor import Benefactor
from repro.store.manager import Manager
from repro.store.chunk import CHUNK_SIZE, PAGE_SIZE
from repro.util.units import MiB


@dataclass(frozen=True)
class JobConfig:
    """One ``x:y:z`` run configuration."""

    procs_per_node: int
    num_nodes: int
    num_benefactors: int
    remote_ssd: bool = False  # True: benefactors on a disjoint node set
    fuse_cache_bytes: int = 64 * MiB
    page_cache_bytes: int = 64 * MiB
    chunk_size: int = CHUNK_SIZE
    page_size: int = PAGE_SIZE
    dirty_page_writeback: bool = True
    readahead_chunks: int = 0
    daemon_threads: int = 1
    #: FUSE chunk-cache hierarchy knobs (see repro.fusefs.cache).  The
    #: defaults — inline LRU, no local SSD tier, fixed readahead — are
    #: the seed configuration and keep experiment digests bit-identical.
    cache_policy: str = "lru"
    local_cache_bytes: int = 0
    prefetch: str = "fixed"
    prefetch_depth: int = 8
    benefactor_contribution: int | None = None
    #: Chunk replication degree of the aggregate store.  1 (the default)
    #: is the paper's unreplicated layout and preserves the seed's
    #: bit-identical behaviour; 2 tolerates any single benefactor crash.
    replication: int = 1

    @property
    def num_ranks(self) -> int:
        """Total MPI ranks (procs/node x nodes)."""
        return self.procs_per_node * self.num_nodes

    @property
    def uses_nvm(self) -> bool:
        """True when the configuration assembles an aggregate store."""
        return self.num_benefactors > 0

    def label(self) -> str:
        """The paper's figure label, e.g. ``L-SSD(8:16:16)``."""
        xyz = f"({self.procs_per_node}:{self.num_nodes}:{self.num_benefactors})"
        if not self.uses_nvm:
            return f"DRAM{xyz}"
        return ("R-SSD" if self.remote_ssd else "L-SSD") + xyz


class Job:
    """A launched parallel job: ranks, communicator, aggregate store."""

    def __init__(self, cluster: Cluster, config: JobConfig) -> None:
        self.cluster = cluster
        self.config = config
        self.engine = cluster.engine
        if config.num_nodes > cluster.num_nodes:
            raise CommError(
                f"job wants {config.num_nodes} nodes, cluster has "
                f"{cluster.num_nodes}"
            )
        if config.procs_per_node > cluster.nodes[0].num_cores:
            raise CommError(
                f"{config.procs_per_node} procs/node exceeds "
                f"{cluster.nodes[0].num_cores} cores/node"
            )
        self.compute_nodes = cluster.nodes[: config.num_nodes]
        # Rank r runs on node r // procs_per_node, core r % procs_per_node
        # (BLOCK distribution, as the paper's MM uses).
        rank_nodes = [
            self.compute_nodes[r // config.procs_per_node]
            for r in range(config.num_ranks)
        ]
        self.comm = Communicator(self.engine, rank_nodes)

        self.manager: Manager | None = None
        self.benefactors: list[Benefactor] = []
        self._nvmallocs: dict[int, NVMalloc] = {}
        if config.uses_nvm:
            self._assemble_store()

    # ------------------------------------------------------------------
    def _benefactor_nodes(self):
        config = self.config
        if config.remote_ssd:
            start = config.num_nodes
            nodes = self.cluster.nodes[start : start + config.num_benefactors]
            if len(nodes) < config.num_benefactors:
                raise StoreError(
                    f"need {config.num_benefactors} remote SSD nodes beyond "
                    f"the {config.num_nodes} compute nodes; cluster has "
                    f"{self.cluster.num_nodes}"
                )
        else:
            nodes = self.compute_nodes[: config.num_benefactors]
            if len(nodes) < config.num_benefactors:
                raise StoreError(
                    f"need {config.num_benefactors} local benefactors but job "
                    f"spans {config.num_nodes} nodes"
                )
        for node in nodes:
            if not node.has_ssd:
                raise StoreError(f"{node.name} has no SSD to contribute")
        return nodes

    def _assemble_store(self) -> None:
        config = self.config
        # The manager runs alongside the first benefactor, as in the
        # paper's prototype (a core/node on a subset of the nodes).
        benefactor_nodes = self._benefactor_nodes()
        self.manager = Manager(
            benefactor_nodes[0],
            chunk_size=config.chunk_size,
            metrics=self.cluster.metrics,
            replication=config.replication,
        )
        for node in benefactor_nodes:
            benefactor = Benefactor(
                node,
                contribution=config.benefactor_contribution,
                chunk_size=config.chunk_size,
                metrics=self.cluster.metrics,
            )
            self.manager.register_benefactor(benefactor)
            self.benefactors.append(benefactor)
        for node in self.compute_nodes:
            self._nvmallocs[node.node_id] = NVMalloc(
                node,
                self.manager,
                fuse_cache_bytes=config.fuse_cache_bytes,
                page_cache_bytes=config.page_cache_bytes,
                chunk_size=config.chunk_size,
                page_size=config.page_size,
                dirty_page_writeback=config.dirty_page_writeback,
                readahead_chunks=config.readahead_chunks,
                daemon_threads=config.daemon_threads,
                cache_policy=config.cache_policy,
                local_cache_bytes=config.local_cache_bytes,
                prefetch=config.prefetch,
                prefetch_depth=config.prefetch_depth,
                metrics=self.cluster.metrics,
            )

    # ------------------------------------------------------------------
    def cache_stats(self):
        """Aggregate chunk-cache and page-cache stats across the job's
        nodes, as ``(CacheStats, PageCacheStats)`` sums.

        Empty (all-zero) when the job never assembled an NVM store.
        """
        from repro.fusefs.cache import CacheStats
        from repro.mem.pagecache import PageCacheStats

        chunk = CacheStats()
        page = PageCacheStats()
        for nvm in self._nvmallocs.values():
            cs = nvm.mount.cache.stats
            chunk.hits += cs.hits
            chunk.misses += cs.misses
            chunk.fetched_bytes += cs.fetched_bytes
            chunk.prefetched_bytes += cs.prefetched_bytes
            chunk.writeback_bytes += cs.writeback_bytes
            chunk.evictions += cs.evictions
            chunk.dirty_evictions += cs.dirty_evictions
            chunk.l2_hits += cs.l2_hits
            chunk.prefetch_hits += cs.prefetch_hits
            chunk.prefetches += cs.prefetches
            chunk.l2_spill_bytes += cs.l2_spill_bytes
            chunk.l2_promote_bytes += cs.l2_promote_bytes
            chunk.store_fills += cs.store_fills
            chunk.l2_fills += cs.l2_fills
            chunk.store_fill_seconds += cs.store_fill_seconds
            chunk.l2_fill_seconds += cs.l2_fill_seconds
            ps = nvm.pagecache.stats
            page.hits += ps.hits
            page.misses += ps.misses
            page.faulted_bytes += ps.faulted_bytes
            page.writeback_bytes += ps.writeback_bytes
        return chunk, page

    def nvmalloc_for(self, rank: int) -> NVMalloc:
        """The (node-shared) NVMalloc context serving ``rank``."""
        if not self.config.uses_nvm:
            raise StoreError(
                f"{self.config.label()} has no NVM store; DRAM-only runs "
                "cannot ssdmalloc"
            )
        node = self.comm.node_of(rank)
        return self._nvmallocs[node.node_id]

    def rank_context(self, rank: int) -> RankContext:
        """The RankContext (identity, core, comm, NVMalloc) for ``rank``."""
        config = self.config
        node = self.comm.node_of(rank)
        core = node.cores[rank % config.procs_per_node]
        nvmalloc = self._nvmallocs.get(node.node_id)
        return RankContext(rank=rank, comm=self.comm, core=core, nvmalloc=nvmalloc)

    def launch(
        self,
        rank_main: Callable[[RankContext], Generator[Event, object, object]],
    ) -> list[object]:
        """Run ``rank_main(ctx)`` as one process per rank; returns all
        ranks' return values in rank order (does not reset virtual time)."""
        processes = [
            self.engine.process(rank_main(self.rank_context(rank)))
            for rank in range(self.config.num_ranks)
        ]
        return self.engine.run_all(processes)

    def run(
        self,
        rank_main: Callable[[RankContext], Generator[Event, object, object]],
    ) -> tuple[float, list[object]]:
        """Launch and time a job: ``(elapsed_virtual_seconds, results)``."""
        start = self.engine.now
        results = self.launch(rank_main)
        return self.engine.now - start, results
