"""Deterministic fault injection for the aggregate store.

A :class:`FaultPlan` is a frozen schedule of fault events — benefactor
crashes and transient slowdowns pinned to *virtual* times — driven as an
ordinary simulation process.  Schedules are either written out explicitly
or derived from a seed via :meth:`FaultPlan.seeded`; either way the same
plan on the same workload replays the exact same virtual history, so
fault experiments digest bit-identically across runs and across the
serial/parallel orchestrators (no wall-clock randomness anywhere).

Crash-during-transfer is not a separate event type: a
:class:`BenefactorCrash` whose time lands inside a chunk transfer is
observed by :class:`~repro.store.benefactor.Benefactor` *after* the
network charge, modelling a write-back or fetch whose bytes travelled but
were never applied/acknowledged.
"""

from __future__ import annotations

from collections.abc import Generator, Iterable
from dataclasses import dataclass

import numpy as np

from repro.errors import StoreError
from repro.sim.events import Event
from repro.store.manager import Manager


@dataclass(frozen=True)
class BenefactorCrash:
    """Hard-kill one benefactor at virtual time ``at`` (seconds).

    Sets the ground-truth ``crashed`` flag; detection happens through the
    normal channels (heartbeat monitor or a client failure report), so the
    window between crash and detection is part of what is measured.
    """

    at: float
    benefactor: str


@dataclass(frozen=True)
class TransientSlowdown:
    """Degrade one benefactor without killing it.

    From ``at`` until ``at + duration`` every data-path operation on the
    benefactor is charged an extra ``extra_per_op`` seconds — a contended
    or thermally throttled node that is slow but correct.

    ``rate_factor`` additionally degrades the benefactor's *SSD service
    rate* for the window: every device access takes ``rate_factor`` times
    its nominal service time (see
    :meth:`repro.devices.base.StorageDevice.degrade`), so the penalty
    scales with transfer size instead of being a flat per-op surcharge.
    The default of 1.0 leaves the device untouched — existing plans and
    their experiment digests are bit-identical.
    """

    at: float
    benefactor: str
    duration: float
    extra_per_op: float
    rate_factor: float = 1.0


FaultEvent = BenefactorCrash | TransientSlowdown


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of fault events.

    ``seed`` is provenance only (``None`` for hand-written plans): the
    events tuple *is* the plan, and :meth:`inject` replays it verbatim.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int | None = None

    @classmethod
    def seeded(
        cls,
        seed: int,
        benefactor_names: Iterable[str],
        *,
        crashes: int = 1,
        slowdowns: int = 0,
        window: tuple[float, float] = (0.25, 1.0),
        slow_duration: float = 0.25,
        slow_extra: float = 0.002,
        slow_rate_factor: float = 1.0,
    ) -> "FaultPlan":
        """Derive a plan from a seed: crash victims without replacement,
        event times uniform in ``window`` (virtual seconds).

        ``benefactor_names`` must come in a deterministic order (e.g.
        ``[b.name for b in manager.benefactors()]`` — registration order);
        the derivation uses only ``numpy``'s seeded generator, never
        wall-clock entropy or hash ordering.
        """
        names = list(benefactor_names)
        if crashes > len(names):
            raise StoreError(
                f"cannot crash {crashes} of {len(names)} benefactors"
            )
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        victims = rng.choice(len(names), size=crashes, replace=False)
        for victim in victims:
            events.append(
                BenefactorCrash(
                    at=float(rng.uniform(window[0], window[1])),
                    benefactor=names[int(victim)],
                )
            )
        for _ in range(slowdowns):
            events.append(
                TransientSlowdown(
                    at=float(rng.uniform(window[0], window[1])),
                    benefactor=names[int(rng.integers(0, len(names)))],
                    duration=slow_duration,
                    extra_per_op=slow_extra,
                    rate_factor=slow_rate_factor,
                )
            )
        return cls(events=tuple(events), seed=seed)

    @classmethod
    def crash_in_phase(
        cls,
        seed: int,
        benefactor_names: Iterable[str],
        windows: "dict[str, tuple[float, float]]",
        phase: str,
        *,
        crashes: int = 1,
        position: tuple[float, float] = (0.25, 0.75),
    ) -> "FaultPlan":
        """Seeded crashes inside a *named phase window*.

        ``windows`` maps phase names to ``(start, stop)`` virtual-time
        intervals, typically measured from a fault-free baseline run
        (e.g. ``{"ckpt3": (t0, t1), "restore": (r0, r1)}``), so "crash a
        benefactor during epoch 3's drain" is expressible without
        hand-tuned times.  ``position`` narrows the strike to a relative
        slice of the window — ``(0.25, 0.75)`` keeps it mid-phase;
        ``(0.0, 0.0)`` pins it to the phase's first instant (useful to
        guarantee a mid-restore crash lands before any chunk is read).
        Victim choice and timing come from the seeded generator exactly
        as in :meth:`seeded`.
        """
        try:
            start, stop = windows[phase]
        except KeyError:
            raise StoreError(
                f"unknown phase {phase!r}; have {sorted(windows)}"
            ) from None
        if stop < start:
            raise StoreError(f"phase {phase!r} window {start, stop} is inverted")
        lo, hi = position
        if not 0.0 <= lo <= hi <= 1.0:
            raise StoreError(f"position {position} must satisfy 0 <= lo <= hi <= 1")
        span = stop - start
        return cls.seeded(
            seed,
            benefactor_names,
            crashes=crashes,
            slowdowns=0,
            window=(start + lo * span, start + hi * span),
        )

    def scheduled(self) -> list[FaultEvent]:
        """Events in firing order: by time, plan order breaking ties."""
        return [
            event
            for _, event in sorted(
                enumerate(self.events), key=lambda pair: (pair[1].at, pair[0])
            )
        ]

    def describe(self) -> str:
        """A compact schedule label for report rows, e.g.
        ``crash ben@node2@0.531s``."""
        parts = []
        for event in self.scheduled():
            if isinstance(event, BenefactorCrash):
                parts.append(f"crash {event.benefactor}@{event.at:.3f}s")
            else:
                label = (
                    f"slow {event.benefactor}@{event.at:.3f}s"
                    f"+{event.duration:.3f}s"
                )
                if event.rate_factor != 1.0:
                    label += f"x{event.rate_factor:g}"
                parts.append(label)
        return ", ".join(parts) if parts else "none"

    def inject(self, manager: Manager) -> Generator[Event, object, None]:
        """Drive the schedule as a sim process: spawn via
        ``engine.process(plan.inject(manager))`` before launching the
        workload.  Unknown benefactor names fail fast."""
        engine = manager.node.engine
        by_name = {b.name: b for b in manager.benefactors()}
        for event in self.scheduled():
            if event.benefactor not in by_name:
                raise StoreError(
                    f"fault plan names unknown benefactor {event.benefactor!r}"
                )
        for event in self.scheduled():
            delay = event.at - engine.now
            if delay > 0:
                yield engine.timeout(delay)
            benefactor = by_name[event.benefactor]
            if isinstance(event, BenefactorCrash):
                benefactor.crash()
            else:
                benefactor.slow_down(
                    engine.now + event.duration, event.extra_per_op
                )
                if event.rate_factor != 1.0:
                    benefactor.ssd.degrade(
                        engine.now + event.duration, event.rate_factor
                    )


__all__ = [
    "BenefactorCrash",
    "FaultEvent",
    "FaultPlan",
    "TransientSlowdown",
]
