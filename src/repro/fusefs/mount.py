"""Per-node FUSE mount: POSIX-flavoured operations over the store.

One :class:`FuseMount` lives on each compute node (the paper mounts
``/mnt/aggregatenvm`` everywhere); all processes on the node share its
chunk cache, which is what makes the shared-mmap-file optimization of
Fig. 4 effective.
"""

from __future__ import annotations

import itertools
from collections.abc import Generator
from dataclasses import dataclass

from repro.cluster.node import Node
from repro.errors import BadFileDescriptorError, FuseError
from repro.fusefs.cache import ChunkCache
from repro.fusefs.flags import OpenFlags
from repro.sim.events import Event
from repro.store.chunk import CHUNK_SIZE, PAGE_SIZE
from repro.store.client import StoreClient
from repro.store.manager import Manager
from repro.util.recorder import MetricsRecorder
from repro.util.units import MiB


@dataclass
class _OpenFile:
    """State of one open file descriptor."""

    path: str
    flags: OpenFlags
    position: int = 0


class FuseMount:
    """The FUSE client on one compute node."""

    def __init__(
        self,
        node: Node,
        manager: Manager,
        *,
        cache_bytes: int = 64 * MiB,
        chunk_size: int = CHUNK_SIZE,
        page_size: int = PAGE_SIZE,
        dirty_page_writeback: bool = True,
        readahead_chunks: int = 0,
        daemon_threads: int = 1,
        cache_policy: str = "lru",
        local_cache_bytes: int = 0,
        prefetch: str = "fixed",
        prefetch_depth: int = 8,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.node = node
        self.metrics = metrics if metrics is not None else node.metrics
        self.client = StoreClient(node, manager, metrics=self.metrics)
        # The FUSE cache consumes node DRAM; account for it so experiments
        # that budget memory (Fig. 3) feel the cost.
        node.dram.allocate(cache_bytes)
        self.cache = ChunkCache(
            self.client,
            capacity_bytes=cache_bytes,
            chunk_size=chunk_size,
            page_size=page_size,
            dirty_page_writeback=dirty_page_writeback,
            readahead_chunks=readahead_chunks,
            daemon_threads=daemon_threads,
            policy=cache_policy,
            local_cache_bytes=local_cache_bytes,
            prefetch=prefetch,
            prefetch_depth=prefetch_depth,
            metrics=self.metrics,
        )
        self.chunk_size = chunk_size
        self._fds: dict[int, _OpenFile] = {}
        self._next_fd = itertools.count(3)  # 0-2 taken, as tradition demands

    # ------------------------------------------------------------------
    # File lifecycle
    # ------------------------------------------------------------------
    def open(
        self, path: str, flags: OpenFlags, *, size: int | None = None
    ) -> Generator[Event, object, int]:
        """Open (and with ``O_CREAT``, create) a file; returns an fd.

        Creation requires ``size`` because the store reserves space up
        front (``posix_fallocate`` semantics).
        """
        if flags & OpenFlags.O_CREAT and not self.client.manager.exists(path):
            if size is None:
                raise FuseError(f"O_CREAT open of {path!r} requires a size")
            yield from self.client.create(path, size)
        else:
            yield from self.client.open(path)
        fd = next(self._next_fd)
        self._fds[fd] = _OpenFile(path=path, flags=flags)
        self.metrics.add("fuse.opens")
        return fd

    def fallocate(self, fd: int, size: int) -> Generator[Event, object, None]:
        """Ensure the file has at least ``size`` bytes reserved.

        The store reserves at creation, so this validates rather than
        grows; growing files is future work the paper does not exercise.
        """
        state = self._state(fd)
        current = self.client.file_size(state.path)
        if size > current:
            raise FuseError(
                f"fallocate beyond reserved size ({size} > {current}) is "
                "not supported; recreate the file larger"
            )
        yield from self.client.manager.rpc(self.client.client_name)

    def close(self, fd: int) -> Generator[Event, object, None]:
        """Flush and forget a descriptor."""
        state = self._state(fd)
        yield from self.cache.flush_path(state.path)
        del self._fds[fd]

    def fsync(self, fd: int) -> Generator[Event, object, None]:
        """Write back all dirty pages of the file."""
        yield from self.cache.flush_path(self._state(fd).path)

    def unlink(self, path: str) -> Generator[Event, object, None]:
        """Delete a file from the store, dropping cached chunks."""
        open_paths = {s.path for s in self._fds.values()}
        if path in open_paths:
            raise FuseError(f"cannot unlink open file {path!r}")
        self.cache.invalidate_path(path)
        yield from self.client.delete(path)

    def stat_size(self, path: str) -> int:
        """File size in bytes."""
        return self.client.file_size(path)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def pread(
        self, fd: int, offset: int, length: int
    ) -> Generator[Event, object, bytes]:
        """Positional read through the chunk cache."""
        state = self._state(fd)
        if not state.flags.readable:
            raise FuseError(f"fd {fd} not open for reading")
        self._check_range(state.path, offset, length)
        parts: list[bytes] = []
        for index, chunk_off, piece in self._pieces(offset, length):
            data = yield from self.cache.read(state.path, index, chunk_off, piece)
            parts.append(data)
        return b"".join(parts)

    def pwrite(
        self, fd: int, offset: int, data: bytes
    ) -> Generator[Event, object, int]:
        """Positional write through the chunk cache (write-back)."""
        state = self._state(fd)
        if not state.flags.writable:
            raise FuseError(f"fd {fd} not open for writing")
        self._check_range(state.path, offset, len(data))
        cursor = 0
        for index, chunk_off, piece in self._pieces(offset, len(data)):
            yield from self.cache.write(
                state.path, index, chunk_off, data[cursor : cursor + piece]
            )
            cursor += piece
        return len(data)

    def read(self, fd: int, length: int) -> Generator[Event, object, bytes]:
        """Sequential read at the descriptor's position."""
        state = self._state(fd)
        length = min(length, self.stat_size(state.path) - state.position)
        data = yield from self.pread(fd, state.position, length)
        state.position += len(data)
        return data

    def write(self, fd: int, data: bytes) -> Generator[Event, object, int]:
        """Sequential write at the descriptor's position."""
        state = self._state(fd)
        written = yield from self.pwrite(fd, state.position, data)
        state.position += written
        return written

    # ------------------------------------------------------------------
    def _state(self, fd: int) -> _OpenFile:
        try:
            return self._fds[fd]
        except KeyError:
            raise BadFileDescriptorError(f"fd {fd} is not open") from None

    def _pieces(self, offset: int, length: int) -> list[tuple[int, int, int]]:
        pieces: list[tuple[int, int, int]] = []
        cursor = offset
        end = offset + length
        while cursor < end:
            index = cursor // self.chunk_size
            chunk_off = cursor - index * self.chunk_size
            piece = min(self.chunk_size - chunk_off, end - cursor)
            pieces.append((index, chunk_off, piece))
            cursor += piece
        return pieces

    def _check_range(self, path: str, offset: int, length: int) -> None:
        size = self.client.file_size(path)
        if offset < 0 or length < 0 or offset + length > size:
            raise FuseError(
                f"access [{offset}, {offset + length}) outside {path!r} "
                f"of size {size}"
            )

    def __repr__(self) -> str:
        return f"<FuseMount on {self.node.name} open_fds={len(self._fds)}>"
