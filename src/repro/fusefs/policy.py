"""Pluggable eviction policies for the FUSE chunk cache.

The default policy, ``"lru"``, is not a class here: plain LRU *is* the
iteration order of the cache's entry ``OrderedDict`` (entries are moved
to the end on every touch), so the cache keeps its original inline
victim scan and pays zero per-access hook cost.  That inline path is the
seed behaviour and must stay event-for-event identical — which it
trivially does, because no policy object exists in that mode.

``"arc"`` plugs in :class:`ARCPolicy`, the Adaptive Replacement Cache of
Megiddo & Modha (FAST '03): two resident lists split recency (T1) from
frequency (T2), two ghost lists (B1/B2) remember recently evicted keys,
and a hit in a ghost list adapts the target size ``p`` of T1 — toward
recency when B1 hits (the workload wants a bigger recency window),
toward frequency when B2 hits.  A one-pass scan floods T1 only, so the
frequently reused working set in T2 survives — the scan resistance LRU
lacks.

Determinism: every list is an :class:`~collections.OrderedDict` keyed by
``(path, chunk_index)`` and mutated only in simulation order, so the
eviction sequence is a pure function of the access sequence —
independent of ``PYTHONHASHSEED`` (tested) and identical across the
serial and parallel experiment orchestrators.

Pinning: the cache never evicts a pinned entry.  The policy's
:meth:`ARCPolicy.victim` honours that by scanning its preferred list
LRU-to-MRU past pinned entries, falling back to the other list before
reporting that nothing is evictable.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import FuseError

#: Valid ``policy=`` arguments of the chunk cache.
POLICIES = ("lru", "arc")


class ARCPolicy:
    """Adaptive Replacement Cache bookkeeping for the chunk cache.

    The cache owns the entries (payloads, pins, dirty state); this object
    owns only key bookkeeping.  The cache calls:

    - :meth:`record_miss` when a demand/prefetch lookup misses (ghost
      adaptation happens here, *before* the entry is inserted);
    - :meth:`record_insert` when the new entry lands in the cache;
    - :meth:`record_hit` when a resident entry is touched;
    - :meth:`record_evict` when it evicts a key (the key becomes a ghost);
    - :meth:`record_remove` when a key vanishes without eviction
      semantics (``invalidate_path``);
    - :meth:`victim` to pick the next evictable key.

    Invariant: ``set(t1) | set(t2)`` equals the cache's resident key set.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise FuseError(f"ARC needs capacity >= 1, got {capacity}")
        self.capacity = capacity
        #: Adaptive target size of T1 (0 <= p <= capacity).
        self.p = 0
        self.t1: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.t2: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.b1: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.b2: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.ghost_hits = 0
        # Keys whose miss hit a ghost list: their (pending) insert goes to
        # T2 (the ghost proved reuse).  A dict, not a single slot, because
        # fetches yield and concurrent ranks' misses interleave.
        self._pending_ghost: dict[tuple[str, int], bool] = {}
        # Which ghost list the most recent adapting miss hit — biases the
        # replace() tie-break exactly as in the paper's REPLACE(p).
        self._last_ghost: str | None = None

    # ------------------------------------------------------------------
    def record_hit(self, key: tuple[str, int]) -> None:
        """A resident entry was touched: recency -> frequency promotion."""
        if key in self.t1:
            del self.t1[key]
            self.t2[key] = None
        elif key in self.t2:
            self.t2.move_to_end(key)
        self._pending_ghost.pop(key, None)

    def record_miss(self, key: tuple[str, int]) -> bool:
        """A lookup missed the resident lists; adapt ``p`` on ghost hits.

        Returns True when the miss hit a ghost list (i.e. ``p`` moved).
        """
        if key in self.b1:
            # Recency ghosts hitting means T1 was evicted too eagerly.
            delta = max(1, len(self.b2) // max(1, len(self.b1)))
            self.p = min(self.capacity, self.p + delta)
            del self.b1[key]
            self.ghost_hits += 1
            self._pending_ghost[key] = True
            self._last_ghost = "b1"
            return True
        if key in self.b2:
            delta = max(1, len(self.b1) // max(1, len(self.b2)))
            self.p = max(0, self.p - delta)
            del self.b2[key]
            self.ghost_hits += 1
            self._pending_ghost[key] = True
            self._last_ghost = "b2"
            return True
        self._last_ghost = None
        return False

    def record_insert(self, key: tuple[str, int]) -> None:
        """A new entry landed: T2 if its miss hit a ghost, else T1."""
        if self._pending_ghost.pop(key, False):
            self.t2[key] = None
        else:
            self.t1[key] = None
        # Prefetch inserts skip record_miss (they must not adapt ``p``),
        # so scrub any ghost of this key here — a key must never be
        # resident and ghostly at once.  No-op on the demand path.
        self.b1.pop(key, None)
        self.b2.pop(key, None)
        self._last_ghost = None
        self._trim()

    def record_evict(self, key: tuple[str, int]) -> None:
        """An entry was evicted: remember it as a ghost."""
        if key in self.t1:
            del self.t1[key]
            self.b1[key] = None
        elif key in self.t2:
            del self.t2[key]
            self.b2[key] = None
        self._trim()

    def record_remove(self, key: tuple[str, int]) -> None:
        """A key vanished without eviction (unlink): forget it entirely."""
        self.t1.pop(key, None)
        self.t2.pop(key, None)
        self.b1.pop(key, None)
        self.b2.pop(key, None)
        self._pending_ghost.pop(key, None)

    # ------------------------------------------------------------------
    def victim(self, entries, inflight) -> tuple[str, int] | None:
        """The key to evict next, honouring pins and in-flight drains.

        The paper's REPLACE(p): prefer T1's LRU while ``|T1| > p`` (or on
        a B2 ghost hit at ``|T1| == p``), else T2's LRU.  Entries pinned
        by in-progress operations — or whose previous incarnation's
        write-back is still draining — are skipped; if the preferred list
        has no evictable entry the other list is scanned before giving up.
        """
        prefer_t1 = bool(self.t1) and (
            len(self.t1) > self.p
            or (self._last_ghost == "b2" and len(self.t1) == self.p)
            or not self.t2
        )
        lists = (self.t1, self.t2) if prefer_t1 else (self.t2, self.t1)
        for resident in lists:
            for key in resident:  # LRU -> MRU
                entry = entries.get(key)
                if entry is not None and entry.pins == 0 and key not in inflight:
                    return key
        return None

    def _trim(self) -> None:
        """Bound the ghosts: |T1|+|B1| <= c and all four lists <= 2c."""
        c = self.capacity
        while len(self.t1) + len(self.b1) > c and self.b1:
            self.b1.popitem(last=False)
        while (
            len(self.t1) + len(self.t2) + len(self.b1) + len(self.b2) > 2 * c
            and self.b2
        ):
            self.b2.popitem(last=False)

    # ------------------------------------------------------------------
    def sizes(self) -> dict[str, float]:
        """Per-list sizes and the adaptive target, for metrics/reports."""
        return {
            "t1": len(self.t1),
            "t2": len(self.t2),
            "b1": len(self.b1),
            "b2": len(self.b2),
            "p": float(self.p),
            "ghost_hits": float(self.ghost_hits),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ARCPolicy c={self.capacity} p={self.p} "
            f"t1={len(self.t1)} t2={len(self.t2)} "
            f"b1={len(self.b1)} b2={len(self.b2)}>"
        )


def make_policy(name: str, capacity: int) -> ARCPolicy | None:
    """The policy object for ``name`` (None: the cache's inline LRU)."""
    if name == "lru":
        return None
    if name == "arc":
        return ARCPolicy(capacity)
    raise FuseError(f"unknown cache policy {name!r}; expected one of {POLICIES}")
