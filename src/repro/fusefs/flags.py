"""POSIX-style open flags implemented by the FUSE layer.

The paper extends its FUSE file system with the flags ``mmap`` requires;
``O_RDWR`` in particular must guarantee that written data is immediately
readable (§III-C).
"""

from __future__ import annotations

import enum


class OpenFlags(enum.IntFlag):
    """Subset of POSIX open(2) flags honoured by :class:`FuseMount`."""

    O_RDONLY = 0x0
    O_WRONLY = 0x1
    O_RDWR = 0x2
    O_CREAT = 0x40
    O_TRUNC = 0x200

    @property
    def readable(self) -> bool:
        """True when the flags permit reading."""
        return not (self & OpenFlags.O_WRONLY)

    @property
    def writable(self) -> bool:
        """True when the flags permit writing."""
        return bool(self & (OpenFlags.O_WRONLY | OpenFlags.O_RDWR))
