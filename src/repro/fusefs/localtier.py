"""Node-local persistent SSD cache tier under the DRAM chunk cache.

The paper's clients pay a full network+benefactor round trip on every
chunk-cache miss.  This tier dedicates a partition of the node's local
SSD (a real :class:`~repro.devices.ssd.SSD` device instance, so its
latency/bandwidth are simulated, queued, and traced like every other
device) as a second cache level:

- chunks evicted from the DRAM cache — clean, or dirty after their
  write-back is staged — spill here instead of being dropped;
- a DRAM miss probes this tier first and promotes the chunk with one
  local SSD read (~3x cheaper than the network path on the HAL specs);
- an eviction write-back can *stage* through the tier: the dirty pages
  become durable-locally immediately and a background drain ships them
  to the store, so the evicting writer stops waiting out store RTTs.

The tier is *inclusive*: promotion keeps the local copy, so a chunk that
cycles between the tiers pays the spill write once, not once per
round trip.  While a key is resident in DRAM its local copy may lag the
DRAM writes (a *shadow*); the chunk cache tracks the diverged byte
ranges and, at eviction time, brings the copy current with a
:meth:`patch` of just those bytes (far cheaper than rewriting the
chunk), a full re-:meth:`put`, or a drop of the key — so a *promotable*
L2 copy is never stale.  Entries whose store write-back is still draining are marked
``staged`` and are never evicted from this tier until the drain lands.

All bookkeeping lives in insertion-ordered dicts keyed by
``(path, chunk_index)``; eviction order is a pure function of the access
sequence, independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Generator

from repro.devices.base import AccessKind
from repro.devices.specs import INTEL_X25E, DeviceSpec
from repro.devices.ssd import SSD
from repro.errors import FuseError
from repro.sim.events import Event
from repro.util.recorder import MetricsRecorder


class _L2Entry:
    """One chunk resident in the local tier."""

    __slots__ = ("data", "staged")

    def __init__(self, data: bytearray, staged: bool) -> None:
        self.data = data
        # True while the chunk's store write-back is still draining; a
        # staged entry is the only durable copy of its dirty pages, so it
        # must not be evicted until the drain lands.
        self.staged = staged


class LocalCacheTier:
    """Chunk-granular LRU cache on a partition of the node's local SSD."""

    def __init__(
        self,
        node,
        *,
        capacity_bytes: int,
        chunk_size: int,
        spec: DeviceSpec | None = None,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        if capacity_bytes < chunk_size:
            raise FuseError(
                f"local tier of {capacity_bytes} bytes cannot hold one "
                f"chunk ({chunk_size})"
            )
        self.chunk_size = chunk_size
        self.capacity_chunks = capacity_bytes // chunk_size
        if spec is None:
            # Same silicon as the node's contributed SSD when it has one;
            # the catalog's SATA SLC drive otherwise.
            spec = node.ssd.spec if node.has_ssd else INTEL_X25E
        self.device = SSD(
            node.engine,
            spec.partition(f"{spec.name} cache partition", capacity_bytes),
            name=f"{node.name}.l2cache",
            metrics=metrics if metrics is not None else node.metrics,
            # The partition is a bounded cache, not a long-lived store:
            # chunk-level wear is dominated by the aggregate store's
            # benefactor SSDs, so skip per-page FTL state here.
            track_ftl=False,
        )
        self._entries: OrderedDict[tuple[str, int], _L2Entry] = OrderedDict()
        self._by_path: dict[str, set[int]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, key: tuple[str, int]) -> bool:
        """Whether ``key`` is resident (no device time charged)."""
        return key in self._entries

    def cached_keys(self) -> list[tuple[str, int]]:
        """Resident keys in LRU order (oldest first)."""
        return list(self._entries.keys())

    def staged_keys(self) -> list[tuple[str, int]]:
        """Keys whose store write-back is still draining."""
        return [k for k, e in self._entries.items() if e.staged]

    # ------------------------------------------------------------------
    def promote(
        self, key: tuple[str, int]
    ) -> Generator[Event, object, bytearray]:
        """Read ``key``'s chunk for promotion to the DRAM tier.

        Charges one device read and returns a fresh buffer the caller
        owns.  The local copy stays resident (inclusive tier) and moves
        to MRU — it is now a shadow of the DRAM entry, and the chunk
        cache will patch or drop it when that entry departs.
        """
        entry = self._entries[key]
        yield from self.device.access(AccessKind.READ, len(entry.data))
        self._entries.move_to_end(key)
        return bytearray(entry.data)

    def patch(
        self,
        key: tuple[str, int],
        ranges: list[tuple[int, bytes]],
        *,
        staged: bool = False,
    ) -> Generator[Event, object, None]:
        """Overwrite byte ranges of a resident entry; charge only them.

        ``ranges`` is ``[(offset, payload), ...]``.  This is the cheap
        path for bringing a shadow copy current at eviction time: the
        device write covers the diverged bytes, not the whole chunk.
        """
        entry = self._entries[key]
        nbytes = sum(len(payload) for _, payload in ranges)
        yield from self.device.access(AccessKind.WRITE, nbytes)
        for offset, payload in ranges:
            entry.data[offset : offset + len(payload)] = payload
        entry.staged = staged
        self._entries.move_to_end(key)

    def touch(self, key: tuple[str, int]) -> None:
        """Refresh ``key``'s recency (metadata only, no device time)."""
        if key in self._entries:
            self._entries.move_to_end(key)

    def put(
        self, key: tuple[str, int], data: bytes, *, staged: bool = False
    ) -> Generator[Event, object, bool]:
        """Insert (or overwrite) ``key`` with ``data``; charge the write.

        Returns False when the tier is wedged full of staged entries and
        the chunk could not be inserted — the caller must then make sure
        no stale copy of ``key`` lingers (an overwrite never fails).
        """
        existing = self._entries.get(key)
        if existing is None:
            while len(self._entries) >= self.capacity_chunks:
                victim = None
                for vkey, ventry in self._entries.items():
                    if not ventry.staged:
                        victim = vkey
                        break
                if victim is None:
                    return False
                self._drop(victim)
            yield from self.device.access(AccessKind.WRITE, len(data))
            self._entries[key] = _L2Entry(bytearray(data), staged)
            bucket = self._by_path.get(key[0])
            if bucket is None:
                bucket = self._by_path[key[0]] = set()
            bucket.add(key[1])
            return True
        yield from self.device.access(AccessKind.WRITE, len(data))
        existing.data = bytearray(data)
        existing.staged = staged
        self._entries.move_to_end(key)
        return True

    def mark_drained(self, key: tuple[str, int]) -> None:
        """The store write-back for ``key`` landed: entry becomes plain."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.staged = False

    # ------------------------------------------------------------------
    def drop(self, key: tuple[str, int]) -> None:
        """Forget ``key`` (metadata only, no device time)."""
        if key in self._entries:
            self._drop(key)

    def drop_path(self, path: str) -> None:
        """Forget every chunk of ``path`` (unlink)."""
        bucket = self._by_path.pop(path, None)
        if bucket:
            for index in bucket:
                del self._entries[(path, index)]

    def _drop(self, key: tuple[str, int]) -> None:
        del self._entries[key]
        bucket = self._by_path[key[0]]
        bucket.discard(key[1])
        if not bucket:
            del self._by_path[key[0]]
