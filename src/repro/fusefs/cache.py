"""The FUSE client chunk cache (paper §III-D).

One cache per compute node, shared by every file opened through that
node's mount.  Whole 256 KB chunks are cached on read (so a single byte
access pre-loads 64 pages — the read-ahead effect that makes sequential
NVMalloc STREAM *faster* than raw local-SSD access, Table III).  Writes
dirty 4 KB pages; on eviction only the dirty pages travel to the
benefactor, which is the write optimization Table VII quantifies (504 MB
vs 19.3 GB for a random-write workload).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Generator
from dataclasses import dataclass

from repro.devices.base import AccessKind
from repro.errors import FuseError
from repro.sim.events import Event
from repro.sim.resources import Resource
from repro.store.chunk import CHUNK_SIZE, PAGE_SIZE
from repro.store.client import StoreClient
from repro.util.intervals import IntervalSet
from repro.util.recorder import MetricsRecorder


@dataclass
class CacheStats:
    """Byte-flow and hit-rate accounting for one chunk cache."""

    hits: int = 0
    misses: int = 0
    fetched_bytes: int = 0  # store -> cache
    writeback_bytes: int = 0  # cache -> store
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a store fetch."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Entry:
    """One cached chunk."""

    __slots__ = ("data", "dirty", "valid", "pins", "filling", "writeback")

    def __init__(self, chunk_size: int) -> None:
        self.data = bytearray(chunk_size)
        self.dirty = IntervalSet()
        # False until the backing chunk has been fetched; a fully
        # overwritten chunk never needs fetching (write-allocate without
        # read when the write covers whole pages).
        self.valid = False
        # Number of in-progress operations using this entry; pinned
        # entries are never evicted (prevents livelock when concurrent
        # ranks outnumber cache slots).
        self.pins = 0
        # Single-flight fetch: when a fill is in progress, concurrent
        # requesters wait on this event instead of refetching (lockstep
        # ranks reading a shared file would otherwise multiply SSD
        # traffic by the rank count — a thundering herd).
        self.filling: Event | None = None
        # Fill and write-back on one entry must mutually exclude: a fill
        # merging a fetch that predates a concurrent write-back would
        # resurrect stale bytes after the write-back stole the dirty
        # markers that protect fresh data.
        self.writeback: Event | None = None


class ChunkCache:
    """LRU cache of whole chunks with page-granular dirty tracking."""

    def __init__(
        self,
        client: StoreClient,
        *,
        capacity_bytes: int,
        chunk_size: int = CHUNK_SIZE,
        page_size: int = PAGE_SIZE,
        dirty_page_writeback: bool = True,
        readahead_chunks: int = 0,
        daemon_threads: int = 1,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        if capacity_bytes < chunk_size:
            raise FuseError(
                f"cache of {capacity_bytes} bytes cannot hold one chunk "
                f"({chunk_size})"
            )
        if chunk_size % page_size != 0:
            raise FuseError("chunk size must be a multiple of page size")
        self.client = client
        self.chunk_size = chunk_size
        self.page_size = page_size
        self.capacity_chunks = capacity_bytes // chunk_size
        self.dirty_page_writeback = dirty_page_writeback
        self.readahead_chunks = readahead_chunks
        self.metrics = metrics if metrics is not None else client.metrics
        self.stats = CacheStats()
        # The FUSE daemon: store requests from this node are serviced by a
        # fixed number of daemon threads (1 by default, as in the paper's
        # prototype), so concurrent ranks' chunk fetches/write-backs
        # serialize at the node rather than pipelining into the fabric.
        self.daemon = Resource(
            client.node.engine, capacity=daemon_threads,
            name=f"{client.client_name}.fused",
        )
        self._entries: OrderedDict[tuple[str, int], _Entry] = OrderedDict()
        # Chunks whose eviction write-back is in flight: concurrent
        # accesses must wait for the store to hold current bytes before
        # refetching, or they would read the pre-writeback (stale) data.
        self._inflight: dict[tuple[str, int], Event] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def cached_keys(self) -> list[tuple[str, int]]:
        """(path, chunk_index) keys in LRU order (oldest first)."""
        return list(self._entries.keys())

    def dirty_bytes(self) -> int:
        """Bytes currently dirty across all cached chunks (page-aligned)."""
        total = 0
        for entry in self._entries.values():
            total += sum(
                stop - start for start, stop in self._page_align(entry.dirty)
            )
        return total

    # ------------------------------------------------------------------
    # Core access
    # ------------------------------------------------------------------
    def _touch(self, key: tuple[str, int]) -> _Entry:
        entry = self._entries[key]
        self._entries.move_to_end(key)
        return entry

    def _page_align(self, dirty: IntervalSet) -> list[tuple[int, int]]:
        """Expand dirty byte ranges to page boundaries and re-coalesce."""
        aligned = IntervalSet()
        for start, stop in dirty:
            page_start = (start // self.page_size) * self.page_size
            page_stop = min(
                -(-stop // self.page_size) * self.page_size, self.chunk_size
            )
            aligned.add(page_start, page_stop)
        return list(aligned)

    def _make_room(self) -> Generator[Event, object, None]:
        while len(self._entries) >= self.capacity_chunks:
            # LRU victim among unpinned entries.  When every entry is
            # pinned by an in-flight operation, overshoot temporarily —
            # bounded by the number of concurrent ranks on the node.
            victim_key = None
            for key, entry in self._entries.items():
                if entry.pins == 0:
                    victim_key = key
                    break
            if victim_key is None:
                return
            entry = self._entries.pop(victim_key)
            was_dirty = bool(entry.dirty)
            done = Event(self.client.node.engine)
            self._inflight[victim_key] = done
            try:
                yield from self._writeback(victim_key, entry)
            finally:
                del self._inflight[victim_key]
                done.succeed(None)
            self.stats.evictions += 1
            if was_dirty:
                self.stats.dirty_evictions += 1

    def _writeback(
        self, key: tuple[str, int], entry: _Entry
    ) -> Generator[Event, object, None]:
        # Wait out an in-flight fill: its merge must see the dirty
        # markers we are about to consume, or fetched (stale) bytes
        # would overwrite the freshly written ones.
        while entry.filling is not None:
            yield entry.filling
        if not entry.dirty:
            return
        path, index = key
        entry.writeback = Event(self.client.node.engine)
        if self.dirty_page_writeback:
            ranges = [
                (start, bytes(entry.data[start:stop]))
                for start, stop in self._page_align(entry.dirty)
            ]
        else:
            # Unoptimized mode (Table VII "w/o Optimization"): ship the
            # entire chunk whenever anything in it is dirty.
            ranges = [(0, bytes(entry.data))]
        # Clear dirtiness before yielding: writes landing while the
        # payload is in flight re-dirty the entry and flush later.
        entry.dirty.clear()
        nbytes = sum(len(payload) for _, payload in ranges)
        try:
            req = self.daemon.request()
            yield req
            try:
                yield from self.client.write_chunk_ranges(path, index, ranges)
            finally:
                self.daemon.release(req)
        finally:
            event, entry.writeback = entry.writeback, None
            if event is not None:
                event.succeed(None)
        self.stats.writeback_bytes += nbytes
        self.metrics.add("fuse.writeback.bytes", nbytes)

    def _load(
        self, path: str, index: int, *, fetch: bool, count_stats: bool = True
    ) -> Generator[Event, object, _Entry]:
        """Pin the chunk into the cache and return its (current) entry.

        Loops until it can return an entry that is actually resident and
        (when ``fetch``) valid: any yield — eviction write-backs, store
        fetches — may interleave with other ranks evicting or refilling
        this very chunk, so residency is re-checked after every wait.
        """
        key = (path, index)
        first_attempt = count_stats
        while True:
            # If this chunk is mid-eviction, wait for its write-back to
            # land (refetching now would read stale bytes from the store).
            while key in self._inflight:
                yield self._inflight[key]
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.pins += 1  # survives the fill below and is returned
                if fetch and not entry.valid:
                    if entry.filling is not None:
                        # Someone is already fetching this chunk: wait for
                        # their fill rather than duplicating the transfer.
                        event = entry.filling
                        entry.pins -= 1
                        yield event
                        continue
                    yield from self._fill(path, index, entry)
                if first_attempt:
                    self.stats.hits += 1
                    self.metrics.add("fuse.cache.hits")
                return entry
            if first_attempt:
                self.stats.misses += 1
                self.metrics.add("fuse.cache.misses")
                first_attempt = False
            yield from self._make_room()
            # _make_room yielded: the chunk may have (re)appeared or gone
            # back into eviction; restart the residency checks if so.
            if key in self._entries or key in self._inflight:
                continue
            entry = _Entry(self.chunk_size)
            entry.pins = 1
            self._entries[key] = entry
            if fetch:
                yield from self._fill(path, index, entry)
            return entry

    def _fill(self, path: str, index: int, entry: _Entry) -> Generator[Event, object, None]:
        entry.filling = Event(self.client.node.engine)
        try:
            # Mutual exclusion with write-backs (registered before this
            # wait so concurrent readers single-flight on us meanwhile).
            while entry.writeback is not None:
                yield entry.writeback
            req = self.daemon.request()
            yield req
            try:
                data = yield from self.client.read_chunk(path, index)
            finally:
                self.daemon.release(req)
        finally:
            event, entry.filling = entry.filling, None
            event.succeed(None)
        # Preserve bytes written before the fill (write-allocate case).
        if entry.dirty:
            merged = bytearray(self.chunk_size)
            merged[: len(data)] = data
            for start, stop in entry.dirty:
                merged[start:stop] = entry.data[start:stop]
            entry.data[:] = merged
        else:
            entry.data[: len(data)] = data
            if len(data) < self.chunk_size:
                entry.data[len(data):] = bytes(self.chunk_size - len(data))
        entry.valid = True
        self.stats.fetched_bytes += len(data)
        self.metrics.add("fuse.fetch.bytes", len(data))

    # ------------------------------------------------------------------
    # Public read/write (byte ranges within one chunk)
    # ------------------------------------------------------------------
    def read(
        self, path: str, index: int, offset: int, length: int
    ) -> Generator[Event, object, bytes]:
        """Read bytes from chunk ``index`` of ``path`` (fetch on miss)."""
        self._check(offset, length)
        entry = yield from self._load(path, index, fetch=True)
        try:
            self.metrics.add("fuse.read.bytes", length)
            readahead = self.readahead_chunks
            if readahead:
                # Asynchronous: prefetches run as their own simulation
                # processes so the demand read never waits on them.
                nchunks = -(-self.client.file_size(path) // self.chunk_size)
                for ahead in range(1, readahead + 1):
                    nxt = index + ahead
                    if (
                        nxt >= nchunks
                        or (path, nxt) in self._entries
                        or (path, nxt) in self._inflight
                    ):
                        break
                    self.client.node.engine.process(self._prefetch(path, nxt))
            # Serving from the cache is still a DRAM copy, not free.
            yield from self.client.node.dram.access(AccessKind.READ, length)
            return bytes(entry.data[offset : offset + length])
        finally:
            entry.pins -= 1

    def _prefetch(self, path: str, index: int) -> Generator[Event, object, None]:
        """Background read-ahead of one chunk (failures are harmless —
        the file may be unlinked while the prefetch is in flight)."""
        try:
            entry = yield from self._load(
                path, index, fetch=True, count_stats=False
            )
            entry.pins -= 1
            self.metrics.add("fuse.cache.prefetches")
        except Exception:  # noqa: BLE001 - prefetch is best-effort
            pass

    def write(
        self, path: str, index: int, offset: int, data: bytes
    ) -> Generator[Event, object, None]:
        """Write bytes into chunk ``index`` of ``path``.

        A write that does not cover whole pages of a not-yet-cached chunk
        triggers a read-modify-write fetch, exactly as the paper describes
        ("the corresponding chunk ... is read from the benefactor to the
        FUSE client's cache in case of a miss").
        """
        self._check(offset, len(data))
        covers_whole_pages = (
            offset % self.page_size == 0
            and (offset + len(data)) % self.page_size == 0
        )
        entry = yield from self._load(path, index, fetch=not covers_whole_pages)
        try:
            entry.data[offset : offset + len(data)] = data
            entry.dirty.add(offset, offset + len(data))
            self.metrics.add("fuse.write.bytes", len(data))
            yield from self.client.node.dram.access(AccessKind.WRITE, len(data))
        finally:
            entry.pins -= 1

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.chunk_size:
            raise FuseError(
                f"access [{offset}, {offset + length}) outside chunk of "
                f"{self.chunk_size}"
            )

    # ------------------------------------------------------------------
    # Flush / invalidate
    # ------------------------------------------------------------------
    def drain_path(self, path: str) -> Generator[Event, object, None]:
        """Wait until no eviction write-back for ``path`` is in flight."""
        while True:
            pending = [
                event for key, event in self._inflight.items() if key[0] == path
            ]
            if not pending:
                return
            yield pending[0]

    def flush_path(self, path: str) -> Generator[Event, object, None]:
        """Write back all dirty chunks of ``path`` (fsync)."""
        yield from self.drain_path(path)
        for key in [k for k in self._entries if k[0] == path]:
            entry = self._entries.get(key)
            if entry is not None:  # may be evicted while we flush others
                yield from self._writeback(key, entry)
        yield from self.drain_path(path)

    def flush_all(self) -> Generator[Event, object, None]:
        """Write back every dirty chunk."""
        for key in list(self._entries):
            entry = self._entries.get(key)
            if entry is not None:
                yield from self._writeback(key, entry)

    def invalidate_path(self, path: str) -> None:
        """Drop cached chunks of ``path`` without writing back (unlink)."""
        for key in [k for k in self._entries if k[0] == path]:
            del self._entries[key]
