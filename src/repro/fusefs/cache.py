"""The FUSE client chunk cache (paper §III-D).

One cache per compute node, shared by every file opened through that
node's mount.  Whole 256 KB chunks are cached on read (so a single byte
access pre-loads 64 pages — the read-ahead effect that makes sequential
NVMalloc STREAM *faster* than raw local-SSD access, Table III).  Writes
dirty 4 KB pages; on eviction only the dirty pages travel to the
benefactor, which is the write optimization Table VII quantifies (504 MB
vs 19.3 GB for a random-write workload).

Bookkeeping runs on two auxiliary structures kept in lockstep with the
LRU dict: a per-path index (``_by_path``/``_inflight_by_path``) so
per-file flush/drain/invalidate walk only that file's chunks instead of
the whole cache, and a monotone ``lru`` stamp per entry so a per-path
flush can replay exact LRU order without consulting the global dict.
Neither structure changes what is simulated — only how fast Python finds
the entries.

Beyond the seed behaviour, three opt-in features form a tiered adaptive
hierarchy (see INTERNALS.md "Client cache hierarchy"):

- ``policy="arc"`` swaps the inline LRU victim scan for the adaptive
  replacement policy in :mod:`repro.fusefs.policy`;
- ``local_cache_bytes`` adds a node-local SSD tier
  (:mod:`repro.fusefs.localtier`) that absorbs DRAM evictions and
  serves DRAM misses without the network round trip;
- ``prefetch="adaptive"`` replaces the fixed ``readahead_chunks``
  window with the per-file pattern detector in
  :mod:`repro.fusefs.prefetch`.

All three default to off, and every hook sits behind a ``None`` check on
the default path, so the default configuration stays event-for-event
identical to the seed (the digest-identity gate in CI enforces this).
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from collections.abc import Generator, Iterable
from dataclasses import dataclass

import numpy as np

from repro.devices.base import AccessKind
from repro.errors import FuseError
from repro.fusefs.localtier import LocalCacheTier
from repro.fusefs.policy import make_policy
from repro.fusefs.prefetch import PatternPrefetcher
from repro.sim.events import Event
from repro.sim.resources import Resource
from repro.store.chunk import CHUNK_SIZE, PAGE_SIZE
from repro.store.client import StoreClient
from repro.util.intervals import IntervalSet
from repro.util.recorder import MetricsRecorder


@dataclass
class CacheStats:
    """Byte-flow and hit-rate accounting for one chunk cache."""

    hits: int = 0
    misses: int = 0
    fetched_bytes: int = 0  # store -> cache
    prefetched_bytes: int = 0  # subset of fetched_bytes pulled by read-ahead
    writeback_bytes: int = 0  # cache -> store
    evictions: int = 0
    dirty_evictions: int = 0
    # Tiered-hierarchy accounting (all zero in the default configuration).
    l2_hits: int = 0  # demand DRAM misses served by the local SSD tier
    prefetch_hits: int = 0  # demand hits on chunks a prefetch brought in
    prefetches: int = 0  # prefetch fills issued (fixed or adaptive)
    l2_spill_bytes: int = 0  # DRAM evictions written into the local tier
    l2_promote_bytes: int = 0  # local tier -> DRAM promotions
    store_fills: int = 0  # demand fills served by the store
    l2_fills: int = 0  # demand fills served by the local tier
    store_fill_seconds: float = 0.0  # virtual time in store demand fills
    l2_fill_seconds: float = 0.0  # virtual time in local-tier demand fills

    @property
    def hit_rate(self) -> float:
        """Fraction of demand lookups served without a store fetch.

        Demand-only: prefetch fills never count (their lookups pass
        ``count_stats=False``), and a local-tier hit avoided the store
        round trip, so it counts as a hit.  Identical to the seed's
        ``hits / (hits + misses)`` when the local tier is off.
        """
        total = self.hits + self.l2_hits + self.misses
        return (self.hits + self.l2_hits) / total if total else 0.0

    @property
    def l1_hit_rate(self) -> float:
        """Fraction of demand lookups served from the DRAM tier alone."""
        total = self.hits + self.l2_hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def l2_hit_rate(self) -> float:
        """Fraction of DRAM demand misses absorbed by the local tier."""
        total = self.l2_hits + self.misses
        return self.l2_hits / total if total else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of issued prefetches later hit by a demand lookup."""
        return self.prefetch_hits / self.prefetches if self.prefetches else 0.0

    @property
    def demand_fill_latency(self) -> float:
        """Mean virtual seconds a demand miss spent filling its chunk."""
        fills = self.store_fills + self.l2_fills
        if not fills:
            return 0.0
        return (self.store_fill_seconds + self.l2_fill_seconds) / fills


class _Entry:
    """One cached chunk."""

    __slots__ = (
        "data", "dirty", "valid", "pins", "filling", "writeback", "lru",
        "prefetched", "l2_stale", "shared",
    )

    def __init__(self, chunk_size: int) -> None:
        # Allocated lazily: a fetch replaces it wholesale with the
        # fetched bytes, and a write-before-fetch allocates it zeroed
        # (write-allocate semantics: unwritten bytes read as zeroes).
        # Skipping the eager zero-fill avoids one chunk-size memset per
        # entry on the fetch-dominated path.
        self.data: bytearray | None = None
        self.dirty = IntervalSet()
        # False until the backing chunk has been fetched; a fully
        # overwritten chunk never needs fetching (write-allocate without
        # read when the write covers whole pages).
        self.valid = False
        # Number of in-progress operations using this entry; pinned
        # entries are never evicted (prevents livelock when concurrent
        # ranks outnumber cache slots).
        self.pins = 0
        # Single-flight fetch: when a fill is in progress, concurrent
        # requesters wait on this event instead of refetching (lockstep
        # ranks reading a shared file would otherwise multiply SSD
        # traffic by the rank count — a thundering herd).
        self.filling: Event | None = None
        # Fill and write-back on one entry must mutually exclude: a fill
        # merging a fetch that predates a concurrent write-back would
        # resurrect stale bytes after the write-back stole the dirty
        # markers that protect fresh data.
        self.writeback: Event | None = None
        # Recency stamp, mirroring this entry's position in the LRU dict:
        # strictly increasing across touches, so sorting a path's entries
        # by stamp reproduces LRU (insertion) order exactly.
        self.lru = 0
        # True from a prefetch fill until the first demand hit consumes
        # it — that hit is what makes the prefetch "useful".
        self.prefetched = False
        # True while ``data`` is a zero-copy loan of the benefactor's
        # live payload buffer (full-chunk fetch).  The first write must
        # unshare (copy) — mutating a loan in place would silently edit
        # the stored bytes.
        self.shared = False
        # With the local tier on: byte ranges written since this entry
        # was created, i.e. how far the tier's shadow copy (if any) lags
        # behind.  ``dirty`` cannot serve — write-backs clear it while
        # the shadow stays stale.  None until the first tiered write.
        self.l2_stale: IntervalSet | None = None


class ChunkCache:
    """LRU cache of whole chunks with page-granular dirty tracking."""

    def __init__(
        self,
        client: StoreClient,
        *,
        capacity_bytes: int,
        chunk_size: int = CHUNK_SIZE,
        page_size: int = PAGE_SIZE,
        dirty_page_writeback: bool = True,
        readahead_chunks: int = 0,
        daemon_threads: int = 1,
        policy: str = "lru",
        local_cache_bytes: int = 0,
        prefetch: str = "fixed",
        prefetch_depth: int = 8,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        if capacity_bytes < chunk_size:
            raise FuseError(
                f"cache of {capacity_bytes} bytes cannot hold one chunk "
                f"({chunk_size})"
            )
        if chunk_size % page_size != 0:
            raise FuseError("chunk size must be a multiple of page size")
        if prefetch not in ("fixed", "adaptive"):
            raise FuseError(
                f"unknown prefetch mode {prefetch!r}; "
                "expected 'fixed' or 'adaptive'"
            )
        self.client = client
        self.chunk_size = chunk_size
        self.page_size = page_size
        self.capacity_chunks = capacity_bytes // chunk_size
        self.dirty_page_writeback = dirty_page_writeback
        self.readahead_chunks = readahead_chunks
        self.metrics = metrics if metrics is not None else client.metrics
        self.stats = CacheStats()
        self.policy_name = policy
        # None for "lru": plain LRU is the entry dict's own order, so the
        # default path keeps its inline victim scan with zero hook cost.
        self._policy = make_policy(policy, self.capacity_chunks)
        self._l2 = (
            LocalCacheTier(
                client.node,
                capacity_bytes=local_cache_bytes,
                chunk_size=chunk_size,
                metrics=metrics if metrics is not None else client.metrics,
            )
            if local_cache_bytes
            else None
        )
        self._prefetcher = (
            PatternPrefetcher(max_depth=prefetch_depth)
            if prefetch == "adaptive"
            else None
        )
        # Any non-default cache feature switches on the extended counter
        # set below.  Gating them keeps default-configuration experiment
        # digests bit-identical to the seed (counters materializing at
        # all would change the folded counter snapshot).
        extended = (
            self._policy is not None
            or self._l2 is not None
            or self._prefetcher is not None
        )
        self.extended_metrics = extended
        # Direct references for the per-access hot paths (three attribute
        # hops each otherwise).
        self._engine = client.node.engine
        self._dram = client.node.dram
        # The FUSE daemon: store requests from this node are serviced by a
        # fixed number of daemon threads (1 by default, as in the paper's
        # prototype), so concurrent ranks' chunk fetches/write-backs
        # serialize at the node rather than pipelining into the fabric.
        self.daemon = Resource(
            client.node.engine, capacity=daemon_threads,
            name=f"{client.client_name}.fused",
        )
        self._entries: OrderedDict[tuple[str, int], _Entry] = OrderedDict()
        # Per-path view of ``_entries`` keys, so path-scoped operations
        # (fsync, unlink) touch only that file's chunks.
        self._by_path: dict[str, set[int]] = {}
        # Chunks whose eviction write-back is in flight: concurrent
        # accesses must wait for the store to hold current bytes before
        # refetching, or they would read the pre-writeback (stale) data.
        self._inflight: dict[tuple[str, int], Event] = {}
        # Per-path view of ``_inflight``; inner dicts preserve insertion
        # order so drain_path waits on the same (oldest) write-back a
        # whole-dict scan would have picked.
        self._inflight_by_path: dict[str, dict[int, Event]] = {}
        # Per-path invalidation generation: an in-flight tiered eviction
        # captured the generation at eviction time and must not spill
        # into the local tier if the path was invalidated since (a
        # recreated file would read the dead file's bytes).
        self._inval_gen: dict[str, int] = {}
        # Keys whose in-flight tiered eviction has not yet brought the
        # local tier current: the tier's shadow copy (kept by the
        # inclusive promote) may lag the departed entry's writes until
        # the eviction patches or drops it, so readers must not promote
        # such a key (see the ``_load`` wait loop).
        self._l2_unsettled: set[tuple[str, int]] = set()
        self._tick = 0
        # Hot-path counters, resolved on first use (snapshot-identical
        # to per-call ``metrics.add``: untouched ones never materialize).
        self._hits_counter = None
        self._misses_counter = None
        self._read_counter = None
        self._write_counter = None
        self._fetch_counter = None
        self._writeback_counter = None
        # Extended per-tier counters: eagerly bound in extended mode (the
        # ablation reports want zeros to show up), absent otherwise.
        self._c_l1_hits = None
        self._c_l1_misses = None
        self._c_l2_hits = None
        self._c_l2_misses = None
        self._c_l2_spill = None
        self._c_l2_promote = None
        self._c_pf_issued = None
        self._c_pf_useful = None
        self._c_arc_ghost = None
        if extended:
            self._c_l1_hits = self.metrics.counter("fuse.cache.l1.hits")
            self._c_l1_misses = self.metrics.counter("fuse.cache.l1.misses")
            self._c_pf_issued = self.metrics.counter("fuse.prefetch.issued")
            self._c_pf_useful = self.metrics.counter("fuse.prefetch.useful")
            if self._l2 is not None:
                self._c_l2_hits = self.metrics.counter("fuse.cache.l2.hits")
                self._c_l2_misses = self.metrics.counter("fuse.cache.l2.misses")
                self._c_l2_spill = self.metrics.counter(
                    "fuse.cache.l2.spill_bytes"
                )
                self._c_l2_promote = self.metrics.counter(
                    "fuse.cache.l2.promote_bytes"
                )
            if self._policy is not None:
                self._c_arc_ghost = self.metrics.counter(
                    "fuse.cache.arc.ghost_hits"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def cached_keys(self) -> list[tuple[str, int]]:
        """(path, chunk_index) keys in LRU order (oldest first)."""
        return list(self._entries.keys())

    @property
    def policy(self):
        """The pluggable policy object (None for the inline LRU)."""
        return self._policy

    @property
    def local_tier(self) -> LocalCacheTier | None:
        """The node-local SSD cache tier (None when disabled)."""
        return self._l2

    @property
    def prefetcher(self) -> PatternPrefetcher | None:
        """The adaptive pattern detector (None in fixed mode)."""
        return self._prefetcher

    def dirty_bytes(self) -> int:
        """Bytes currently dirty across all cached chunks (page-aligned)."""
        total = 0
        for entry in self._entries.values():
            total += sum(
                stop - start for start, stop in self._page_align(entry.dirty)
            )
        return total

    def dirty_chunk_indices(self, path: str) -> set[int]:
        """Chunk indices of ``path`` with unflushed dirty ranges.

        Pure metadata (no events): used by incremental checkpoints to
        find chunks whose store copy is behind the cached view.
        """
        bucket = self._by_path.get(path)
        if not bucket:
            return set()
        entries = self._entries
        return {
            index for index in bucket if entries[(path, index)].dirty
        }

    # ------------------------------------------------------------------
    # Core access
    # ------------------------------------------------------------------
    def _touch(self, key: tuple[str, int]) -> _Entry:
        entry = self._entries[key]
        self._entries.move_to_end(key)
        self._tick += 1
        entry.lru = self._tick
        if self._policy is not None:
            self._policy.record_hit(key)
        return entry

    def _page_align(self, dirty: IntervalSet) -> list[tuple[int, int]]:
        """Expand dirty byte ranges to page boundaries and re-coalesce.

        One vectorized pass over the set's endpoint arrays: align every
        range, then merge where an aligned start falls at or before its
        predecessor's aligned stop (the coalescing an ``IntervalSet.add``
        loop would have done).  The endpoints are sorted and disjoint, so
        both aligned arrays are non-decreasing and a merged group's stop
        is its last member's stop.
        """
        starts, stops = dirty.as_arrays()
        n = len(starts)
        if not n:
            return []
        ps = self.page_size
        a = (starts // ps) * ps
        b = np.minimum(-(-stops // ps) * ps, self.chunk_size)
        if n == 1:
            return [(int(a[0]), int(b[0]))]
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.greater(a[1:], b[:-1], out=keep[1:])
        if keep.all():
            return list(zip(a.tolist(), b.tolist()))
        idx = np.flatnonzero(keep)
        last = np.empty(len(idx), dtype=np.intp)
        last[:-1] = idx[1:] - 1
        last[-1] = n - 1
        return list(zip(a[idx].tolist(), b[last].tolist()))

    def _make_room(self) -> Generator[Event, object, None]:
        policy = self._policy
        l2 = self._l2
        while len(self._entries) >= self.capacity_chunks:
            # LRU victim among unpinned entries.  When every entry is
            # pinned by an in-flight operation, overshoot temporarily —
            # bounded by the number of concurrent ranks on the node.
            victim_key = None
            if policy is not None:
                victim_key = policy.victim(self._entries, self._inflight)
            elif l2 is not None:
                # Default LRU scan, but also skip keys whose previous
                # incarnation's background spill/drain is still in
                # flight: re-registering them would collide in
                # ``_inflight``.  (Impossible in the flat default: a key
                # re-enters ``_entries`` only after its drain lands.)
                for key, entry in self._entries.items():
                    if entry.pins == 0 and key not in self._inflight:
                        victim_key = key
                        break
            else:
                for key, entry in self._entries.items():
                    if entry.pins == 0:
                        victim_key = key
                        break
            if victim_key is None:
                return
            entry = self._entries.pop(victim_key)
            vpath, vindex = victim_key
            bucket = self._by_path[vpath]
            bucket.discard(vindex)
            if not bucket:
                del self._by_path[vpath]
            if policy is not None:
                policy.record_evict(victim_key)
            was_dirty = bool(entry.dirty)
            done = Event(self._engine)
            self._inflight[victim_key] = done
            ibucket = self._inflight_by_path.get(vpath)
            if ibucket is None:
                ibucket = self._inflight_by_path[vpath] = {}
            ibucket[vindex] = done
            if l2 is not None:
                # Tiered eviction is fully asynchronous: the spill into
                # the local tier and the store drain run as their own
                # simulation process, so the evicting rank never waits —
                # only the ``_inflight`` marker ties readers to it.
                # Until that process patches (or drops) the tier's
                # shadow copy, the local bytes may lag this entry's
                # writes and must not be promoted.
                self._l2_unsettled.add(victim_key)
                self._engine.process(
                    self._evict_tiered(
                        victim_key, entry, done,
                        self._inval_gen.get(vpath, 0),
                    )
                )
                self.stats.evictions += 1
                if was_dirty:
                    self.stats.dirty_evictions += 1
                continue
            tracer = self._engine.tracer
            span = (
                tracer.begin("fuse", "evict_writeback", path=vpath, index=vindex)
                if tracer is not None
                else None
            )
            try:
                # Inlined _writeback (which flush_path/flush_all still
                # use): every event of every eviction write-back resumes
                # through this frame, so skipping the extra ``yield
                # from`` hop is paid back on each of them.
                while entry.filling is not None:
                    yield entry.filling
                if entry.dirty:
                    entry.writeback = Event(self._engine)
                    if self.dirty_page_writeback:
                        view = memoryview(entry.data)
                        ranges = [
                            (start, bytes(view[start:stop]))
                            for start, stop in self._page_align(entry.dirty)
                        ]
                    else:
                        ranges = [(0, bytes(entry.data))]
                    entry.dirty.clear()
                    nbytes = sum(len(payload) for _, payload in ranges)
                    try:
                        req = self.daemon.acquire_now()
                        if req is None:
                            req = self.daemon.request()
                            yield req
                        try:
                            yield from self.client.write_chunk_ranges(
                                vpath, vindex, ranges
                            )
                        finally:
                            self.daemon.release(req)
                    finally:
                        event, entry.writeback = entry.writeback, None
                        if event is not None:
                            event.succeed(None)
                    self.stats.writeback_bytes += nbytes
                    counter = self._writeback_counter
                    if counter is None:
                        counter = self._writeback_counter = self.metrics.counter(
                            "fuse.writeback.bytes"
                        )
                    counter.total += nbytes
                    counter.count += 1
            finally:
                del self._inflight[victim_key]
                del ibucket[vindex]
                if not ibucket:
                    del self._inflight_by_path[vpath]
                done.succeed(None)
                if span is not None:
                    tracer.end(span)
            self.stats.evictions += 1
            if was_dirty:
                self.stats.dirty_evictions += 1

    def _evict_tiered(
        self, key: tuple[str, int], entry: _Entry, done: Event, gen_at: int
    ) -> Generator[Event, object, None]:
        """Dispatch :meth:`_evict_tiered_impl`, spanned when tracing is on."""
        gen = self._evict_tiered_impl(key, entry, done, gen_at)
        tracer = self._engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "fuse.l2", "evict", gen,
            path=key[0], index=key[1], dirty=bool(entry.dirty),
        )

    def _evict_tiered_impl(
        self, key: tuple[str, int], entry: _Entry, done: Event, gen_at: int
    ) -> Generator[Event, object, None]:
        """Background eviction with the local tier on.

        Brings the local tier current for the departing chunk (see
        :meth:`_spill`), then — for dirty entries — drains the dirty
        page ranges to the store.  The local copy is *staged* while the
        drain is in flight: it is the durable one readers may promote
        meanwhile, and ``mark_drained`` releases it to age out normally
        once the store holds the bytes.

        Consistency: an entry that is not fully valid (write-allocate
        holes) must never become a resident local-tier copy — its buffer
        is not the chunk's true contents — so those drop the key from
        the tier instead.  The same applies when the tier is wedged full
        of staged entries and the insert fails.
        """
        l2 = self._l2
        path, index = key
        try:
            while entry.filling is not None:
                yield entry.filling
            if entry.dirty:
                if self.dirty_page_writeback:
                    view = memoryview(entry.data)
                    ranges = [
                        (start, bytes(view[start:stop]))
                        for start, stop in self._page_align(entry.dirty)
                    ]
                else:
                    ranges = [(0, bytes(entry.data))]
                entry.dirty.clear()
                nbytes = sum(len(payload) for _, payload in ranges)
                if entry.valid and self._inval_gen.get(path, 0) == gen_at:
                    ok = yield from self._spill(key, entry, staged=True)
                    if not ok:
                        l2.drop(key)
                else:
                    l2.drop(key)
                self._l2_unsettled.discard(key)
                req = self.daemon.acquire_now()
                if req is None:
                    req = self.daemon.request()
                    yield req
                try:
                    yield from self.client.write_chunk_ranges(
                        path, index, ranges
                    )
                finally:
                    self.daemon.release(req)
                self.stats.writeback_bytes += nbytes
                counter = self._writeback_counter
                if counter is None:
                    counter = self._writeback_counter = self.metrics.counter(
                        "fuse.writeback.bytes"
                    )
                counter.total += nbytes
                counter.count += 1
                l2.mark_drained(key)
            elif (
                entry.valid
                and entry.data is not None
                and self._inval_gen.get(path, 0) == gen_at
            ):
                ok = yield from self._spill(key, entry, staged=False)
                if not ok:
                    l2.drop(key)
            else:
                l2.drop(key)
        finally:
            self._l2_unsettled.discard(key)
            del self._inflight[key]
            ibucket = self._inflight_by_path[path]
            del ibucket[index]
            if not ibucket:
                del self._inflight_by_path[path]
            done.succeed(None)

    def _spill(
        self, key: tuple[str, int], entry: _Entry, *, staged: bool
    ) -> Generator[Event, object, bool]:
        """Bring the local tier current for a departing entry.

        Three cases, cheapest first: the tier already shadows the chunk
        and no write diverged it — a metadata touch, no device time; the
        shadow lags — patch just the diverged page ranges back in; the
        tier never saw the chunk — write it whole.  Returns False when a
        whole-chunk insert failed (tier wedged full of staged entries);
        the caller must then drop the key.
        """
        l2 = self._l2
        if l2.contains(key):
            stale = entry.l2_stale
            if stale is None or not stale:
                l2.touch(key)
                return True
            view = memoryview(entry.data)
            ranges = [
                (start, bytes(view[start:stop]))
                for start, stop in self._page_align(stale)
            ]
            yield from l2.patch(key, ranges, staged=staged)
            nbytes = sum(len(payload) for _, payload in ranges)
        else:
            ok = yield from l2.put(key, bytes(entry.data), staged=staged)
            if not ok:
                return False
            nbytes = self.chunk_size
        self.stats.l2_spill_bytes += nbytes
        counter = self._c_l2_spill
        if counter is not None:
            counter.total += nbytes
            counter.count += 1
        return True

    def _writeback(
        self, key: tuple[str, int], entry: _Entry
    ) -> Generator[Event, object, None]:
        """Dispatch :meth:`_writeback_impl`, spanned when tracing is on."""
        gen = self._writeback_impl(key, entry)
        tracer = self._engine.tracer
        if tracer is None:
            return gen
        return tracer.wrap(
            "fuse", "writeback", gen, path=key[0], index=key[1]
        )

    def _writeback_impl(
        self, key: tuple[str, int], entry: _Entry
    ) -> Generator[Event, object, None]:
        # Wait out an in-flight fill: its merge must see the dirty
        # markers we are about to consume, or fetched (stale) bytes
        # would overwrite the freshly written ones.
        while entry.filling is not None:
            yield entry.filling
        if not entry.dirty:
            return
        path, index = key
        entry.writeback = Event(self._engine)
        if self.dirty_page_writeback:
            view = memoryview(entry.data)
            ranges = [
                (start, bytes(view[start:stop]))
                for start, stop in self._page_align(entry.dirty)
            ]
        else:
            # Unoptimized mode (Table VII "w/o Optimization"): ship the
            # entire chunk whenever anything in it is dirty.
            ranges = [(0, bytes(entry.data))]
        # Clear dirtiness before yielding: writes landing while the
        # payload is in flight re-dirty the entry and flush later.
        entry.dirty.clear()
        nbytes = sum(len(payload) for _, payload in ranges)
        try:
            req = self.daemon.acquire_now()
            if req is None:
                req = self.daemon.request()
                yield req
            try:
                yield from self.client.write_chunk_ranges(path, index, ranges)
            finally:
                self.daemon.release(req)
        finally:
            event, entry.writeback = entry.writeback, None
            if event is not None:
                event.succeed(None)
        self.stats.writeback_bytes += nbytes
        counter = self._writeback_counter
        if counter is None:
            counter = self._writeback_counter = self.metrics.counter(
                "fuse.writeback.bytes"
            )
        counter.total += nbytes
        counter.count += 1

    def _load(
        self,
        path: str,
        index: int,
        *,
        fetch: bool,
        count_stats: bool = True,
        prefetch: bool = False,
    ) -> Generator[Event, object, _Entry]:
        """Pin the chunk into the cache and return its (current) entry.

        Loops until it can return an entry that is actually resident and
        (when ``fetch``) valid: any yield — eviction write-backs, store
        fetches — may interleave with other ranks evicting or refilling
        this very chunk, so residency is re-checked after every wait.
        """
        key = (path, index)
        first_attempt = count_stats
        entries = self._entries
        inflight = self._inflight
        policy = self._policy
        l2 = self._l2
        while True:
            # If this chunk is mid-eviction, wait for its write-back to
            # land (refetching now would read stale bytes from the store)
            # — unless the local tier already holds a *current* copy
            # (spilled, or an unchanged shadow), in which case the fill
            # below will promote it without touching the store.  A key in
            # ``_l2_unsettled`` has a shadow that may still lag the
            # departed entry's writes: not promotable yet.
            while key in inflight:
                if (
                    l2 is not None
                    and l2.contains(key)
                    and key not in self._l2_unsettled
                ):
                    break
                yield inflight[key]
            entry = entries.get(key)
            if entry is not None:
                entries.move_to_end(key)
                self._tick += 1
                entry.lru = self._tick
                entry.pins += 1  # survives the fill below and is returned
                if policy is not None:
                    policy.record_hit(key)
                if fetch and not entry.valid:
                    if entry.filling is not None:
                        # Someone is already fetching this chunk: wait for
                        # their fill rather than duplicating the transfer.
                        event = entry.filling
                        entry.pins -= 1
                        yield event
                        continue
                    yield from self._fill(path, index, entry, prefetch=prefetch)
                if first_attempt:
                    self.stats.hits += 1
                    counter = self._hits_counter
                    if counter is None:
                        counter = self._hits_counter = self.metrics.counter(
                            "fuse.cache.hits"
                        )
                    counter.total += 1.0
                    counter.count += 1
                    if entry.prefetched:
                        entry.prefetched = False
                        self.stats.prefetch_hits += 1
                        counter = self._c_pf_useful
                        if counter is not None:
                            counter.total += 1.0
                            counter.count += 1
                    counter = self._c_l1_hits
                    if counter is not None:
                        counter.total += 1.0
                        counter.count += 1
                return entry
            if first_attempt:
                in_l2 = l2 is not None and l2.contains(key)
                if in_l2:
                    # Served locally: a demand hit as far as the store is
                    # concerned — the seed's miss counters stay reserved
                    # for lookups that pay the network round trip.
                    self.stats.l2_hits += 1
                    counter = self._c_l2_hits
                    if counter is not None:
                        counter.total += 1.0
                        counter.count += 1
                else:
                    self.stats.misses += 1
                    counter = self._misses_counter
                    if counter is None:
                        counter = self._misses_counter = self.metrics.counter(
                            "fuse.cache.misses"
                        )
                    counter.total += 1.0
                    counter.count += 1
                    counter = self._c_l2_misses
                    if counter is not None:
                        counter.total += 1.0
                        counter.count += 1
                counter = self._c_l1_misses
                if counter is not None:
                    counter.total += 1.0
                    counter.count += 1
                first_attempt = False
                if policy is not None and policy.record_miss(key):
                    # Ghost hit moved the adaptive target: sample it so
                    # the report can show p's trajectory.
                    self.metrics.sample(
                        "fuse.cache.arc.p", self._engine.now, float(policy.p)
                    )
                    counter = self._c_arc_ghost
                    if counter is not None:
                        counter.total += 1.0
                        counter.count += 1
            if len(entries) >= self.capacity_chunks:
                # Guarded call: below capacity _make_room's loop would
                # fall straight through, so skipping it outright spares
                # a generator round trip per miss.
                yield from self._make_room()
            # _make_room yielded: the chunk may have (re)appeared or gone
            # back into eviction; restart the residency checks if so.
            # (A key mid-drain whose spilled copy sits in the local tier
            # is *not* a reason to restart — the wait above would break
            # straight back out and the fill promotes the local copy.)
            if key in entries:
                continue
            if key in inflight and (
                l2 is None
                or not l2.contains(key)
                or key in self._l2_unsettled
            ):
                continue
            entry = _Entry(self.chunk_size)
            entry.pins = 1
            self._tick += 1
            entry.lru = self._tick
            entries[key] = entry
            bucket = self._by_path.get(path)
            if bucket is None:
                bucket = self._by_path[path] = set()
            bucket.add(index)
            if policy is not None:
                policy.record_insert(key)
            if fetch:
                yield from self._fill(path, index, entry, prefetch=prefetch)
            return entry

    def _promotable(self, key: tuple[str, int], entry: _Entry) -> bool:
        """Whether the local tier's copy can serve this entry's fill.

        The fill merges ``entry.dirty`` over the promoted bytes, so the
        tier's copy is usable only while every write this entry has
        absorbed since creation is still marked dirty.  Once a
        write-back has shipped some of those writes (clearing ``dirty``
        but not ``l2_stale``), the store holds newer bytes than the
        tier's shadow and is the only current source.
        """
        l2 = self._l2
        if l2 is None or not l2.contains(key):
            return False
        stale = entry.l2_stale
        if stale is None or not stale:
            return not entry.dirty
        return stale == entry.dirty

    def _fill(
        self, path: str, index: int, entry: _Entry, *, prefetch: bool = False
    ) -> Generator[Event, object, None]:
        """Dispatch :meth:`_fill_impl`, spanned when tracing is on."""
        gen = self._fill_impl(path, index, entry, prefetch=prefetch)
        tracer = self._engine.tracer
        if tracer is None:
            return gen
        op = (
            "promote_chunk"
            if self._promotable((path, index), entry)
            else "fetch_chunk"
        )
        return tracer.wrap(
            "fuse", op, gen,
            path=path, index=index, prefetch=prefetch,
        )

    def _fill_impl(
        self, path: str, index: int, entry: _Entry, *, prefetch: bool = False
    ) -> Generator[Event, object, None]:
        l2 = self._l2
        from_l2 = False
        fill_start = self._engine.now
        entry.filling = Event(self._engine)
        try:
            # Mutual exclusion with write-backs (registered before this
            # wait so concurrent readers single-flight on us meanwhile).
            while entry.writeback is not None:
                yield entry.writeback
            req = self.daemon.acquire_now()
            if req is None:
                req = self.daemon.request()
                yield req
            try:
                if self._promotable((path, index), entry):
                    # Promote from the local tier: one local SSD read
                    # instead of the network+benefactor round trip.
                    data = yield from l2.promote((path, index))
                    from_l2 = True
                else:
                    data = yield from self.client.read_chunk(
                        path, index,
                        purpose="prefetch" if prefetch else "demand",
                    )
            finally:
                self.daemon.release(req)
        finally:
            event, entry.filling = entry.filling, None
            event.succeed(None)
        # Preserve bytes written before the fill (write-allocate case).
        nbytes = len(data)
        if type(data) is bytearray and nbytes == self.chunk_size:
            # The store handed us a full-size buffer: adopt it as the
            # entry payload instead of copying it once more.  When it is
            # a benefactor loan (the live stored payload still holds a
            # reference: refcount above local+argument), remember that —
            # the first write must copy before mutating.
            shared = sys.getrefcount(data) > 2
            if entry.dirty:
                if shared:
                    data = bytearray(data)
                    shared = False
                old = memoryview(entry.data)
                for start, stop in entry.dirty:
                    data[start:stop] = old[start:stop]
            entry.data = data
            entry.shared = shared
        elif entry.dirty:
            merged = bytearray(self.chunk_size)
            merged[:nbytes] = data
            old = memoryview(entry.data)
            for start, stop in entry.dirty:
                merged[start:stop] = old[start:stop]
            entry.data = merged
            entry.shared = False
        else:
            buf = bytearray(self.chunk_size)
            buf[:nbytes] = data
            entry.data = buf
            entry.shared = False
        entry.valid = True
        if from_l2:
            self.stats.l2_promote_bytes += nbytes
            counter = self._c_l2_promote
            if counter is not None:
                counter.total += nbytes
                counter.count += 1
        else:
            self.stats.fetched_bytes += nbytes
            if prefetch:
                self.stats.prefetched_bytes += nbytes
            counter = self._fetch_counter
            if counter is None:
                counter = self._fetch_counter = self.metrics.counter(
                    "fuse.fetch.bytes"
                )
            counter.total += nbytes
            counter.count += 1
        if prefetch:
            entry.prefetched = True
        else:
            elapsed = self._engine.now - fill_start
            if from_l2:
                self.stats.l2_fills += 1
                self.stats.l2_fill_seconds += elapsed
            else:
                self.stats.store_fills += 1
                self.stats.store_fill_seconds += elapsed

    def _hit(self, key: tuple[str, int], entry: _Entry) -> None:
        """Bookkeeping for a resident entry taken on the no-yield fast
        path: identical to what :meth:`_load` does for a clean hit."""
        self._entries.move_to_end(key)
        self._tick += 1
        entry.lru = self._tick
        entry.pins += 1
        if self._policy is not None:
            self._policy.record_hit(key)
        self.stats.hits += 1
        counter = self._hits_counter
        if counter is None:
            counter = self._hits_counter = self.metrics.counter(
                "fuse.cache.hits"
            )
        counter.total += 1.0
        counter.count += 1
        if entry.prefetched:
            entry.prefetched = False
            self.stats.prefetch_hits += 1
            counter = self._c_pf_useful
            if counter is not None:
                counter.total += 1.0
                counter.count += 1
        counter = self._c_l1_hits
        if counter is not None:
            counter.total += 1.0
            counter.count += 1

    # ------------------------------------------------------------------
    # Public read/write (byte ranges within one chunk)
    # ------------------------------------------------------------------
    def read(
        self, path: str, index: int, offset: int, length: int
    ) -> Generator[Event, object, bytes]:
        """Read bytes from chunk ``index`` of ``path`` (fetch on miss)."""
        self._check(offset, length)
        key = (path, index)
        entry = self._entries.get(key)
        if entry is not None and entry.valid:
            # Fast path: resident and filled.  _load would not have
            # yielded either; skip the generator round trip.
            self._hit(key, entry)
        else:
            entry = yield from self._load(path, index, fetch=True)
        try:
            counter = self._read_counter
            if counter is None:
                counter = self._read_counter = self.metrics.counter(
                    "fuse.read.bytes"
                )
            counter.total += length
            counter.count += 1
            if self.readahead_chunks:
                self._maybe_readahead(path, index)
            elif self._prefetcher is not None:
                self._issue_prefetches(path, index)
            # Serving from the cache is still a DRAM copy, not free.
            # Inlined StorageDevice.access (DRAM has no _pre_access hook;
            # event-for-event identical, one generator hop less).
            dram = self._dram
            req = dram._acquire_now()
            if req is None:
                req = dram._acquire()
                yield req
            try:
                bytes_counter, time_counter, time_fn = dram._read_stats
                duration = time_fn(length)
                bytes_counter.total += length
                bytes_counter.count += 1
                time_counter.total += duration
                time_counter.count += 1
                yield self._engine.timeout(duration)
            finally:
                dram._release(req)
            return bytes(memoryview(entry.data)[offset : offset + length])
        finally:
            entry.pins -= 1

    def read_into(
        self,
        path: str,
        index: int,
        offset: int,
        length: int,
        out: bytearray | memoryview,
        out_offset: int = 0,
    ) -> Generator[Event, object, int]:
        """Read bytes from chunk ``index`` directly into ``out``.

        Event-for-event identical to :meth:`read`, but the payload lands
        in the caller's buffer at ``out_offset`` instead of materializing
        an intermediate ``bytes`` — the page cache faults whole runs of
        pages through this without one copy per page.
        """
        self._check(offset, length)
        key = (path, index)
        entry = self._entries.get(key)
        if entry is not None and entry.valid:
            self._hit(key, entry)
        else:
            entry = yield from self._load(path, index, fetch=True)
        try:
            counter = self._read_counter
            if counter is None:
                counter = self._read_counter = self.metrics.counter(
                    "fuse.read.bytes"
                )
            counter.total += length
            counter.count += 1
            if self.readahead_chunks:
                self._maybe_readahead(path, index)
            elif self._prefetcher is not None:
                self._issue_prefetches(path, index)
            # Inlined StorageDevice.access (event-for-event identical):
            # the page cache resumes through this frame for every page
            # run it faults, so the extra generator hop is worth skipping.
            dram = self._dram
            req = dram._acquire_now()
            if req is None:
                req = dram._acquire()
                yield req
            try:
                bytes_counter, time_counter, time_fn = dram._read_stats
                duration = time_fn(length)
                bytes_counter.total += length
                bytes_counter.count += 1
                time_counter.total += duration
                time_counter.count += 1
                yield self._engine.timeout(duration)
            finally:
                dram._release(req)
            # Copy after the DRAM wait, like read(): a write landing
            # while we waited must be visible in the returned bytes.
            out[out_offset : out_offset + length] = memoryview(entry.data)[
                offset : offset + length
            ]
            return length
        finally:
            entry.pins -= 1

    def _maybe_readahead(self, path: str, index: int) -> None:
        # Asynchronous: prefetches run as their own simulation
        # processes so the demand read never waits on them.
        nchunks = -(-self.client.file_size(path) // self.chunk_size)
        for ahead in range(1, self.readahead_chunks + 1):
            nxt = index + ahead
            if (
                nxt >= nchunks
                or (path, nxt) in self._entries
                or (path, nxt) in self._inflight
            ):
                break
            self._engine.process(self._prefetch(path, nxt))

    def _issue_prefetches(self, path: str, index: int) -> None:
        """Adaptive read-ahead: ask the pattern detector what to pull.

        Asynchronous like :meth:`_maybe_readahead`; the detector already
        tracks its own frontier, so chunks it plans are issued at most
        once per run (residency/in-flight checks cover re-detection
        after a run reset).
        """
        targets = self._prefetcher.plan(path, index)
        if not targets:
            return
        nchunks = -(-self.client.file_size(path) // self.chunk_size)
        for nxt in targets:
            if (
                nxt < 0
                or nxt >= nchunks
                or (path, nxt) in self._entries
                or (path, nxt) in self._inflight
            ):
                continue
            self._engine.process(self._prefetch(path, nxt))

    def _prefetch(self, path: str, index: int) -> Generator[Event, object, None]:
        """Background read-ahead of one chunk (failures are harmless —
        the file may be unlinked while the prefetch is in flight)."""
        try:
            entry = yield from self._load(
                path, index, fetch=True, count_stats=False, prefetch=True
            )
            entry.pins -= 1
            self.stats.prefetches += 1
            self.metrics.add("fuse.cache.prefetches")
            counter = self._c_pf_issued
            if counter is not None:
                counter.total += 1.0
                counter.count += 1
        except Exception:  # noqa: BLE001 - prefetch is best-effort
            pass

    def write(
        self, path: str, index: int, offset: int, data: bytes
    ) -> Generator[Event, object, None]:
        """Write bytes into chunk ``index`` of ``path``.

        A write that does not cover whole pages of a not-yet-cached chunk
        triggers a read-modify-write fetch, exactly as the paper describes
        ("the corresponding chunk ... is read from the benefactor to the
        FUSE client's cache in case of a miss").
        """
        length = len(data)
        self._check(offset, length)
        page_size = self.page_size
        covers_whole_pages = not (
            offset % page_size or (offset + length) % page_size
        )
        key = (path, index)
        entry = self._entries.get(key)
        if entry is not None and (covers_whole_pages or entry.valid):
            self._hit(key, entry)
        else:
            entry = yield from self._load(path, index, fetch=not covers_whole_pages)
        try:
            buf = entry.data
            if buf is None:
                buf = entry.data = bytearray(self.chunk_size)
            elif entry.shared:
                # Unshare a fetch loan before the first mutation.
                buf = entry.data = bytearray(buf)
                entry.shared = False
            buf[offset : offset + length] = data
            entry.dirty.add(offset, offset + length)
            if self._l2 is not None:
                stale = entry.l2_stale
                if stale is None:
                    stale = entry.l2_stale = IntervalSet()
                stale.add(offset, offset + length)
            counter = self._write_counter
            if counter is None:
                counter = self._write_counter = self.metrics.counter(
                    "fuse.write.bytes"
                )
            counter.total += length
            counter.count += 1
            # Inlined StorageDevice.access (DRAM has no _pre_access hook;
            # event-for-event identical, one generator hop less).
            dram = self._dram
            req = dram._acquire_now()
            if req is None:
                req = dram._acquire()
                yield req
            try:
                bytes_counter, time_counter, time_fn = dram._write_stats
                duration = time_fn(length)
                bytes_counter.total += length
                bytes_counter.count += 1
                time_counter.total += duration
                time_counter.count += 1
                yield self._engine.timeout(duration)
            finally:
                dram._release(req)
        finally:
            entry.pins -= 1

    def write_ranges(
        self,
        path: str,
        index: int,
        ranges: Iterable[tuple[int, bytes]],
        *,
        pre_range_delay: float | None = None,
    ) -> Generator[Event, object, None]:
        """Write several byte ranges into chunk ``index`` in one call.

        Event-for-event equivalent to one :meth:`write` per range; when
        ``pre_range_delay`` is given, that timeout is charged before each
        range, so a batched flush replays its caller's per-page
        [overhead][write] sequence exactly.  The entry is re-looked-up
        per range (and unpinned between ranges), so eviction pressure
        from concurrent ranks interleaves just as it would with separate
        write() calls.
        """
        engine = self._engine
        dram = self._dram
        entries = self._entries
        page_size = self.page_size
        key = (path, index)
        for offset, data in ranges:
            length = len(data)
            self._check(offset, length)
            if pre_range_delay is not None:
                yield engine.timeout(pre_range_delay)
            covers_whole_pages = (
                offset % page_size == 0 and (offset + length) % page_size == 0
            )
            entry = entries.get(key)
            if entry is not None and (covers_whole_pages or entry.valid):
                self._hit(key, entry)
            else:
                entry = yield from self._load(
                    path, index, fetch=not covers_whole_pages
                )
            try:
                buf = entry.data
                if buf is None:
                    buf = entry.data = bytearray(self.chunk_size)
                elif entry.shared:
                    # Unshare a fetch loan before the first mutation.
                    buf = entry.data = bytearray(buf)
                    entry.shared = False
                buf[offset : offset + length] = data
                entry.dirty.add(offset, offset + length)
                if self._l2 is not None:
                    stale = entry.l2_stale
                    if stale is None:
                        stale = entry.l2_stale = IntervalSet()
                    stale.add(offset, offset + length)
                counter = self._write_counter
                if counter is None:
                    counter = self._write_counter = self.metrics.counter(
                        "fuse.write.bytes"
                    )
                counter.total += length
                counter.count += 1
                # Inlined StorageDevice.access (DRAM has no _pre_access
                # hook; event-for-event identical, one hop less).
                req = dram._acquire_now()
                if req is None:
                    req = dram._acquire()
                    yield req
                try:
                    bytes_counter, time_counter, time_fn = dram._write_stats
                    duration = time_fn(length)
                    bytes_counter.total += length
                    bytes_counter.count += 1
                    time_counter.total += duration
                    time_counter.count += 1
                    yield engine.timeout(duration)
                finally:
                    dram._release(req)
            finally:
                entry.pins -= 1

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.chunk_size:
            raise FuseError(
                f"access [{offset}, {offset + length}) outside chunk of "
                f"{self.chunk_size}"
            )

    # ------------------------------------------------------------------
    # Flush / invalidate
    # ------------------------------------------------------------------
    def drain_path(self, path: str) -> Generator[Event, object, None]:
        """Wait until no eviction write-back for ``path`` is in flight."""
        while True:
            bucket = self._inflight_by_path.get(path)
            if not bucket:
                return
            yield next(iter(bucket.values()))

    def flush_path(self, path: str) -> Generator[Event, object, None]:
        """Write back all dirty chunks of ``path`` (fsync)."""
        yield from self.drain_path(path)
        bucket = self._by_path.get(path)
        if bucket:
            entries = self._entries
            # Snapshot in LRU order (stamp order == dict order).
            for index in sorted(bucket, key=lambda i: entries[(path, i)].lru):
                entry = entries.get((path, index))
                if entry is not None:  # may be evicted while we flush others
                    yield from self._writeback((path, index), entry)
        yield from self.drain_path(path)

    def flush_all(self) -> Generator[Event, object, None]:
        """Write back every dirty chunk (global fsync / teardown barrier).

        Like :meth:`flush_path`, waits out in-flight eviction write-backs
        on both sides of the sweep — returning while an eviction is still
        shipping dirty pages would mean "flushed" data not yet durable.
        """
        inflight = self._inflight
        while inflight:
            yield next(iter(inflight.values()))
        for key in list(self._entries):
            entry = self._entries.get(key)
            if entry is not None:
                yield from self._writeback(key, entry)
        while inflight:
            yield next(iter(inflight.values()))

    def invalidate_path(self, path: str) -> None:
        """Drop cached chunks of ``path`` without writing back (unlink)."""
        bucket = self._by_path.pop(path, None)
        if bucket:
            entries = self._entries
            policy = self._policy
            for index in bucket:
                del entries[(path, index)]
                if policy is not None:
                    policy.record_remove((path, index))
        if self._l2 is not None:
            self._l2.drop_path(path)
            self._inval_gen[path] = self._inval_gen.get(path, 0) + 1
        if self._prefetcher is not None:
            self._prefetcher.forget(path)
