"""FUSE-like user-space file system over the aggregate NVM store.

Each compute node mounts the store (``/mnt/aggregatenvm``) through a
:class:`FuseMount` that exposes POSIX-flavoured operations (open / pread /
pwrite / fallocate / fsync / unlink) and owns the node's chunk cache — the
layer that bridges the granularity gap between byte-level memory accesses
and 256 KB chunk transfers (paper §III-D):

- reads fetch whole chunks and keep them for reuse (read-ahead effect);
- writes are tracked at 4 KB page granularity, and evictions send *only
  dirty pages* to benefactors (the paper's Table VII write optimization).
"""

from repro.fusefs.flags import OpenFlags
from repro.fusefs.cache import CacheStats, ChunkCache
from repro.fusefs.mount import FuseMount

__all__ = ["CacheStats", "ChunkCache", "FuseMount", "OpenFlags"]
