"""Per-file access-pattern detection for chunk read-ahead.

Replaces the fixed ``readahead_chunks`` window with a detector that
earns its prefetch depth: each file tracks the delta between successive
demand-read chunk indices, and only a *run* of repeats — sequential
(delta +1/-1) or strided (any constant delta) — triggers read-ahead.

Ramp rules:

- a run must reach ``min_run`` accesses before the first prefetch
  (confidence gate: two points make a coincidence, three make a line);
- depth then doubles per confirming access — 1, 2, 4, ... up to
  ``max_depth`` — so a long sequential scan quickly keeps ``max_depth``
  chunks in flight while a short one wastes almost nothing;
- any delta change resets the run, which is the automatic shut-off:
  random access (Table VII's randwrite) never completes a run, so it
  issues *zero* prefetches instead of polluting the cache and the
  daemon's fetch queue.

The ``frontier`` per run marks the furthest chunk already scheduled, so
overlapping plans never re-issue the same chunk.  The planner is pure
bookkeeping — the cache decides what is actually issued (bounds,
residency, in-flight checks) and runs the prefetches as background
simulation processes.
"""

from __future__ import annotations

from repro.errors import FuseError


class _FileState:
    """Run detection state for one file."""

    __slots__ = ("last", "stride", "run", "frontier")

    def __init__(self, index: int) -> None:
        self.last = index
        self.stride = 0
        self.run = 1
        # Furthest chunk index already scheduled for the current run.
        self.frontier = index


class PatternPrefetcher:
    """Sequential/strided run detector with confidence-ramped depth."""

    def __init__(self, *, max_depth: int = 8, min_run: int = 3) -> None:
        if max_depth < 1:
            raise FuseError(f"max_depth must be >= 1, got {max_depth}")
        if min_run < 2:
            raise FuseError(f"min_run must be >= 2, got {min_run}")
        self.max_depth = max_depth
        self.min_run = min_run
        self._files: dict[str, _FileState] = {}

    def plan(self, path: str, index: int) -> list[int]:
        """Chunk indices to prefetch after a demand access of ``index``.

        Returns an empty list until a run is confirmed; afterwards, the
        next ``depth`` multiples of the stride past the current frontier
        (possibly out of file bounds — the caller filters).
        """
        state = self._files.get(path)
        if state is None:
            self._files[path] = _FileState(index)
            return []
        delta = index - state.last
        if delta == 0:
            # Re-access of the same chunk: neither confirms nor breaks
            # the run (intra-chunk page faults land here).
            return []
        state.last = index
        if delta != state.stride:
            # New candidate stride: restart the run at this access.
            state.stride = delta
            state.run = 1
            state.frontier = index
            return []
        state.run += 1
        if state.run < self.min_run:
            return []
        # Confidence ramp: 1, 2, 4, ... chunks ahead, capped.
        depth = min(self.max_depth, 1 << min(state.run - self.min_run, 30))
        stride = state.stride
        # Never schedule past the ramp window around the current access —
        # the frontier only advances as demand confirms the run.
        limit = index + stride * depth
        targets: list[int] = []
        while len(targets) < depth:
            nxt = state.frontier + stride
            if stride > 0 and nxt > limit:
                break
            if stride < 0 and nxt < limit:
                break
            state.frontier = nxt
            targets.append(nxt)
        return targets

    def forget(self, path: str) -> None:
        """Drop detection state for ``path`` (unlink/invalidate)."""
        self._files.pop(path, None)

    def state(self, path: str) -> dict[str, int] | None:
        """Introspection for tests/metrics: the run state of ``path``."""
        st = self._files.get(path)
        if st is None:
            return None
        return {
            "last": st.last,
            "stride": st.stride,
            "run": st.run,
            "frontier": st.frontier,
        }
