"""MPI parallel sort: hybrid DRAM+NVM one-pass vs DRAM-only two-pass
(paper §IV-B.3, Table VI).

The dataset (float64 keys, staged on the PFS) exceeds the aggregate DRAM
budget.  Two strategies:

- ``hybrid`` — NVMalloc extends memory: each rank's slice lives partly in
  DRAM, partly on the NVM store; one sample-sort pass (partition-exchange
  + local external sort with NVM-resident runs) produces the output.
- ``dram-2pass`` — the paper's forced fallback without NVMalloc: the data
  is split in two halves, each sample-sorted entirely in DRAM and written
  to the PFS as an interim run; a final pass merges the two runs through
  the PFS.  The extra PFS round trips are exactly what costs the 10x.

Both modes move real keys end to end; ``verify=True`` checks the PFS
output is the sorted permutation of the input.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field

import numpy as np

from repro.core.variable import Array, DRAMArray, NVMArray
from repro.errors import NVMallocError
from repro.parallel.comm import RankContext
from repro.parallel.job import Job
from repro.pfs.pfs import ParallelFileSystem
from repro.sim.events import Event

#: Flops charged per element per comparison level (sorting cost model).
SORT_FLOPS_PER_CMP = 4.0

INPUT = "sort/input"
OUTPUT = "sort/output"
RUN = "sort/run{half}"


@dataclass(frozen=True)
class SortConfig:
    """One parallel-sort run."""

    total_elements: int
    mode: str = "hybrid"  # "hybrid" | "dram-2pass"
    dram_elements_per_rank: int = 1 << 14  # DRAM budget for sort data
    samples_per_rank: int = 32
    block_elements: int = 1 << 13  # streaming window
    verify: bool = True
    seed: int = 7

    def __post_init__(self) -> None:
        if self.mode not in ("hybrid", "dram-2pass"):
            raise NVMallocError(f"bad sort mode {self.mode!r}")
        if self.total_elements <= 0:
            raise NVMallocError("need a positive element count")


@dataclass
class SortResult:
    """Outcome of one sort run."""

    config: SortConfig
    job_label: str
    elapsed: float = 0.0
    passes: int = 1
    phase_times: dict[str, float] = field(default_factory=dict)
    verified: bool = False


# ----------------------------------------------------------------------
# Storage helpers
# ----------------------------------------------------------------------

class _SliceStore:
    """A rank's element storage: DRAM up to budget, NVM spill beyond."""

    def __init__(self) -> None:
        self.parts: list[Array] = []
        self.counts: list[int] = []

    @property
    def total(self) -> int:
        """Total elements held across parts."""
        return sum(self.counts)

    def locate(self, index: int) -> tuple[Array, int]:
        """Map a store-wide index to (part, index-within-part)."""
        for part, count in zip(self.parts, self.counts):
            if index < count:
                return part, index
            index -= count
        raise IndexError(index)

    def read(self, start: int, stop: int) -> Generator[Event, object, np.ndarray]:
        """Elements ``[start, stop)`` across parts."""
        out: list[np.ndarray] = []
        cursor = start
        while cursor < stop:
            part, inner = self.locate(cursor)
            take = min(stop - cursor, self._part_count(part) - inner)
            out.append((yield from part.read_slice(inner, inner + take)))
            cursor += take
        return np.concatenate(out) if out else np.empty(0, dtype=np.float64)

    def write(self, start: int, values: np.ndarray) -> Generator[Event, object, None]:
        """Store contiguous elements beginning at ``start``."""
        cursor = start
        offset = 0
        while offset < len(values):
            part, inner = self.locate(cursor)
            take = min(len(values) - offset, self._part_count(part) - inner)
            yield from part.write_slice(inner, values[offset : offset + take])
            cursor += take
            offset += take

    def _part_count(self, part: Array) -> int:
        return self.counts[self.parts.index(part)]

    def free(self, ctx: RankContext) -> Generator[Event, object, None]:
        """Release every part (DRAM budget and NVM allocations)."""
        for part in self.parts:
            if isinstance(part, NVMArray):
                assert ctx.nvmalloc is not None
                yield from ctx.nvmalloc.ssdfree(part.variable)
            elif isinstance(part, DRAMArray):
                part.free()
        self.parts.clear()
        self.counts.clear()


def _make_store(
    ctx: RankContext, elements: int, dram_budget: int, *, tag: str
) -> Generator[Event, object, _SliceStore]:
    """Allocate storage for ``elements`` keys: DRAM first, NVM spill."""
    store = _SliceStore()
    dram_part = min(elements, dram_budget)
    if dram_part:
        store.parts.append(ctx.dram_array((dram_part,), np.float64))
        store.counts.append(dram_part)
    spill = elements - dram_part
    if spill:
        if ctx.nvmalloc is None:
            raise NVMallocError(
                "sort slice exceeds the DRAM budget and no NVM store is "
                "available (use mode='dram-2pass')"
            )
        nvm = yield from ctx.nvmalloc.ssdmalloc_array(
            (spill,), np.float64, owner=f"sort.{tag}.r{ctx.rank}"
        )
        store.parts.append(nvm)
        store.counts.append(spill)
    return store


# ----------------------------------------------------------------------
# Sample-sort building blocks
# ----------------------------------------------------------------------

def _sample_splitters(
    ctx: RankContext, store: _SliceStore, config: SortConfig
) -> Generator[Event, object, np.ndarray]:
    """Regular-sample splitters: P-1 values bounding each rank's range."""
    count = store.total
    if count:
        step = max(1, count // config.samples_per_rank)
        idxs = list(range(0, count, step))[: config.samples_per_rank]
        samples = np.empty(len(idxs), dtype=np.float64)
        for i, idx in enumerate(idxs):
            part, inner = store.locate(idx)
            samples[i] = yield from part.get(inner)
    else:
        samples = np.empty(0, dtype=np.float64)
    gathered = yield from ctx.gather(samples, root=0)
    if ctx.rank == 0:
        assert gathered is not None
        merged = np.sort(np.concatenate([np.asarray(g) for g in gathered]))
        positions = [
            (len(merged) * (r + 1)) // ctx.size for r in range(ctx.size - 1)
        ]
        splitters = merged[positions] if len(merged) else np.empty(0)
    else:
        splitters = None
    result = yield from ctx.bcast(splitters, root=0)
    return np.asarray(result)


def _exchange(
    ctx: RankContext,
    store: _SliceStore,
    splitters: np.ndarray,
    config: SortConfig,
) -> Generator[Event, object, list[np.ndarray]]:
    """Partition local keys by splitters and swap with every rank.

    Returns this rank's received (unsorted) fragments.
    """
    size = ctx.size
    buckets: list[list[np.ndarray]] = [[] for _ in range(size)]
    count = store.total
    for start in range(0, count, config.block_elements):
        stop = min(start + config.block_elements, count)
        block = yield from store.read(start, stop)
        yield from ctx.compute(SORT_FLOPS_PER_CMP * len(block) * max(
            1, int(np.log2(max(size, 2)))
        ))
        dest = np.searchsorted(splitters, block, side="right")
        # One stable argsort groups the block by destination rank; each
        # bucket gets a view into ``grouped`` holding exactly the
        # elements (in exactly the order) that per-rank boolean masks
        # would have copied out — one materialized array instead of
        # ``size`` fancy-index copies per block.
        order = np.argsort(dest, kind="stable")
        grouped = block[order]
        bounds = np.searchsorted(dest[order], np.arange(size + 1))
        for r in range(size):
            lo, hi = bounds[r], bounds[r + 1]
            if hi > lo:
                buckets[r].append(grouped[lo:hi])
    fragments: list[np.ndarray] = []
    mine = (
        np.concatenate(buckets[ctx.rank]) if buckets[ctx.rank]
        else np.empty(0, dtype=np.float64)
    )
    fragments.append(mine)
    for r in range(size):
        if r == ctx.rank:
            continue
        payload = (
            np.concatenate(buckets[r]) if buckets[r]
            else np.empty(0, dtype=np.float64)
        )
        yield from ctx.send(payload, dest=r, tag=60)
    for r in range(size):
        if r == ctx.rank:
            continue
        incoming = yield from ctx.recv(source=r, tag=60)
        fragments.append(np.asarray(incoming))
    return fragments


def _external_sort(
    ctx: RankContext,
    fragments: list[np.ndarray],
    config: SortConfig,
    *,
    allow_nvm: bool,
) -> Generator[Event, object, "_SortedRuns"]:
    """Sort received fragments into runs (DRAM-windowed, NVM-spilled)."""
    total = int(sum(len(f) for f in fragments))
    window = max(config.dram_elements_per_rank, 1)
    store = yield from _make_store(
        ctx,
        max(total, 1),
        config.dram_elements_per_rank if allow_nvm else total,
        tag="runs",
    )
    # Concatenate fragments into the store, window-sorting as we go.
    flat = (
        np.concatenate(fragments) if fragments
        else np.empty(0, dtype=np.float64)
    )
    runs: list[tuple[int, int]] = []
    for start in range(0, total, window):
        stop = min(start + window, total)
        piece = np.sort(flat[start:stop])
        levels = max(1, int(np.log2(max(stop - start, 2))))
        yield from ctx.compute(SORT_FLOPS_PER_CMP * (stop - start) * levels)
        yield from store.write(start, piece)
        runs.append((start, stop))
    if total == 0:
        runs = []
    return _SortedRuns(store=store, runs=runs, total=total)


@dataclass
class _SortedRuns:
    """Locally sorted runs living in a rank's slice store."""

    store: _SliceStore
    runs: list[tuple[int, int]]
    total: int

    def merged_stream(
        self, ctx: RankContext, config: SortConfig
    ) -> Generator[Event, object, np.ndarray]:
        """K-way merge all runs into one sorted array.

        Run blocks are read through the storage stack (so DRAM/NVM time
        and byte flows are charged faithfully); the merge itself is
        charged as ``n log k`` comparisons and executed vectorized.
        """
        if not self.runs:
            return np.empty(0, dtype=np.float64)
        if len(self.runs) == 1:
            start, stop = self.runs[0]
            return (yield from self.store.read(start, stop))
        block = config.block_elements
        pieces: list[np.ndarray] = []
        for start, stop in self.runs:
            pos = start
            while pos < stop:
                take = min(block, stop - pos)
                pieces.append((yield from self.store.read(pos, pos + take)))
                pos += take
        k = len(self.runs)
        yield from ctx.compute(
            SORT_FLOPS_PER_CMP * self.total * max(1, int(np.log2(k)))
        )
        return np.sort(np.concatenate(pieces), kind="mergesort")


# ----------------------------------------------------------------------
# The two strategies
# ----------------------------------------------------------------------

def _sort_dataset_pass(
    ctx: RankContext,
    pfs: ParallelFileSystem,
    config: SortConfig,
    *,
    segments: list[tuple[str, int, int]],
    output_name: str,
    allow_nvm: bool,
) -> Generator[Event, object, None]:
    """One full sample-sort pass over the concatenation of ``segments``.

    ``segments`` is a list of ``(pfs_file, element_offset, element_count)``;
    the global key space is their concatenation.  The final merge of the
    dram-2pass strategy reuses this machinery with the two interim runs as
    segments — the "significant data exchange ... with the PFS used to
    share the interim sorted data" of §IV-B.3.
    """
    size = ctx.size
    elements = sum(count for _, _, count in segments)
    per_rank = elements // size
    extra = elements % size
    my_count = per_rank + (1 if ctx.rank < extra else 0)
    my_global = ctx.rank * per_rank + min(ctx.rank, extra)
    # Load my slice (possibly spanning a segment boundary) from the PFS.
    store = yield from _make_store(
        ctx,
        max(my_count, 1),
        config.dram_elements_per_rank if allow_nvm else my_count,
        tag="load",
    )
    loaded = 0
    cursor = 0  # global element index at the start of each segment
    for seg_name, seg_off, seg_count in segments:
        lo = max(my_global, cursor)
        hi = min(my_global + my_count, cursor + seg_count)
        pos = lo
        while pos < hi:
            stop = min(pos + config.block_elements, hi)
            raw = yield from pfs.read(
                ctx.node.name,
                seg_name,
                (seg_off + pos - cursor) * 8,
                (stop - pos) * 8,
            )
            yield from store.write(loaded, np.frombuffer(raw, dtype=np.float64))
            loaded += stop - pos
            pos = stop
        cursor += seg_count
    store.counts[-1] -= store.total - my_count  # trim the 1-slot minimum
    if store.counts[-1] == 0 and len(store.counts) > 1:
        store.parts.pop()
        store.counts.pop()

    splitters = yield from _sample_splitters(ctx, store, config)
    fragments = yield from _exchange(ctx, store, splitters, config)
    yield from store.free(ctx)
    runs = yield from _external_sort(ctx, fragments, config, allow_nvm=allow_nvm)
    merged = yield from runs.merged_stream(ctx, config)
    yield from runs.store.free(ctx)

    # Write my sorted range to the output file at the right offset:
    # prefix-sum of per-rank counts via allgather.
    counts = yield from ctx.allgather(int(len(merged)))
    offset_elems = int(sum(counts[: ctx.rank]))
    if ctx.rank == 0 and not pfs.exists(output_name):
        pfs.create(output_name, elements * 8)
    yield from ctx.barrier()
    for start in range(0, len(merged), config.block_elements):
        stop = min(start + config.block_elements, len(merged))
        yield from pfs.write(
            ctx.node.name,
            output_name,
            (offset_elems + start) * 8,
            merged[start:stop].tobytes(),
        )
    yield from ctx.barrier()


# ----------------------------------------------------------------------
# Per-rank program and driver
# ----------------------------------------------------------------------

def _sort_rank(
    ctx: RankContext, config: SortConfig, pfs: ParallelFileSystem
) -> Generator[Event, object, dict[str, float]]:
    phase_times: dict[str, float] = {}
    mark = ctx.engine.now

    def phase_end(name: str) -> None:
        nonlocal mark
        now = ctx.engine.now
        phase_times[name] = now - mark
        mark = now

    total = config.total_elements
    if config.mode == "hybrid":
        # NVMalloc extends memory: one pass over the full dataset.
        yield from _sort_dataset_pass(
            ctx, pfs, config,
            segments=[(INPUT, 0, total)],
            output_name=OUTPUT, allow_nvm=True,
        )
        phase_end("pass1")
    else:
        # DRAM-only: sort each half in memory, then a merge pass over the
        # two interim runs staged on the PFS.
        half = total // 2
        yield from _sort_dataset_pass(
            ctx, pfs, config,
            segments=[(INPUT, 0, half)],
            output_name=RUN.format(half=0), allow_nvm=False,
        )
        phase_end("pass1")
        yield from _sort_dataset_pass(
            ctx, pfs, config,
            segments=[(INPUT, half, total - half)],
            output_name=RUN.format(half=1), allow_nvm=False,
        )
        phase_end("pass2")
        yield from _sort_dataset_pass(
            ctx, pfs, config,
            segments=[
                (RUN.format(half=0), 0, half),
                (RUN.format(half=1), 0, total - half),
            ],
            output_name=OUTPUT, allow_nvm=False,
        )
        phase_end("merge")
    return phase_times


def run_quicksort(
    job: Job, pfs: ParallelFileSystem, config: SortConfig
) -> SortResult:
    """Stage the input, run the sort, verify the PFS output."""
    rng = np.random.default_rng(config.seed)
    data = rng.random(config.total_elements)
    for name in (INPUT, OUTPUT, RUN.format(half=0), RUN.format(half=1)):
        if pfs.exists(name):
            pfs.unlink(name)
    pfs.put_initial(INPUT, data.tobytes())

    start = job.engine.now
    _, results = job.run(lambda ctx: _sort_rank(ctx, config, pfs))
    elapsed = job.engine.now - start

    result = SortResult(
        config=config,
        job_label=job.config.label(),
        elapsed=elapsed,
        passes=1 if config.mode == "hybrid" else 2,
    )
    for phase in results[0]:  # type: ignore[attr-defined]
        result.phase_times[phase] = max(
            r[phase] for r in results  # type: ignore[index]
        )
    if config.verify:
        out = np.frombuffer(pfs.read_raw(OUTPUT), dtype=np.float64)
        result.verified = bool(
            len(out) == len(data) and np.array_equal(out, np.sort(data))
        )
    else:
        result.verified = True
    return result
