"""Ring-decomposed matrix multiplication: the paper's contrast case.

§IV-B.2 notes the replicated-B algorithm "has higher memory consumption
(compared to alternatives such as decomposing both A and B)" — and §I
that DRAM scarcity forces applications to "run wider ... thereby
incurring increased communication costs."  This module implements that
alternative: A is row-striped, B is column-striped, and the B blocks
rotate around a ring of ranks, so no process ever holds more than
``3 n²/P`` elements — at the price of circulating the whole of B through
the network once per multiply.

Comparing it with the replicated runs completes the paper's argument:
NVMalloc keeps the *low-communication replicated algorithm* feasible on
all cores without the decomposed variant's network bill.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field

import numpy as np

from repro.errors import NVMallocError
from repro.parallel.comm import RankContext
from repro.parallel.job import Job
from repro.pfs.pfs import ParallelFileSystem
from repro.sim.events import Event
from repro.workloads.matmul import MatmulConfig, _input_matrices

STAGES = ("input_a", "input_b", "compute", "collect_c")


@dataclass
class DecomposedResult:
    """Stage breakdown of one decomposed MM run."""

    config: MatmulConfig
    job_label: str
    stage_times: dict[str, float] = field(default_factory=dict)
    network_bytes: float = 0.0
    peak_rank_bytes: int = 0
    verified: bool = False

    @property
    def total(self) -> float:
        """Sum of all stage times."""
        return sum(self.stage_times.values())

    @property
    def compute_time(self) -> float:
        """Duration of the ring-compute stage."""
        return self.stage_times.get("compute", 0.0)


def _decomposed_rank(
    ctx: RankContext,
    config: MatmulConfig,
    pfs: ParallelFileSystem,
) -> Generator[Event, object, dict[str, object]]:
    n = config.n
    size = ctx.size
    if n % size:
        raise NVMallocError(f"ranks {size} must divide n {n}")
    rows = n // size
    master = 0
    stage_times: dict[str, float] = {}
    mark = ctx.engine.now

    def stage_end(name: str) -> None:
        nonlocal mark
        now = ctx.engine.now
        stage_times[name] = now - mark
        mark = now

    # Memory: A rows + one B column-block + C rows, all in DRAM.
    per_rank_bytes = 3 * rows * n * 8
    ctx.node.dram.allocate(per_rank_bytes)

    # -- Stage 1: scatter A row blocks ----------------------------------
    if ctx.rank == master:
        a_local: np.ndarray | None = None
        for dest in range(size):
            raw = yield from pfs.read(
                ctx.node.name, "mm/A", dest * rows * n * 8, rows * n * 8
            )
            block = np.frombuffer(raw, dtype=np.float64).reshape(rows, n)
            if dest == master:
                a_local = block
            else:
                yield from ctx.send(block, dest=dest, tag=70)
    else:
        a_local = yield from ctx.recv(source=master, tag=70)
    assert isinstance(a_local, np.ndarray)
    yield from ctx.barrier()
    stage_end("input_a")

    # -- Stage 2: scatter B column blocks -------------------------------
    # B is row-major on the PFS: the master streams contiguous row-tiles
    # (one PFS read each), slices the column blocks in memory, and
    # scatters the slabs — so its transient footprint stays at one tile.
    cols = rows  # square decomposition: n/P columns per rank
    tile_rows = max(1, config.tile)
    b_block = np.empty((n, cols), dtype=np.float64)
    if ctx.rank == master:
        for r0 in range(0, n, tile_rows):
            r1 = min(r0 + tile_rows, n)
            raw = yield from pfs.read(
                ctx.node.name, "mm/B", r0 * n * 8, (r1 - r0) * n * 8
            )
            slab = np.frombuffer(raw, dtype=np.float64).reshape(r1 - r0, n)
            for dest in range(size):
                piece = np.ascontiguousarray(
                    slab[:, dest * cols : (dest + 1) * cols]
                )
                if dest == master:
                    b_block[r0:r1] = piece
                else:
                    yield from ctx.send(piece, dest=dest, tag=71)
    else:
        for r0 in range(0, n, tile_rows):
            r1 = min(r0 + tile_rows, n)
            piece = yield from ctx.recv(source=master, tag=71)
            b_block[r0:r1] = np.asarray(piece)
    yield from ctx.barrier()
    stage_end("input_b")

    # -- Stage 3: ring compute -------------------------------------------
    # Step k: multiply my A rows with the block that started at rank
    # (rank + k) mod P, then pass it along the ring.
    c_local = np.zeros((rows, n), dtype=np.float64)
    right = (ctx.rank + 1) % size
    left = (ctx.rank - 1) % size
    current = b_block
    owner = ctx.rank
    for _step in range(size):
        c0 = owner * cols
        yield from ctx.compute(2.0 * rows * n * cols)
        c_local[:, c0 : c0 + cols] = a_local @ current
        if _step < size - 1:
            # Even ranks send first, odd ranks receive first: no deadlock
            # even if sends were synchronous.
            if ctx.rank % 2 == 0:
                yield from ctx.send(current, dest=left, tag=72)
                current = yield from ctx.recv(source=right, tag=72)
            else:
                incoming = yield from ctx.recv(source=right, tag=72)
                yield from ctx.send(current, dest=left, tag=72)
                current = incoming
            current = np.asarray(current)
            owner = (owner + 1) % size
    yield from ctx.barrier()
    stage_end("compute")

    # -- Stage 4: gather C -----------------------------------------------
    gathered = yield from ctx.gather(c_local, root=master)
    verified = True
    if ctx.rank == master:
        assert gathered is not None
        c_full = np.vstack([np.asarray(g) for g in gathered])
        if pfs.exists("mm/C"):
            pfs.unlink("mm/C")
        pfs.create("mm/C", n * n * 8)
        yield from pfs.write(ctx.node.name, "mm/C", 0, c_full.tobytes())
        if config.verify:
            a_true, b_true = _input_matrices(config)
            verified = bool(np.array_equal(c_full, a_true @ b_true))
    yield from ctx.barrier()
    stage_end("collect_c")

    ctx.node.dram.free(per_rank_bytes)
    return {
        "rank": ctx.rank,
        "stage_times": stage_times,
        "verified": verified,
        "peak_bytes": per_rank_bytes,
    }


def run_matmul_decomposed(
    job: Job, pfs: ParallelFileSystem, config: MatmulConfig
) -> DecomposedResult:
    """Stage inputs, run the ring algorithm, fold the results."""
    a_true, b_true = _input_matrices(config)
    for name in ("mm/A", "mm/B", "mm/C"):
        if pfs.exists(name):
            pfs.unlink(name)
    pfs.put_initial("mm/A", a_true.tobytes())
    pfs.put_initial("mm/B", b_true.tobytes())

    net_before = job.cluster.metrics.value("network.bytes")
    _, results = job.run(lambda ctx: _decomposed_rank(ctx, config, pfs))
    result = DecomposedResult(config=config, job_label=job.config.label())
    for stage in STAGES:
        result.stage_times[stage] = max(
            r["stage_times"][stage] for r in results  # type: ignore[index]
        )
    result.network_bytes = (
        job.cluster.metrics.value("network.bytes") - net_before
    )
    result.peak_rank_bytes = max(r["peak_bytes"] for r in results)  # type: ignore[index]
    result.verified = all(r["verified"] for r in results)  # type: ignore[index]
    return result
