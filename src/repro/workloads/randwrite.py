"""Random-write synthetic: the dirty-page write optimization (Table VII).

Issues byte-sized writes to uniformly random addresses within a large
NVM-resident region — the worst case for a chunk-granular store.  With the
optimization, cache evictions send only dirty 4 KB pages to benefactors;
without it, every eviction ships the whole 256 KB chunk.  The paper
measures 504 MB vs 19.3 GB reaching the SSD for 128 K writes into 2 GB.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

import numpy as np

from repro.errors import NVMallocError
from repro.parallel.comm import RankContext
from repro.parallel.job import Job
from repro.sim.events import Event


@dataclass(frozen=True)
class RandWriteConfig:
    """One random-write run."""

    region_bytes: int
    num_writes: int = 128 * 1024
    write_size: int = 1  # bytes per write ("byte-by-byte", §IV-B.4)
    seed: int = 11
    verify_samples: int = 64

    def __post_init__(self) -> None:
        if self.region_bytes <= 0 or self.num_writes <= 0 or self.write_size <= 0:
            raise NVMallocError("region, writes, and size must be positive")


@dataclass
class RandWriteResult:
    """Byte flows of one run (the Table VII columns)."""

    config: RandWriteConfig
    optimized: bool
    elapsed: float
    written_to_fuse: float  # page cache -> FUSE layer
    written_to_ssd: float  # FUSE -> benefactor SSDs
    verified: bool
    # End-of-run cache behaviour, summed over the job's nodes
    # (CacheStats / PageCacheStats).
    chunk_cache: object = None
    page_cache: object = None

    @property
    def amplification_to_ssd(self) -> float:
        """SSD bytes per application byte."""
        app = self.config.num_writes * self.config.write_size
        return self.written_to_ssd / app if app else 0.0


def _randwrite_rank(
    ctx: RankContext, config: RandWriteConfig
) -> Generator[Event, object, dict[str, object]]:
    assert ctx.nvmalloc is not None
    variable = yield from ctx.nvmalloc.ssdmalloc(
        config.region_bytes, owner=f"randwrite.r{ctx.rank}"
    )
    rng = np.random.default_rng(config.seed + ctx.rank)
    offsets = rng.integers(
        0, config.region_bytes - config.write_size + 1, size=config.num_writes
    )
    payload_pool = rng.integers(1, 256, size=config.num_writes, dtype=np.uint8)

    # Materialize plain-Python offsets/values once: numpy scalar boxing
    # per write is pure wall-clock overhead on this 100k-iteration loop.
    offset_list = offsets.tolist()
    value_bytes = payload_pool.tobytes()

    start = ctx.engine.now
    for i in range(config.num_writes):
        payload = value_bytes[i : i + 1] * config.write_size
        yield from variable.write(offset_list[i], payload)
    # Drain everything to the device so the flow accounting is complete.
    yield from variable.region.msync()
    yield from ctx.nvmalloc.mount.cache.flush_all()
    elapsed = ctx.engine.now - start

    # Verify the last write at a sample of addresses survived end to end.
    verified = True
    last_at = dict(zip(offset_list, payload_pool.tolist()))
    sample = list(last_at.items())[-config.verify_samples :]
    for offset, value in sample:
        got = yield from variable.read(offset, 1)
        # The winner is the latest write covering this byte; with
        # write_size == 1 that is exactly `value`.
        if config.write_size == 1 and got[0] != value:
            verified = False
    yield from ctx.nvmalloc.ssdfree(variable)
    return {"elapsed": elapsed, "verified": verified}


def run_randwrite(job: Job, config: RandWriteConfig, *, ranks: int = 1) -> RandWriteResult:
    """Run the synthetic on the job's first ``ranks`` ranks."""
    if ranks != 1:
        raise NVMallocError(
            "the paper's synthetic is single-client; run one rank"
        )
    metrics = job.cluster.metrics
    before_fuse = metrics.value("fuse.write.bytes")
    before_ssd = metrics.value("store.client.bytes_written")
    ctx = job.rank_context(0)
    proc = job.engine.process(_randwrite_rank(ctx, config))
    outcome = job.engine.run(proc)
    assert isinstance(outcome, dict)
    chunk_stats, page_stats = job.cache_stats()
    return RandWriteResult(
        config=config,
        optimized=job.config.dirty_page_writeback,
        elapsed=float(outcome["elapsed"]),
        written_to_fuse=metrics.value("fuse.write.bytes") - before_fuse,
        written_to_ssd=metrics.value("store.client.bytes_written") - before_ssd,
        verified=bool(outcome["verified"]),
        chunk_cache=chunk_stats,
        page_cache=page_stats,
    )
