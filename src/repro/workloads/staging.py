"""Output staging through the aggregate NVM store (paper §II, §III-E).

The store's original role (the authors' prior work, revisited in §III-E):
"checkpointing to such an intermediate device and draining to PFS in the
background is an extremely viable alternative and can help alleviate the
I/O bottleneck."  This workload runs an iterative application that emits
an output burst every timestep and compares two I/O strategies:

- **direct**: every burst is written straight to the parallel file
  system; compute stalls for the full PFS write;
- **staged**: bursts are written to the fast aggregate NVM store and
  drained to the PFS by a background process that overlaps the next
  compute phase; compute stalls only for the (much faster) NVM write.

Both strategies end with identical bytes on the PFS (verified).
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

import numpy as np

from repro.errors import NVMallocError
from repro.fusefs.flags import OpenFlags
from repro.parallel.comm import RankContext
from repro.parallel.job import Job
from repro.pfs.pfs import ParallelFileSystem
from repro.sim.events import Event
from repro.sim.process import Process
from repro.util.units import KiB


@dataclass(frozen=True)
class StagingConfig:
    """One staging-vs-direct run."""

    burst_bytes: int = 512 * KiB  # output per rank per timestep
    timesteps: int = 4
    compute_seconds: float = 0.05  # per timestep, per rank
    mode: str = "staged"  # "staged" | "direct"
    block_bytes: int = 256 * KiB
    verify: bool = True
    seed: int = 13

    def __post_init__(self) -> None:
        if self.mode not in ("staged", "direct"):
            raise NVMallocError(f"bad staging mode {self.mode!r}")
        if self.burst_bytes <= 0 or self.timesteps < 1:
            raise NVMallocError("degenerate configuration")


@dataclass
class StagingResult:
    """Outcome of one run."""

    config: StagingConfig
    job_label: str
    elapsed: float = 0.0  # app-visible wall time (until last drain lands)
    compute_stall: float = 0.0  # time the compute loop spent blocked on I/O
    verified: bool = False
    drained_bytes: float = 0.0


def _burst_payload(config: StagingConfig, rank: int, step: int) -> bytes:
    rng = np.random.default_rng(config.seed + rank * 1000 + step)
    return rng.integers(0, 256, size=config.burst_bytes, dtype=np.uint8).tobytes()


def _pfs_name(rank: int, step: int) -> str:
    return f"scratch/output/r{rank}.t{step}"


def _staging_rank(
    ctx: RankContext, config: StagingConfig, pfs: ParallelFileSystem
) -> Generator[Event, object, dict[str, float]]:
    engine = ctx.engine
    stall = 0.0
    drains: list[Process] = []

    def drain(step: int, path: str) -> Generator[Event, object, None]:
        """Background: copy one staged burst from the store to the PFS."""
        assert ctx.nvmalloc is not None
        mount = ctx.nvmalloc.mount
        fd = yield from mount.open(path, OpenFlags.O_RDONLY)
        pfs.create(_pfs_name(ctx.rank, step), config.burst_bytes)
        for offset in range(0, config.burst_bytes, config.block_bytes):
            length = min(config.block_bytes, config.burst_bytes - offset)
            data = yield from mount.pread(fd, offset, length)
            yield from pfs.write(
                ctx.node.name, _pfs_name(ctx.rank, step), offset, data
            )
        yield from mount.close(fd)
        yield from mount.unlink(path)

    for step in range(config.timesteps):
        yield from ctx.compute(
            config.compute_seconds * ctx.core.spec.flops
        )
        payload = _burst_payload(config, ctx.rank, step)
        io_start = engine.now
        if config.mode == "direct":
            pfs.create(_pfs_name(ctx.rank, step), config.burst_bytes)
            for offset in range(0, config.burst_bytes, config.block_bytes):
                yield from pfs.write(
                    ctx.node.name, _pfs_name(ctx.rank, step), offset,
                    payload[offset : offset + config.block_bytes],
                )
        else:
            assert ctx.nvmalloc is not None
            mount = ctx.nvmalloc.mount
            path = f"/mnt/aggregatenvm/staging/r{ctx.rank}.t{step}"
            fd = yield from mount.open(
                path, OpenFlags.O_RDWR | OpenFlags.O_CREAT,
                size=config.burst_bytes,
            )
            yield from mount.pwrite(fd, 0, payload)
            yield from mount.fsync(fd)
            yield from mount.close(fd)
            drains.append(engine.process(drain(step, path)))
        stall += engine.now - io_start
    # The run is only complete once the data is durable on the PFS.
    for proc in drains:
        yield proc
    return {"stall": stall, "end": engine.now}


def run_staging(
    job: Job, pfs: ParallelFileSystem, config: StagingConfig
) -> StagingResult:
    """Run every rank's burst loop; verify the PFS holds every burst."""
    start = job.engine.now
    _, results = job.run(lambda ctx: _staging_rank(ctx, config, pfs))
    result = StagingResult(config=config, job_label=job.config.label())
    result.elapsed = max(r["end"] for r in results) - start  # type: ignore[index]
    result.compute_stall = max(r["stall"] for r in results)  # type: ignore[index]
    result.drained_bytes = (
        job.config.num_ranks * config.timesteps * config.burst_bytes
        if config.mode == "staged" else 0.0
    )
    if config.verify:
        ok = True
        for rank in range(job.config.num_ranks):
            for step in range(config.timesteps):
                expected = _burst_payload(config, rank, step)
                if pfs.read_raw(_pfs_name(rank, step)) != expected:
                    ok = False
        result.verified = ok
    else:
        result.verified = True
    return result
