"""STREAM synthetic benchmark (paper §IV-B.1, Fig. 2 and Table III).

Measures sustained bandwidth of the vector kernels COPY / SCALE / ADD /
TRIAD with each of the three arrays independently placed on DRAM, on the
NVM store through NVMalloc, or (for the Table III baseline) on the local
SSD without NVMalloc.  STREAM streams every element exactly once per
iteration with zero reuse, so it measures NVMalloc's worst case.
"""

from __future__ import annotations

import enum
from collections.abc import Generator
from dataclasses import dataclass, field

import numpy as np

from repro.core.variable import Array
from repro.errors import NVMallocError
from repro.parallel.comm import RankContext
from repro.parallel.job import Job
from repro.sim.events import Event
from repro.util.units import KiB


class StreamKernel(enum.Enum):
    """The four STREAM kernels and their access/flop signatures."""

    COPY = "copy"  # C[i] = A[i]
    SCALE = "scale"  # B[i] = k*C[i]
    ADD = "add"  # C[i] = A[i] + B[i]
    TRIAD = "triad"  # A[i] = B[i] + 3*C[i]

    @property
    def arrays_touched(self) -> int:
        """Arrays moved per element (the STREAM bandwidth convention)."""
        return 3 if self in (StreamKernel.ADD, StreamKernel.TRIAD) else 2

    @property
    def flops_per_element(self) -> int:
        """Arithmetic operations per element for this kernel."""
        return {
            StreamKernel.COPY: 0,
            StreamKernel.SCALE: 1,
            StreamKernel.ADD: 1,
            StreamKernel.TRIAD: 2,
        }[self]


#: Placement of one array: "dram", "nvm" (through NVMalloc), or "raw-ssd"
#: (local SSD without NVMalloc, Table III's baseline).
Placement = str
_VALID_PLACEMENTS = {"dram", "nvm", "raw-ssd"}


@dataclass(frozen=True)
class StreamConfig:
    """One STREAM run."""

    elements: int  # per array
    kernel: StreamKernel = StreamKernel.TRIAD
    iterations: int = 10
    placement: dict[str, Placement] = field(
        default_factory=lambda: {"A": "dram", "B": "dram", "C": "dram"}
    )
    block_bytes: int = 256 * KiB  # elements processed per inner step
    scalar: float = 3.0
    verify: bool = True
    # Node-wide kernel page-cache budget for raw-ssd mode, split evenly
    # across threads (matching the FUSE + page cache DRAM the NVMalloc
    # path gets).
    raw_cache_bytes: int = 1024 * KiB

    def __post_init__(self) -> None:
        for name in ("A", "B", "C"):
            if name not in self.placement:
                raise NVMallocError(f"placement missing array {name!r}")
            if self.placement[name] not in _VALID_PLACEMENTS:
                raise NVMallocError(
                    f"bad placement {self.placement[name]!r} for {name!r}"
                )

    def label(self) -> str:
        """Fig. 2 x-axis label: which arrays are NOT on DRAM."""
        off = [n for n in ("A", "B", "C") if self.placement[n] != "dram"]
        return "&".join(off) if off else "None"


@dataclass
class StreamResult:
    """Outcome of one STREAM run."""

    config: StreamConfig
    elapsed: float  # virtual seconds
    bytes_moved: int
    verified: bool

    @property
    def bandwidth(self) -> float:
        """Sustained bytes/second (the STREAM figure of merit)."""
        return self.bytes_moved / self.elapsed if self.elapsed > 0 else 0.0


def _allocate_array(
    ctx: RankContext, name: str, placement: Placement, config: StreamConfig,
    my_elements: int, raw_offsets: dict[str, int],
) -> Generator[Event, object, Array]:
    """This rank's slice of one STREAM array (each rank owns a contiguous
    slice; total footprint equals the shared-array original)."""
    shape = (my_elements,)
    if placement == "dram":
        return ctx.dram_array(shape, np.float64)
    if placement == "nvm":
        if ctx.nvmalloc is None:
            raise NVMallocError("NVM placement requires an aggregate store")
        return (
            yield from ctx.nvmalloc.ssdmalloc_array(
                shape, np.float64, owner=f"stream.{name}.r{ctx.rank}"
            )
        )
    from repro.workloads.rawssd import RawSSDArray

    base = raw_offsets[name] + ctx.rank * my_elements * 8
    return RawSSDArray(
        ctx.node,
        shape,
        np.dtype(np.float64),
        cache_bytes=max(4096, config.raw_cache_bytes // ctx.size),
        base_offset=base,
    )


def _stream_rank(
    ctx: RankContext, config: StreamConfig, raw_offsets: dict[str, int]
) -> Generator[Event, object, dict[str, object]]:
    """One STREAM thread: initialize, iterate the kernel, verify."""
    threads = ctx.size
    my_elements = config.elements // threads
    if my_elements == 0:
        raise NVMallocError("more threads than elements")
    arrays: dict[str, Array] = {}
    for name in ("A", "B", "C"):
        arrays[name] = yield from _allocate_array(
            ctx, name, config.placement[name], config, my_elements, raw_offsets
        )
    # Canonical STREAM initial values.
    init = {"A": 1.0, "B": 2.0, "C": 0.0}
    block = max(1, config.block_bytes // 8)
    for name, array in arrays.items():
        for start in range(0, my_elements, block):
            stop = min(start + block, my_elements)
            yield from array.write_slice(
                start, np.full(stop - start, init[name], dtype=np.float64)
            )
    yield from ctx.barrier()
    start_time = ctx.engine.now

    kernel = config.kernel
    for _ in range(config.iterations):
        for s in range(0, my_elements, block):
            e = min(s + block, my_elements)
            if kernel is StreamKernel.COPY:
                a = yield from arrays["A"].read_slice(s, e)
                out, dst = a, "C"
            elif kernel is StreamKernel.SCALE:
                c = yield from arrays["C"].read_slice(s, e)
                out, dst = config.scalar * c, "B"
            elif kernel is StreamKernel.ADD:
                a = yield from arrays["A"].read_slice(s, e)
                b = yield from arrays["B"].read_slice(s, e)
                out, dst = a + b, "C"
            else:  # TRIAD: A = B + scalar*C
                b = yield from arrays["B"].read_slice(s, e)
                c = yield from arrays["C"].read_slice(s, e)
                out, dst = b + config.scalar * c, "A"
            flops = kernel.flops_per_element * (e - s)
            if flops:
                yield from ctx.compute(flops)
            yield from arrays[dst].write_slice(s, out)

    yield from ctx.barrier()
    elapsed = ctx.engine.now - start_time

    verified = True
    if config.verify:
        expected = _expected_values(config)
        for name, array in arrays.items():
            probe = yield from array.read_slice(0, min(my_elements, 64))
            if not np.allclose(probe, expected[name]):
                verified = False
    # Free NVM allocations so back-to-back runs do not leak store space.
    for array in arrays.values():
        from repro.core.variable import DRAMArray, NVMArray

        if isinstance(array, NVMArray):
            assert ctx.nvmalloc is not None
            yield from ctx.nvmalloc.ssdfree(array.variable)
        elif isinstance(array, DRAMArray):
            array.free()
    bytes_moved = (
        kernel.arrays_touched * my_elements * 8 * config.iterations
    )
    return {"elapsed": elapsed, "bytes": bytes_moved, "verified": verified}


def _expected_values(config: StreamConfig) -> dict[str, float]:
    """Array contents after ``iterations`` repeats of one kernel."""
    a, b, c = 1.0, 2.0, 0.0
    k = config.scalar
    for _ in range(config.iterations):
        if config.kernel is StreamKernel.COPY:
            c = a
        elif config.kernel is StreamKernel.SCALE:
            b = k * c
        elif config.kernel is StreamKernel.ADD:
            c = a + b
        else:
            a = b + k * c
    return {"A": a, "B": b, "C": c}


def run_stream(job: Job, config: StreamConfig) -> StreamResult:
    """Run STREAM on an existing job (threads = the job's ranks)."""
    raw_offsets = {"A": 0, "B": config.elements * 8, "C": config.elements * 16}
    # Root span for the whole run: rank processes created inside
    # ``job.run`` fork it, so every layer's spans share one trace.
    tracer = job.engine.tracer
    span = (
        tracer.begin("app", "stream", kernel=config.kernel.value)
        if tracer is not None
        else None
    )
    _, results = job.run(lambda ctx: _stream_rank(ctx, config, raw_offsets))
    if span is not None:
        tracer.end(span)
    elapsed = max(r["elapsed"] for r in results)  # type: ignore[index]
    bytes_moved = sum(r["bytes"] for r in results)  # type: ignore[index]
    verified = all(r["verified"] for r in results)  # type: ignore[index]
    return StreamResult(
        config=config, elapsed=elapsed, bytes_moved=bytes_moved, verified=verified
    )
