"""A GTS-like iterative science application (paper §I motivation).

The paper opens with the GTS fusion code: O(100k) cores consuming 2 GB
of memory each, with DRAM scarcity forcing jobs to "run wider" than
their physics needs.  This workload distills that shape into a 1-D
particle-in-cell-style loop:

- a **field** array (read-mostly, shared by every process on a node);
- per-rank **particle** arrays (position + velocity, rewritten every
  step) — the memory hog that NVMalloc lets exceed DRAM;
- a compute *push* phase per step (gather field at particle positions,
  advance, scatter back), followed by a cheap field relaxation;
- periodic ``ssdcheckpoint`` of the particle state.

Placement is decided by :class:`repro.core.policy.PlacementPolicy` from
the arrays' access profiles, or forced via config.  Real values flow end
to end: the run is verified against a pure-numpy reference simulation.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field

import numpy as np

from repro.core.policy import PlacementDecision, PlacementPolicy, VariableProfile
from repro.core.variable import Array
from repro.errors import NVMallocError
from repro.parallel.comm import RankContext
from repro.parallel.job import Job
from repro.sim.events import Event

#: Flops per particle per step (gather + push + scatter arithmetic).
PUSH_FLOPS = 12.0

BLOCK = 1 << 12  # particles processed per inner block


@dataclass(frozen=True)
class ScienceAppConfig:
    """One run of the GTS-like loop."""

    grid_cells: int = 1 << 12
    particles_per_rank: int = 1 << 14
    steps: int = 4
    checkpoint_every: int = 2  # 0 disables checkpointing
    placement: str = "auto"  # "auto" | "dram" | "nvm"
    dram_budget_per_rank: int | None = None  # bytes for auto placement
    verify: bool = True
    seed: int = 42

    def __post_init__(self) -> None:
        if self.placement not in ("auto", "dram", "nvm"):
            raise NVMallocError(f"bad placement {self.placement!r}")
        if self.steps < 1 or self.grid_cells < 2 or self.particles_per_rank < 1:
            raise NVMallocError("degenerate configuration")

    @property
    def particle_bytes_per_rank(self) -> int:
        return 2 * self.particles_per_rank * 8  # position + velocity

    @property
    def field_bytes(self) -> int:
        return self.grid_cells * 8


@dataclass
class ScienceAppResult:
    """Outcome of one run."""

    config: ScienceAppConfig
    job_label: str
    elapsed: float = 0.0
    placements: dict[str, str] = field(default_factory=dict)
    checkpoints_taken: int = 0
    checkpoint_bytes_written: float = 0.0
    checkpoint_bytes_linked: float = 0.0
    restart_verified: bool = True
    verified: bool = False


# ----------------------------------------------------------------------
# Reference implementation (pure numpy, no simulation)
# ----------------------------------------------------------------------

def _initial_state(
    config: ScienceAppConfig, rank: int
) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(config.seed + rank)
    positions = rng.random(config.particles_per_rank) * config.grid_cells
    velocities = rng.standard_normal(config.particles_per_rank) * 0.1
    return positions, velocities


def _initial_field(config: ScienceAppConfig) -> np.ndarray:
    cells = np.arange(config.grid_cells)
    return np.sin(2 * np.pi * cells / config.grid_cells)


def _push(
    positions: np.ndarray,
    velocities: np.ndarray,
    grid_field: np.ndarray,
    grid_cells: int,
) -> None:
    """One in-place particle push against the field (leapfrog-flavoured)."""
    cells = positions.astype(np.int64) % grid_cells
    velocities += 0.01 * grid_field[cells]
    positions += velocities
    np.mod(positions, grid_cells, out=positions)


def reference_run(config: ScienceAppConfig, num_ranks: int) -> float:
    """The exact result the simulated run must reproduce: the global sum
    of all particle positions after ``steps`` pushes."""
    grid_field = _initial_field(config)
    total = 0.0
    for rank in range(num_ranks):
        positions, velocities = _initial_state(config, rank)
        for _ in range(config.steps):
            _push(positions, velocities, grid_field, config.grid_cells)
        total += float(positions.sum())
    return total


# ----------------------------------------------------------------------
# The per-rank program
# ----------------------------------------------------------------------

def _decide_placement(
    config: ScienceAppConfig, budget: int
) -> dict[str, PlacementDecision]:
    if config.placement == "dram":
        return {
            "particles": PlacementDecision.DRAM,
            "field": PlacementDecision.DRAM,
        }
    if config.placement == "nvm":
        return {
            "particles": PlacementDecision.NVM,
            "field": PlacementDecision.NVM,
        }
    policy = PlacementPolicy(budget)
    return policy.place(
        [
            VariableProfile(
                "particles",
                config.particle_bytes_per_rank,
                reads_per_byte=float(config.steps),
                writes_per_byte=float(config.steps),
                sequential=True,
            ),
            VariableProfile(
                "field",
                config.field_bytes,
                reads_per_byte=4.0 * config.steps,
                writes_per_byte=0.1,
                sequential=False,
            ),
        ]
    )


def _allocate(
    ctx: RankContext, name: str, elements: int,
    decision: PlacementDecision, *, shared: bool,
) -> Generator[Event, object, Array]:
    if decision is PlacementDecision.DRAM:
        return ctx.dram_array((elements,), np.float64)
    assert ctx.nvmalloc is not None
    key = f"sci.{name}.{ctx.node.name}" if shared else None
    return (
        yield from ctx.nvmalloc.ssdmalloc_array(
            (elements,), np.float64,
            owner=f"sci.{name}.r{ctx.rank}", shared_key=key,
        )
    )


def _science_rank(
    ctx: RankContext, config: ScienceAppConfig
) -> Generator[Event, object, dict[str, object]]:
    n = config.particles_per_rank
    budget = (
        config.dram_budget_per_rank
        if config.dram_budget_per_rank is not None
        else max(0, ctx.node.dram.available // (2 * max(1, ctx.size)))
    )
    decisions = _decide_placement(config, budget)
    can_checkpoint = (
        config.checkpoint_every > 0
        and decisions["particles"] is PlacementDecision.NVM
        and ctx.nvmalloc is not None
    )

    # Field: shared per node when on NVM; the node's first rank populates.
    my_node = ctx.node.node_id
    node_ranks = [
        r for r in range(ctx.size) if ctx.comm.node_of(r).node_id == my_node
    ]
    is_leader = ctx.rank == node_ranks[0]

    grid = _initial_field(config)
    field_arr = yield from _allocate(
        ctx, "field", config.grid_cells, decisions["field"],
        shared=decisions["field"] is PlacementDecision.NVM,
    )
    if decisions["field"] is PlacementDecision.DRAM or is_leader:
        yield from field_arr.write_slice(0, grid)
    yield from ctx.barrier()

    particles = yield from _allocate(
        ctx, "particles", 2 * n, decisions["particles"], shared=False
    )
    positions, velocities = _initial_state(config, ctx.rank)
    yield from particles.write_slice(0, positions)
    yield from particles.write_slice(n, velocities)

    checkpoints = 0
    ck_written = 0.0
    ck_linked = 0.0
    start = ctx.engine.now
    for step in range(config.steps):
        # Push phase, blocked over particles.
        for s in range(0, n, BLOCK):
            e = min(s + BLOCK, n)
            pos = yield from particles.read_slice(s, e)
            vel = yield from particles.read_slice(n + s, n + e)
            # Gather the field at each particle's cell.  Particle blocks
            # hit scattered cells: fetch the needed field range once.
            cells = pos.astype(np.int64) % config.grid_cells
            lo, hi = int(cells.min()), int(cells.max()) + 1
            grid_piece = yield from field_arr.read_slice(lo, hi)
            vel += 0.01 * grid_piece[cells - lo]
            pos += vel
            np.mod(pos, config.grid_cells, out=pos)
            yield from ctx.compute(PUSH_FLOPS * (e - s))
            yield from particles.write_slice(s, pos)
            yield from particles.write_slice(n + s, vel)
        # Periodic checkpoint of the particle state (NVM chunks linked).
        if can_checkpoint and (step + 1) % config.checkpoint_every == 0:
            assert ctx.nvmalloc is not None
            from repro.core.variable import NVMArray

            assert isinstance(particles, NVMArray)
            record = yield from ctx.nvmalloc.ssdcheckpoint(
                f"sci.r{ctx.rank}", step, str(step).encode(),
                [("particles", particles.variable)],
            )
            checkpoints += 1
            ck_written += record.bytes_written
            ck_linked += record.bytes_linked
    elapsed = ctx.engine.now - start

    # Restart check: the latest checkpoint must reproduce the state the
    # variable held right after that step.
    restart_ok = True
    if can_checkpoint and checkpoints:
        assert ctx.nvmalloc is not None
        last_step = (config.steps // config.checkpoint_every) * config.checkpoint_every - 1
        dram, variables = yield from ctx.nvmalloc.restore(
            f"sci.r{ctx.rank}", last_step
        )
        restart_ok = dram == str(last_step).encode()

    final_pos = yield from particles.read_slice(0, n)
    local_sum = float(final_pos.sum())
    sums = yield from ctx.gather(local_sum, root=0)

    # Teardown.
    from repro.core.variable import DRAMArray, NVMArray

    for arr in (particles, field_arr):
        if isinstance(arr, NVMArray):
            assert ctx.nvmalloc is not None
            yield from ctx.nvmalloc.ssdfree(arr.variable)
        elif isinstance(arr, DRAMArray):
            arr.free()
    return {
        "rank": ctx.rank,
        "elapsed": elapsed,
        "total": sum(sums) if ctx.rank == 0 else None,
        "decisions": {k: v.value for k, v in decisions.items()},
        "checkpoints": checkpoints,
        "ck_written": ck_written,
        "ck_linked": ck_linked,
        "restart_ok": restart_ok,
    }


# ----------------------------------------------------------------------
def run_science_app(job: Job, config: ScienceAppConfig) -> ScienceAppResult:
    """Run the GTS-like loop on every rank of ``job`` and verify."""
    _, results = job.run(lambda ctx: _science_rank(ctx, config))
    result = ScienceAppResult(config=config, job_label=job.config.label())
    result.elapsed = max(r["elapsed"] for r in results)  # type: ignore[index]
    master = next(r for r in results if r["rank"] == 0)  # type: ignore[index]
    result.placements = dict(master["decisions"])  # type: ignore[index]
    result.checkpoints_taken = sum(r["checkpoints"] for r in results)  # type: ignore[index]
    result.checkpoint_bytes_written = sum(r["ck_written"] for r in results)  # type: ignore[index]
    result.checkpoint_bytes_linked = sum(r["ck_linked"] for r in results)  # type: ignore[index]
    result.restart_verified = all(r["restart_ok"] for r in results)  # type: ignore[index]
    if config.verify:
        expected = reference_run(config, job.config.num_ranks)
        measured = float(master["total"])  # type: ignore[arg-type]
        result.verified = bool(np.isclose(measured, expected, rtol=1e-9))
    else:
        result.verified = True
    return result
