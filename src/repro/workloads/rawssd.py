"""Direct local-SSD array access *without* NVMalloc (Table III baseline).

Models mmap-ing a file on a node-local ext3 SSD partition: the kernel page
cache absorbs reuse and issues device reads with its default sequential
readahead window (128 KiB), versus NVMalloc's 256 KiB chunk fetches through
the FUSE cache.  Used only by the STREAM "w/o NVMalloc" comparison.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Generator

import numpy as np

from repro.cluster.node import Node
from repro.core.variable import Array
from repro.devices.base import AccessKind
from repro.errors import DeviceError
from repro.sim.events import Event
from repro.store.chunk import PAGE_SIZE
from repro.util.units import KiB

KERNEL_READAHEAD = 128 * KiB


class RawSSDArray(Array):
    """A typed array on the node-local SSD, accessed without NVMalloc.

    Keeps real bytes; charges SSD extent I/O in readahead-window units on
    cache misses and DRAM time on hits.  The cache is a page-granular LRU
    standing in for the kernel page cache over the local file.
    """

    #: Page-fault service cost (mmap fault machinery, sans FUSE crossing).
    FAULT_OVERHEAD = 25e-6

    def __init__(
        self,
        node: Node,
        shape: tuple[int, ...],
        dtype: np.dtype,
        *,
        cache_bytes: int,
        readahead_bytes: int = KERNEL_READAHEAD,
        base_offset: int = 0,
        fault_overhead: float = FAULT_OVERHEAD,
    ) -> None:
        super().__init__(shape, dtype)
        self.fault_overhead = fault_overhead
        if node.ssd is None:
            raise DeviceError(f"{node.name} has no local SSD")
        self.node = node
        self.ssd = node.ssd
        self.readahead = readahead_bytes
        self.base_offset = base_offset
        if base_offset + self.nbytes > self.ssd.logical_capacity:
            raise DeviceError("array exceeds local SSD capacity")
        self._buffer = np.zeros(self.nbytes, dtype=np.uint8)
        self._page = PAGE_SIZE
        self._capacity_pages = max(1, cache_bytes // self._page)
        self._resident: OrderedDict[int, bool] = OrderedDict()  # page -> dirty

    # ------------------------------------------------------------------
    def _evict(self) -> Generator[Event, object, None]:
        while len(self._resident) >= self._capacity_pages:
            page, dirty = self._resident.popitem(last=False)
            if dirty:
                offset = page * self._page
                length = min(self._page, self.nbytes - offset)
                yield from self.ssd.write_extent(self.base_offset + offset, length)

    def _fault(self, first_page: int) -> Generator[Event, object, None]:
        """Fault ``first_page`` in, pulling a full readahead window."""
        window_pages = max(1, self.readahead // self._page)
        start = first_page
        length = 0
        pages: list[int] = []
        last_page = (self.nbytes - 1) // self._page
        for page in range(start, min(start + window_pages, last_page + 1)):
            if page in self._resident:
                break
            pages.append(page)
            length += min(self._page, self.nbytes - page * self._page)
        if not pages:
            return
        yield from self.ssd.read_extent(self.base_offset + start * self._page, length)
        if self.fault_overhead:
            yield self.node.engine.timeout(len(pages) * self.fault_overhead)
        for page in pages:
            yield from self._evict()
            self._resident[page] = False

    # ------------------------------------------------------------------
    def read_bytes(self, offset: int, length: int) -> Generator[Event, object, bytes]:
        """Read raw bytes (faults missing pages with kernel readahead)."""
        if offset < 0 or offset + length > self.nbytes:
            raise IndexError(f"read [{offset}, {offset + length}) out of range")
        if length:
            first = offset // self._page
            last = (offset + length - 1) // self._page
            resident = 0
            for page in range(first, last + 1):
                if page in self._resident:
                    self._resident.move_to_end(page)
                    resident += 1
                else:
                    yield from self._fault(page)
            yield from self.node.dram.access(AccessKind.READ, resident * self._page)
        return self._buffer[offset : offset + length].tobytes()

    def write_bytes(self, offset: int, data: bytes) -> Generator[Event, object, None]:
        """Write raw bytes (write-allocate, write-back on eviction)."""
        if offset < 0 or offset + len(data) > self.nbytes:
            raise IndexError(f"write [{offset}, {offset + len(data)}) out of range")
        if not data:
            return
        first = offset // self._page
        last = (offset + len(data) - 1) // self._page
        faults = 0
        for page in range(first, last + 1):
            if page in self._resident:
                self._resident.move_to_end(page)
            else:
                yield from self._evict()
                faults += 1
            self._resident[page] = True  # dirty
        if faults and self.fault_overhead:
            yield self.node.engine.timeout(faults * self.fault_overhead)
        yield from self.node.dram.access(AccessKind.WRITE, len(data))
        self._buffer[offset : offset + len(data)] = np.frombuffer(data, dtype=np.uint8)

    def flush(self) -> Generator[Event, object, None]:
        """Write back all dirty pages."""
        for page, dirty in list(self._resident.items()):
            if dirty:
                offset = page * self._page
                length = min(self._page, self.nbytes - offset)
                yield from self.ssd.write_extent(self.base_offset + offset, length)
                self._resident[page] = False
