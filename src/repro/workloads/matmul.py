"""MPI dense matrix multiplication with loop tiling (paper §IV-B.2).

``C = A x B`` with n x n float64 matrices.  Execution follows the paper's
five stages, each bracketed by barriers so stage times are comparable:

1. ``input_a``   — master reads A from the PFS and scatters row blocks;
2. ``input_b``   — master reads B from the PFS;
3. ``bcast_b``   — B reaches every process: a DRAM copy per process
   (DRAM mode), one NVM-store file per node (shared mmap mode, Fig. 4),
   or one NVM file per process (individual mode);
4. ``compute``   — tiled local multiply; B is accessed row-major or
   column-major (Fig. 5, Table V);
5. ``collect_c`` — master gathers C blocks and writes C to the PFS.

A and C row-blocks live in DRAM (budget-reserved); only B's placement
varies, exactly as in the evaluation.  Real bytes flow everywhere, so
``verify=True`` checks the gathered product against ``A @ B``.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field

import numpy as np

from repro.core.variable import Array, NVMArray
from repro.errors import NVMallocError
from repro.parallel.comm import RankContext
from repro.parallel.job import Job
from repro.pfs.pfs import ParallelFileSystem
from repro.sim.events import Event

#: Stage names in execution order (Fig. 3's stacked-bar segments).
STAGES = ("input_a", "input_b", "bcast_b", "compute", "collect_c")


@dataclass(frozen=True)
class MatmulConfig:
    """One MM run."""

    n: int  # matrix dimension
    tile: int = 64  # k-tile (rows of B consumed per step)
    b_placement: str = "nvm"  # "dram" | "nvm"
    shared_mmap: bool = True  # one B file per node vs per process
    access_order: str = "row"  # "row" | "column" access to B
    verify: bool = True
    seed: int = 20120521  # IPDPS 2012 :-)

    def __post_init__(self) -> None:
        if self.n <= 0 or self.tile <= 0:
            raise NVMallocError("n and tile must be positive")
        if self.n % self.tile:
            raise NVMallocError(f"tile {self.tile} must divide n {self.n}")
        if self.b_placement not in ("dram", "nvm"):
            raise NVMallocError(f"bad b_placement {self.b_placement!r}")
        if self.access_order not in ("row", "column"):
            raise NVMallocError(f"bad access_order {self.access_order!r}")

    @property
    def matrix_bytes(self) -> int:
        """Bytes of one n x n float64 matrix."""
        return self.n * self.n * 8


@dataclass
class MatmulResult:
    """Stage breakdown and byte flows of one MM run."""

    config: MatmulConfig
    job_label: str
    stage_times: dict[str, float] = field(default_factory=dict)
    # Byte-flow deltas across the compute stage (Table IV):
    # app accesses to B -> requests to FUSE -> transfers to/from SSD.
    compute_flows: dict[str, float] = field(default_factory=dict)
    verified: bool = False
    # End-of-run cache behaviour, summed over the job's nodes
    # (CacheStats / PageCacheStats; None for DRAM-only runs).
    chunk_cache: object = None
    page_cache: object = None

    @property
    def total(self) -> float:
        """Sum of all stage times."""
        return sum(self.stage_times.values())

    @property
    def compute_time(self) -> float:
        """Duration of the compute stage."""
        return self.stage_times.get("compute", 0.0)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def _input_matrices(config: MatmulConfig) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic input matrices (small values keep products exact)."""
    rng = np.random.default_rng(config.seed)
    a = rng.integers(-4, 5, size=(config.n, config.n)).astype(np.float64)
    b = rng.integers(-4, 5, size=(config.n, config.n)).astype(np.float64)
    return a, b


def _bcast_group(
    ctx: RankContext, data: object, group: list[int], tag: int
) -> Generator[Event, object, object]:
    """Binomial-tree broadcast restricted to ``group`` (root = group[0]).

    Used to distribute B to node leaders only in shared-mmap mode, which
    is where the shared mode's broadcast savings come from.
    """
    if ctx.rank not in group:
        return None
    pos = group.index(ctx.rank)
    size = len(group)
    received = data if pos == 0 else None
    mask = 1
    while mask < size:
        if pos & mask:
            received = yield from ctx.recv(source=group[pos - mask], tag=tag)
            break
        mask <<= 1
    if pos == 0:
        mask = 1 << max(0, (size - 1).bit_length())
    child = mask >> 1
    while child:
        if pos + child < size and not pos & child:
            yield from ctx.send(received, dest=group[pos + child], tag=tag)
        child >>= 1
    return received


def _distribute_b(
    ctx: RankContext,
    config: MatmulConfig,
    leaders: list[int],
    my_leader: int,
    get_block,
    *,
    streaming: bool,
) -> Generator[Event, object, Array]:
    """Distribute B from the master to its per-placement destination.

    ``get_block(r0)`` is a process generator yielding the master's block
    of rows starting at ``r0`` (``None`` on other ranks).  In streaming
    mode blocks are ``config.tile`` rows; otherwise the whole matrix
    moves as one broadcast, as the paper's two-phase code does.
    """
    n = config.n
    master = 0
    block_rows = config.tile if streaming else n
    shared = config.b_placement == "nvm" and config.shared_mmap
    key = f"mm.B.{ctx.node.name}"
    dest: Array | None = None
    if config.b_placement == "dram":
        dest = ctx.dram_array((n, n), np.float64)
    elif shared:
        if ctx.rank == my_leader:
            assert ctx.nvmalloc is not None
            dest = yield from ctx.nvmalloc.ssdmalloc_array(
                (n, n), np.float64, owner=f"r{ctx.rank}", shared_key=key
            )
    else:
        assert ctx.nvmalloc is not None
        dest = yield from ctx.nvmalloc.ssdmalloc_array(
            (n, n), np.float64, owner=f"r{ctx.rank}"
        )
    for r0 in range(0, n, block_rows):
        block = yield from get_block(r0)
        if shared:
            if ctx.rank != my_leader:
                continue  # non-leaders receive nothing
            block = yield from _bcast_group(ctx, block, leaders, tag=20)
        else:
            block = yield from ctx.bcast(block, root=master)
        assert isinstance(block, np.ndarray) and dest is not None
        yield from dest.write_slice(
            r0 * n, np.ascontiguousarray(block).ravel()
        )
    if isinstance(dest, NVMArray):
        # B is write-once-read-many: push it out of the volatile caches
        # so the NVM store holds it before compute begins.
        yield from dest.variable.region.msync()
    if shared:
        yield from ctx.barrier()  # leaders finished populating
        if ctx.rank != my_leader:
            assert ctx.nvmalloc is not None
            dest = yield from ctx.nvmalloc.ssdmalloc_array(
                (n, n), np.float64, owner=f"r{ctx.rank}", shared_key=key
            )
    assert dest is not None
    return dest


class _ComputeFlowProbe:
    """Snapshots the Table IV counters around the compute stage."""

    COUNTERS = {
        "app_to_b": "mmap.app_read.bytes",
        "request_to_fuse": "pagecache.fault.bytes",
        "request_to_ssd": "fuse.fetch.bytes",
        "writeback_to_ssd": "fuse.writeback.bytes",
    }

    def __init__(self, metrics) -> None:
        self.metrics = metrics
        self._before: dict[str, float] = {}

    def start(self) -> None:
        """Snapshot the counters before the compute stage."""
        self._before = {
            key: self.metrics.value(name) for key, name in self.COUNTERS.items()
        }

    def stop(self) -> dict[str, float]:
        """Counter deltas across the compute stage."""
        return {
            key: self.metrics.value(name) - self._before[key]
            for key, name in self.COUNTERS.items()
        }


# ----------------------------------------------------------------------
# The per-rank program
# ----------------------------------------------------------------------

def _mm_rank(
    ctx: RankContext,
    job: Job,
    config: MatmulConfig,
    pfs: ParallelFileSystem,
    a_true: np.ndarray,
    b_true: np.ndarray,
) -> Generator[Event, object, dict[str, object]]:
    n = config.n
    size = ctx.size
    if n % size:
        raise NVMallocError(f"ranks {size} must divide n {n}")
    rows = n // size
    row_bytes = n * 8
    master = 0
    procs_per_node = job.config.procs_per_node
    leaders = list(range(0, size, procs_per_node))
    my_leader = (ctx.rank // procs_per_node) * procs_per_node

    stage_times: dict[str, float] = {}
    flows: dict[str, float] = {}
    probe = _ComputeFlowProbe(job.cluster.metrics)
    mark = ctx.engine.now

    def stage_end(name: str):
        nonlocal mark
        now = ctx.engine.now
        stage_times[name] = now - mark
        mark = now

    # -- Stage 1: Input & Split A -------------------------------------
    # A and C row blocks live in DRAM for the whole run; reserve them.
    ctx.node.dram.allocate(2 * rows * row_bytes)
    if ctx.rank == master:
        a_local: np.ndarray | None = None
        for dest in range(size):
            block = yield from pfs.read(
                ctx.node.name, "mm/A", dest * rows * row_bytes, rows * row_bytes
            )
            block_arr = np.frombuffer(block, dtype=np.float64).reshape(rows, n)
            if dest == master:
                a_local = block_arr
            else:
                yield from ctx.send(block_arr, dest=dest, tag=10)
    else:
        a_local = yield from ctx.recv(source=master, tag=10)
    assert isinstance(a_local, np.ndarray)
    yield from ctx.barrier()
    stage_end("input_a")

    # -- Stages 2+3: Input B, Broadcast B -------------------------------
    # The paper's master reads all of B, then broadcasts it.  When B does
    # not fit in the master's remaining DRAM (the Fig. 6 regime, 8 GB
    # matrices on 8 GB nodes), input and broadcast are streamed in
    # row-tile blocks instead; PFS-read time is attributed to Input-B
    # and distribution time to Broadcast-B.
    if ctx.rank == master:
        staged = ctx.node.dram.available >= config.matrix_bytes
    else:
        staged = None
    staged = yield from ctx.bcast(staged, root=master)
    b_array: Array  # where compute will read B from
    if staged:
        b_full: np.ndarray | None = None
        if ctx.rank == master:
            ctx.node.dram.allocate(config.matrix_bytes)  # staging copy
            raw = yield from pfs.read(
                ctx.node.name, "mm/B", 0, config.matrix_bytes
            )
            b_full = np.frombuffer(raw, dtype=np.float64).reshape(n, n)
        yield from ctx.barrier()
        stage_end("input_b")

        def staged_block(r0: int) -> Generator[Event, object, np.ndarray | None]:
            return b_full  # whole matrix in one broadcast, as the paper
            yield  # pragma: no cover - makes this a generator

        b_array = yield from _distribute_b(
            ctx, config, leaders, my_leader, staged_block, streaming=False
        )
        if ctx.rank == master:
            ctx.node.dram.free(config.matrix_bytes)  # staging released
            b_full = None
        yield from ctx.barrier()
        stage_end("bcast_b")
    else:
        read_time = 0.0

        def read_block(r0: int) -> Generator[Event, object, np.ndarray | None]:
            nonlocal read_time
            if ctx.rank != master:
                return None
            t0 = ctx.engine.now
            raw = yield from pfs.read(
                ctx.node.name, "mm/B", r0 * n * 8, config.tile * n * 8
            )
            read_time += ctx.engine.now - t0
            return np.frombuffer(raw, dtype=np.float64).reshape(config.tile, n)

        b_array = yield from _distribute_b(
            ctx, config, leaders, my_leader, read_block, streaming=True
        )
        yield from ctx.barrier()
        now = ctx.engine.now
        span = now - mark
        mark = now
        # The master knows the true input/broadcast split; other ranks
        # overlapped with it and report zeros, so the driver's per-stage
        # max recovers the master's split (which sums to the span).
        if ctx.rank == master:
            stage_times["input_b"] = read_time
            stage_times["bcast_b"] = span - read_time
        else:
            stage_times["input_b"] = 0.0
            stage_times["bcast_b"] = 0.0

    # -- Stage 4: Compute (tiled) --------------------------------------
    if ctx.rank == master:
        probe.start()
    c_local = np.zeros((rows, n), dtype=np.float64)
    tile = config.tile
    if config.access_order == "row":
        # Stream B by k-tiles: each tile is one contiguous ranged read.
        for k0 in range(0, n, tile):
            b_tile = yield from b_array.read_rows(k0, k0 + tile)
            yield from ctx.compute(2.0 * rows * tile * n)
            c_local += a_local[:, k0 : k0 + tile] @ b_tile
    else:
        # Column-major: sweep column tiles of B; each gathers n short
        # strided reads — the locality-hostile pattern of Fig. 5.
        for c0 in range(0, n, tile):
            b_cols = yield from b_array.read_block(0, n, c0, c0 + tile)
            yield from ctx.compute(2.0 * rows * n * tile)
            c_local[:, c0 : c0 + tile] = a_local @ b_cols
    yield from ctx.barrier()
    if ctx.rank == master:
        flows = probe.stop()
    stage_end("compute")

    # -- Stage 5: Collect & Output C -----------------------------------
    gathered = yield from ctx.gather(c_local, root=master)
    verified = True
    if ctx.rank == master:
        assert gathered is not None
        c_full = np.vstack([np.asarray(g) for g in gathered])
        pfs.create("mm/C", config.matrix_bytes)
        yield from pfs.write(ctx.node.name, "mm/C", 0, c_full.tobytes())
        if config.verify:
            verified = bool(np.array_equal(c_full, a_true @ b_true))
    yield from ctx.barrier()
    stage_end("collect_c")

    # Teardown (not timed): release B and DRAM reservations.
    if isinstance(b_array, NVMArray):
        assert ctx.nvmalloc is not None
        yield from ctx.nvmalloc.ssdfree(b_array.variable)
    else:
        b_array.free()  # type: ignore[union-attr]
    ctx.node.dram.free(2 * rows * row_bytes)
    return {
        "stage_times": stage_times,
        "flows": flows,
        "verified": verified,
        "rank": ctx.rank,
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def run_matmul(
    job: Job, pfs: ParallelFileSystem, config: MatmulConfig
) -> MatmulResult:
    """Stage inputs on the PFS, run all ranks, fold the results."""
    a_true, b_true = _input_matrices(config)
    if pfs.exists("mm/A"):
        pfs.unlink("mm/A")
    if pfs.exists("mm/B"):
        pfs.unlink("mm/B")
    if pfs.exists("mm/C"):
        pfs.unlink("mm/C")
    pfs.put_initial("mm/A", a_true.tobytes())
    pfs.put_initial("mm/B", b_true.tobytes())

    _, results = job.run(
        lambda ctx: _mm_rank(ctx, job, config, pfs, a_true, b_true)
    )
    result = MatmulResult(config=config, job_label=job.config.label())
    # Barriers align stage boundaries, so every rank reports identical
    # stage durations; take the max defensively.
    for stage in STAGES:
        result.stage_times[stage] = max(
            r["stage_times"][stage] for r in results  # type: ignore[index]
        )
    master = next(r for r in results if r["rank"] == 0)  # type: ignore[index]
    result.compute_flows = dict(master["flows"])  # type: ignore[index]
    # Logical accesses to B during compute: every rank sweeps all of B.
    result.compute_flows.setdefault("app_to_b", 0.0)
    result.verified = all(r["verified"] for r in results)  # type: ignore[index]
    if job.config.uses_nvm:
        result.chunk_cache, result.page_cache = job.cache_stats()
    return result
