"""Iterative compute/checkpoint application (paper §III-E, §IV-B.5).

A timestep loop mutates a fraction of an NVM-resident variable plus some
DRAM state, then calls ``ssdcheckpoint``.  Measures the linking win: per
checkpoint only the DRAM image is physically written, variable chunks are
linked; subsequent mutation triggers copy-on-write of exactly the touched
chunks (incremental checkpointing for free), and every historical
checkpoint must restore the bytes frozen at its timestep.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field

import numpy as np

from repro.errors import NVMallocError
from repro.parallel.comm import RankContext
from repro.parallel.job import Job
from repro.sim.events import Event


@dataclass(frozen=True)
class CheckpointWorkloadConfig:
    """One checkpoint-loop run."""

    variable_bytes: int
    dram_state_bytes: int
    timesteps: int = 4
    mutate_fraction: float = 0.25  # fraction of chunks touched per step
    seed: int = 3

    def __post_init__(self) -> None:
        if self.variable_bytes <= 0 or self.dram_state_bytes < 0:
            raise NVMallocError("bad sizes")
        if not 0.0 <= self.mutate_fraction <= 1.0:
            raise NVMallocError("mutate_fraction must be in [0, 1]")


@dataclass
class CheckpointWorkloadResult:
    """Per-timestep accounting and restore verification."""

    config: CheckpointWorkloadConfig
    elapsed: float = 0.0
    bytes_written_per_step: list[float] = field(default_factory=list)
    bytes_linked_per_step: list[float] = field(default_factory=list)
    cow_chunks_per_step: list[float] = field(default_factory=list)
    restores_verified: bool = False

    @property
    def naive_bytes_per_step(self) -> float:
        """What a copy-everything checkpoint would write each step."""
        return self.config.dram_state_bytes + self.config.variable_bytes

    @property
    def linking_savings(self) -> float:
        """Fraction of checkpoint volume avoided by linking."""
        naive = self.naive_bytes_per_step * self.config.timesteps
        written = sum(self.bytes_written_per_step)
        return 1.0 - written / naive if naive else 0.0


def _checkpoint_rank(
    ctx: RankContext, config: CheckpointWorkloadConfig
) -> Generator[Event, object, dict[str, object]]:
    assert ctx.nvmalloc is not None
    lib = ctx.nvmalloc
    metrics = lib.metrics
    rng = np.random.default_rng(config.seed)
    chunk = lib.chunk_size

    variable = yield from lib.ssdmalloc(config.variable_bytes, owner="ckpt")
    # Initialize with a recognizable per-chunk pattern: chunk i holds
    # byte value (i % 251) + versioning in the first byte.
    nchunks = -(-config.variable_bytes // chunk)
    for i in range(nchunks):
        length = min(chunk, config.variable_bytes - i * chunk)
        yield from variable.write(i * chunk, bytes([i % 251]) * length)

    expected_snapshots: list[bytes] = []
    written_per_step: list[float] = []
    linked_per_step: list[float] = []
    cow_per_step: list[float] = []
    start = ctx.engine.now
    for t in range(config.timesteps):
        # Compute phase: mutate a random subset of chunks.
        n_mutate = int(round(config.mutate_fraction * nchunks))
        victims = rng.choice(nchunks, size=n_mutate, replace=False)
        for i in sorted(int(v) for v in victims):
            length = min(chunk, config.variable_bytes - i * chunk)
            yield from variable.write(
                i * chunk, bytes([(i + t + 1) % 251]) * length
            )
        yield from ctx.compute(1e6)
        dram_state = bytes([t % 251]) * config.dram_state_bytes

        cow_before = metrics.value("store.manager.cow_chunks")
        record = yield from lib.ssdcheckpoint(
            "app", t, dram_state, [("var", variable)]
        )
        written_per_step.append(float(record.bytes_written))
        linked_per_step.append(float(record.bytes_linked))
        cow_per_step.append(
            metrics.value("store.manager.cow_chunks") - cow_before
        )
        # Remember the exact frozen contents for later verification.
        snapshot = yield from variable.read(0, config.variable_bytes)
        expected_snapshots.append(snapshot)
    elapsed = ctx.engine.now - start

    # Restore every checkpoint and compare with the frozen snapshots.
    ok = True
    for t in range(config.timesteps):
        dram_state, variables = yield from lib.restore("app", t)
        if dram_state != bytes([t % 251]) * config.dram_state_bytes:
            ok = False
        if variables["var"] != expected_snapshots[t]:
            ok = False
    yield from lib.ssdfree(variable)
    return {
        "elapsed": elapsed,
        "written": written_per_step,
        "linked": linked_per_step,
        "cow": cow_per_step,
        "verified": ok,
    }


def run_checkpoint_workload(
    job: Job, config: CheckpointWorkloadConfig
) -> CheckpointWorkloadResult:
    """Run the checkpoint loop on rank 0."""
    ctx = job.rank_context(0)
    # Root span: the rank process forks it, so checkpoint/restore spans
    # across every layer share one trace.
    tracer = job.engine.tracer
    span = (
        tracer.begin("app", "checkpoint_loop", timesteps=config.timesteps)
        if tracer is not None
        else None
    )
    proc = job.engine.process(_checkpoint_rank(ctx, config))
    outcome = job.engine.run(proc)
    if span is not None:
        tracer.end(span)
    assert isinstance(outcome, dict)
    return CheckpointWorkloadResult(
        config=config,
        elapsed=float(outcome["elapsed"]),
        bytes_written_per_step=list(outcome["written"]),
        bytes_linked_per_step=list(outcome["linked"]),
        cow_chunks_per_step=list(outcome["cow"]),
        restores_verified=bool(outcome["verified"]),
    )
