"""Evaluation workloads (paper §IV).

- :mod:`repro.workloads.stream` — STREAM vector kernels (Fig. 2, Table III);
- :mod:`repro.workloads.matmul` — MPI dense matrix multiplication with loop
  tiling (Figs. 3-6, Tables IV-V);
- :mod:`repro.workloads.quicksort` — MPI parallel sort, hybrid DRAM+NVM
  one-pass vs DRAM-only two-pass through the PFS (Table VI);
- :mod:`repro.workloads.randwrite` — random-write synthetic exercising the
  dirty-page write optimization (Table VII);
- :mod:`repro.workloads.checkpoint_wl` — iterative compute/checkpoint app
  exercising ``ssdcheckpoint`` linking, COW, and incremental behaviour.
"""

from repro.workloads.stream import (
    StreamConfig,
    StreamKernel,
    StreamResult,
    run_stream,
)
from repro.workloads.matmul import MatmulConfig, MatmulResult, run_matmul
from repro.workloads.matmul_decomposed import (
    DecomposedResult,
    run_matmul_decomposed,
)
from repro.workloads.quicksort import SortConfig, SortResult, run_quicksort
from repro.workloads.randwrite import RandWriteConfig, RandWriteResult, run_randwrite
from repro.workloads.checkpoint_wl import (
    CheckpointWorkloadConfig,
    CheckpointWorkloadResult,
    run_checkpoint_workload,
)
from repro.workloads.science_app import (
    ScienceAppConfig,
    ScienceAppResult,
    run_science_app,
)
from repro.workloads.staging import StagingConfig, StagingResult, run_staging

__all__ = [
    "CheckpointWorkloadConfig",
    "CheckpointWorkloadResult",
    "DecomposedResult",
    "MatmulConfig",
    "MatmulResult",
    "RandWriteConfig",
    "RandWriteResult",
    "ScienceAppConfig",
    "ScienceAppResult",
    "SortConfig",
    "SortResult",
    "StagingConfig",
    "StagingResult",
    "StreamConfig",
    "StreamKernel",
    "StreamResult",
    "run_checkpoint_workload",
    "run_matmul",
    "run_matmul_decomposed",
    "run_quicksort",
    "run_randwrite",
    "run_science_app",
    "run_staging",
    "run_stream",
]
