"""Lightweight simulated clients driving the store from a schedule.

A :class:`ClientSwarm` executes a :class:`~repro.traffic.arrivals.
RequestSchedule` against a launched :class:`~repro.parallel.job.Job`'s
mmap → page-cache → chunk-cache → store stack, two ways:

- :meth:`ClientSwarm.open_loop` — the tentpole mode.  Every request gets
  a pre-triggered :class:`~repro.sim.events.Event` carrying its index,
  bulk-inserted via ``Engine.schedule_batch`` at its *scheduled* virtual
  arrival time; when the event fires, a fresh request process starts
  **regardless of whether earlier requests finished**.  Queueing delay
  behind a saturated device or a crashed benefactor therefore lands in
  the request's measured latency instead of silently throttling the
  offered load.
- :meth:`ClientSwarm.closed_loop` — the calibration mode: ``workers``
  processes drain the same request sequence back-to-back.  Sustained
  completions per virtual second under closed loop is the measured
  *capacity* the ``slo_traffic`` experiment expresses offered load
  against (0.5×/0.8×/0.95×).

Clients are not ranks: a swarm of thousands of clients shares the job's
per-node NVMalloc contexts (client → node by id modulo node count), so
the simulated state stays bounded while the arrival process fans out.
Request processes catch *typed* repro failures (store/NVMalloc errors —
e.g. a chunk lost at every replica after the client's retry deadline)
and record them as failed requests; an SLO verdict over a fault leg is
then a report, never a crash.  Kernel bugs (``SimulationError``) still
propagate.
"""

from __future__ import annotations

import itertools
from collections.abc import Generator
from dataclasses import dataclass, field

from repro.errors import NVMallocError, ReproError, SimulationError
from repro.parallel.job import Job
from repro.sim.events import Event
from repro.traffic.arrivals import OP_READ, OP_WRITE, RequestSchedule
from repro.traffic.slo import RequestRecord
from repro.util.units import MiB


@dataclass(frozen=True)
class SwarmConfig:
    """Shape of the swarm's footprint on the store."""

    region_bytes: int = 4 * MiB  # shared NVM region per compute node
    key_stride: int = 4096  # byte offset between adjacent keys
    checkpoint_bytes: int = 4096  # DRAM image size cap for OP_CKPT requests
    owner: str = "slo"  # allocation owner / checkpoint tag prefix
    closed_loop_workers: int = 8  # default calibration concurrency

    def __post_init__(self) -> None:
        if self.region_bytes <= 0 or self.key_stride <= 0:
            raise NVMallocError("swarm region and key stride must be positive")
        if self.checkpoint_bytes <= 0 or self.closed_loop_workers <= 0:
            raise NVMallocError("swarm checkpoint size and workers must be positive")


@dataclass
class SwarmResult:
    """Raw outcome of one swarm execution (fold with :mod:`repro.traffic.slo`)."""

    records: list[RequestRecord] = field(default_factory=list)
    issued: int = 0
    duration: float = 0.0  # first scheduled arrival to last completion
    offered_duration: float = 0.0  # span of the arrival schedule alone

    @property
    def completed_ok(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def rate(self) -> float:
        """Successful completions per virtual second of the run."""
        return self.completed_ok / self.duration if self.duration > 0 else 0.0


class ClientSwarm:
    """A population of simulated clients bound to one launched job."""

    def __init__(self, job: Job, config: SwarmConfig | None = None) -> None:
        self.job = job
        self.engine = job.engine
        self.config = config if config is not None else SwarmConfig()
        # One NVMalloc context + shared region per compute node, created
        # lazily by the first run so construction stays event-free.
        self._libs: list[object] | None = None
        self._vars: list[object] | None = None
        # Distinguishes checkpoint tags across runs on one swarm (the
        # calibration pass and the open-loop pass share a testbed).
        self._run_seq = itertools.count()

    # ------------------------------------------------------------------
    # Setup: one shared NVM region per compute node
    # ------------------------------------------------------------------
    def _setup(self) -> Generator[Event, object, None]:
        config = self.job.config
        libs, variables = [], []
        for node_index in range(config.num_nodes):
            lib = self.job.nvmalloc_for(node_index * config.procs_per_node)
            variable = yield from lib.ssdmalloc(
                self.config.region_bytes,
                owner=f"{self.config.owner}.n{node_index}",
            )
            libs.append(lib)
            variables.append(variable)
        self._libs, self._vars = libs, variables

    def _ensure_setup(self) -> None:
        if self._vars is None:
            self.engine.run(self.engine.process(self._setup()))

    # ------------------------------------------------------------------
    # One request
    # ------------------------------------------------------------------
    def _execute(
        self,
        run_id: int,
        index: int,
        schedule: RequestSchedule,
        arrival: float,
        records: list[RequestRecord],
    ) -> Generator[Event, object, None]:
        client = int(schedule.clients[index])
        op = int(schedule.ops[index])
        slot = client % len(self._vars)
        variable = self._vars[slot]
        size = min(int(schedule.sizes[index]), variable.nbytes)
        offset = (
            int(schedule.keys[index]) * self.config.key_stride
        ) % (variable.nbytes - size + 1)
        ok, error = True, None
        try:
            if op == OP_READ:
                yield from variable.read(offset, size)
            elif op == OP_WRITE:
                yield from variable.write(offset, bytes(size))
            else:  # OP_CKPT: checkpoint a DRAM image, then restore it
                nbytes = min(size, self.config.checkpoint_bytes)
                tag = f"{self.config.owner}.{run_id}.{index}"
                lib = self._libs[slot]
                yield from lib.ssdcheckpoint(tag, 0, bytes(nbytes))
                yield from lib.restore(tag, 0)
        except SimulationError:
            raise
        except ReproError as exc:
            ok, error = False, type(exc).__name__
        records.append(
            RequestRecord(
                client=client,
                op=op,
                arrival=arrival,
                completion=self.engine.now,
                ok=ok,
                error=error,
            )
        )

    # ------------------------------------------------------------------
    # Open loop: issue at scheduled arrival times, completion-blind
    # ------------------------------------------------------------------
    def open_loop(self, schedule: RequestSchedule) -> SwarmResult:
        """Run ``schedule`` open-loop; returns per-request records.

        Each request is materialized as a pre-triggered event inserted
        via ``Engine.schedule_batch`` (the same bulk path the sharded
        runner uses), whose firing spawns the request process.  The
        engine runs until every request completed — including ones that
        completed by *failing* with a typed store error.
        """
        self._ensure_setup()
        engine = self.engine
        run_id = next(self._run_seq)
        n = len(schedule)
        records: list[RequestRecord] = []
        base = engine.now
        done = engine.event()
        remaining = n

        def finished(_proc: Event) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                done.succeed()

        def launch(event: Event) -> None:
            index = int(event.value)
            proc = engine.process(
                self._execute(
                    run_id, index, schedule, base + float(schedule.times[index]),
                    records,
                )
            )
            proc.add_callback(finished)

        arrivals = []
        for index in range(n):
            event = Event(engine)
            event._value = index
            event._scheduled = True
            event.callbacks = launch
            arrivals.append(event)
        engine.schedule_batch(arrivals, schedule.times)
        engine.run(done)
        return SwarmResult(
            records=records,
            issued=n,
            duration=engine.now - base,
            offered_duration=schedule.duration,
        )

    # ------------------------------------------------------------------
    # Closed loop: capacity calibration
    # ------------------------------------------------------------------
    def closed_loop(
        self, schedule: RequestSchedule, *, workers: int | None = None
    ) -> SwarmResult:
        """Drain ``schedule``'s requests back-to-back with ``workers``
        concurrent pullers; the resulting completion rate is the measured
        capacity that anchors the offered-load sweep."""
        self._ensure_setup()
        engine = self.engine
        run_id = next(self._run_seq)
        n = len(schedule)
        workers = workers if workers is not None else self.config.closed_loop_workers
        records: list[RequestRecord] = []
        base = engine.now
        cursor = itertools.count()

        def worker() -> Generator[Event, object, None]:
            while True:
                index = next(cursor)
                if index >= n:
                    return
                yield from self._execute(
                    run_id, index, schedule, engine.now, records
                )

        engine.run_all([engine.process(worker()) for _ in range(min(workers, n))])
        return SwarmResult(
            records=records,
            issued=n,
            duration=engine.now - base,
            offered_duration=schedule.duration,
        )


__all__ = ["ClientSwarm", "SwarmConfig", "SwarmResult"]
