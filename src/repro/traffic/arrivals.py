"""Deterministic arrival processes and heavy-tailed request samplers.

Everything here is *schedule construction*: pure numpy driven off
``np.random.default_rng`` seeds, no simulation state, no wall clock, no
hash-ordering dependence.  A schedule built from the same seed is
bit-identical across interpreter invocations (any ``PYTHONHASHSEED``),
across the serial/parallel experiment orchestrators, and across
``--shards`` execution modes — which is what lets the ``slo_traffic``
experiment digest-pin its results like every other experiment.

Arrival processes are expressed at **unit rate** (one request per virtual
second on average) and scaled by :meth:`RequestSchedule.at_rate`: the
offered-load sweep then replays the *identical* request sequence (same
keys, sizes, operations, same relative arrival order) at different
rates, so load is the only variable between legs of a latency curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NVMallocError

#: Operation codes in a schedule's ``ops`` array.
OP_READ, OP_WRITE, OP_CKPT = 0, 1, 2


# ----------------------------------------------------------------------
# Arrival processes (interarrival generators at unit mean rate)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PoissonProcess:
    """Memoryless arrivals: exponential interarrivals at ``rate``."""

    rate: float = 1.0

    def interarrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.rate <= 0:
            raise NVMallocError(f"arrival rate must be positive, got {self.rate}")
        return rng.exponential(1.0 / self.rate, size=n)


@dataclass(frozen=True)
class DeterministicProcess:
    """Clockwork arrivals: constant spacing ``1/rate``."""

    rate: float = 1.0

    def interarrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.rate <= 0:
            raise NVMallocError(f"arrival rate must be positive, got {self.rate}")
        return np.full(n, 1.0 / self.rate, dtype=np.float64)


@dataclass(frozen=True)
class MMPPProcess:
    """Two-state Markov-modulated Poisson process (bursty on-off traffic).

    The process alternates between an *on* state firing at ``on_rate``
    and an *off* state firing at ``off_rate``, with exponential dwell
    times of mean ``mean_on`` / ``mean_off`` seconds.  Rates are chosen
    so the long-run mean equals the nominal ``rate`` when
    ``on_rate/off_rate`` are left at their defaults: the on state fires
    ``burstiness`` times faster than the off state.
    """

    rate: float = 1.0
    burstiness: float = 4.0
    mean_on: float = 2.0
    mean_off: float = 6.0

    def interarrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.rate <= 0 or self.burstiness < 1.0:
            raise NVMallocError(
                f"need rate > 0 and burstiness >= 1, got "
                f"{self.rate}, {self.burstiness}"
            )
        # Solve for state rates that preserve the nominal mean rate:
        # time-weighted average of on/off rates equals ``rate``.
        on_share = self.mean_on / (self.mean_on + self.mean_off)
        base = self.rate / (on_share * self.burstiness + (1.0 - on_share))
        state_rate = (self.burstiness * base, base)  # (on, off)
        state_mean = (self.mean_on, self.mean_off)
        out = np.empty(n, dtype=np.float64)
        filled = 0
        state = 0  # deterministically start in the on state
        # Dwell in each state for an exponential duration, emitting
        # exponential interarrivals at the state's rate.  Residual dwell
        # time carries into the next arrival's gap when a state empties
        # without firing, so switching never creates phantom arrivals.
        carry = 0.0
        while filled < n:
            dwell = float(rng.exponential(state_mean[state]))
            rate = state_rate[state]
            elapsed = 0.0
            while filled < n:
                gap = float(rng.exponential(1.0 / rate))
                if elapsed + gap > dwell:
                    carry += dwell - elapsed
                    break
                out[filled] = carry + gap
                carry = 0.0
                filled += 1
                elapsed += gap
            state ^= 1
        return out


ArrivalProcess = PoissonProcess | DeterministicProcess | MMPPProcess


# ----------------------------------------------------------------------
# Request-content samplers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParetoSizes:
    """Heavy-tailed object sizes: ``lo * (1 + Pareto(alpha))`` clipped to
    ``hi`` — most requests small, a fat tail of large ones."""

    alpha: float = 1.3
    lo: int = 256
    hi: int = 64 * 1024

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if not (self.alpha > 0 and 0 < self.lo <= self.hi):
            raise NVMallocError(
                f"bad Pareto sampler ({self.alpha}, {self.lo}, {self.hi})"
            )
        sizes = self.lo * (1.0 + rng.pareto(self.alpha, size=n))
        return np.minimum(sizes, self.hi).astype(np.int64)


@dataclass(frozen=True)
class ZipfKeys:
    """Bounded Zipf(s) popularity over ``num_keys`` keys.

    Implemented by inverse-CDF lookup over the normalized ``1/k^s``
    weights (``np.random.Generator.zipf`` is unbounded), so every draw
    is a valid key index and the distribution is exact at any size.
    """

    num_keys: int
    s: float = 1.1

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.num_keys <= 0 or self.s < 0:
            raise NVMallocError(f"bad Zipf sampler ({self.num_keys}, {self.s})")
        weights = 1.0 / np.power(
            np.arange(1, self.num_keys + 1, dtype=np.float64), self.s
        )
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        return np.searchsorted(cdf, rng.random(n), side="right").astype(np.int64)


# ----------------------------------------------------------------------
# The merged, globally time-ordered schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RequestSchedule:
    """A fully materialized open-loop request schedule.

    Parallel arrays, one entry per request, globally ordered by
    ``(time, client, per-client sequence)``: ``times`` are unit-rate
    virtual arrival offsets (scale with :meth:`at_rate`), ``clients``
    the issuing client ids, ``keys`` the Zipf-drawn object keys,
    ``sizes`` the Pareto-drawn byte counts, ``ops`` the operation codes
    (``OP_READ``/``OP_WRITE``/``OP_CKPT``).
    """

    times: np.ndarray
    clients: np.ndarray
    keys: np.ndarray
    sizes: np.ndarray
    ops: np.ndarray

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        """Span of the (unit-rate) arrival window."""
        return float(self.times[-1]) if len(self.times) else 0.0

    def at_rate(self, rate: float) -> "RequestSchedule":
        """The same request sequence offered at ``rate`` requests/second.

        Only the arrival clock is scaled; keys, sizes, operations, and
        the relative arrival order are untouched, so an offered-load
        sweep compares legs that differ *only* in load.
        """
        if rate <= 0:
            raise NVMallocError(f"offered rate must be positive, got {rate}")
        return RequestSchedule(
            times=self.times / rate,
            clients=self.clients,
            keys=self.keys,
            sizes=self.sizes,
            ops=self.ops,
        )

    def digest(self) -> str:
        """sha256 over the raw array bytes — the determinism fingerprint
        the property tests compare across hash seeds and orchestrators."""
        import hashlib

        h = hashlib.sha256()
        for arr in (self.times, self.clients, self.keys, self.sizes, self.ops):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()


def build_schedule(
    seed: int,
    num_clients: int,
    per_client: int,
    *,
    process: ArrivalProcess | None = None,
    sizes: ParetoSizes | None = None,
    keys: ZipfKeys | None = None,
    read_fraction: float = 0.7,
    checkpoint_fraction: float = 0.0,
) -> RequestSchedule:
    """Build the merged open-loop schedule for a client swarm.

    Each client gets an independent child stream of ``seed`` (via
    ``np.random.SeedSequence.spawn`` — deterministic, uncorrelated) and
    generates ``per_client`` arrivals from its own copy of the arrival
    process, plus its request contents.  The per-client streams are then
    merged into one globally time-ordered sequence, ties broken by
    ``(client, sequence)`` so the merge itself is deterministic.
    """
    if num_clients <= 0 or per_client <= 0:
        raise NVMallocError(
            f"need positive clients/requests, got {num_clients}, {per_client}"
        )
    if not 0.0 <= read_fraction <= 1.0 or not 0.0 <= checkpoint_fraction <= 1.0:
        raise NVMallocError("read/checkpoint fractions must be in [0, 1]")
    if read_fraction + checkpoint_fraction > 1.0:
        raise NVMallocError("read + checkpoint fractions exceed 1")
    process = process if process is not None else PoissonProcess()
    sizes = sizes if sizes is not None else ParetoSizes()
    keys = keys if keys is not None else ZipfKeys(num_keys=64)

    streams = np.random.SeedSequence(seed).spawn(num_clients)
    n = num_clients * per_client
    all_times = np.empty(n, dtype=np.float64)
    all_clients = np.empty(n, dtype=np.int64)
    all_seq = np.empty(n, dtype=np.int64)
    all_keys = np.empty(n, dtype=np.int64)
    all_sizes = np.empty(n, dtype=np.int64)
    all_ops = np.empty(n, dtype=np.int8)
    for client, stream in enumerate(streams):
        rng = np.random.default_rng(stream)
        lo = client * per_client
        hi = lo + per_client
        # Per-client arrivals are spaced for the whole swarm's unit rate:
        # N clients each firing at 1/N requests/s aggregate to rate 1.
        gaps = process.interarrivals(rng, per_client) * num_clients
        all_times[lo:hi] = np.cumsum(gaps)
        all_clients[lo:hi] = client
        all_seq[lo:hi] = np.arange(per_client)
        all_keys[lo:hi] = keys.sample(rng, per_client)
        all_sizes[lo:hi] = sizes.sample(rng, per_client)
        draw = rng.random(per_client)
        ops = np.full(per_client, OP_WRITE, dtype=np.int8)
        ops[draw < read_fraction] = OP_READ
        ops[draw >= 1.0 - checkpoint_fraction] = OP_CKPT
        all_ops[lo:hi] = ops
    order = np.lexsort((all_seq, all_clients, all_times))
    return RequestSchedule(
        times=all_times[order],
        clients=all_clients[order],
        keys=all_keys[order],
        sizes=all_sizes[order],
        ops=all_ops[order],
    )


__all__ = [
    "ArrivalProcess",
    "DeterministicProcess",
    "MMPPProcess",
    "OP_CKPT",
    "OP_READ",
    "OP_WRITE",
    "ParetoSizes",
    "PoissonProcess",
    "RequestSchedule",
    "ZipfKeys",
    "build_schedule",
]
