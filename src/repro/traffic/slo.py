"""Per-request virtual-latency accounting and SLO verdicts.

A :class:`RequestRecord` is written by the client swarm for every
request it issues: the *scheduled* arrival time (the open-loop clock,
not the moment service began), the completion time, and the outcome.
Latency is ``completion - arrival``, so every second a request spent
queueing behind earlier work is part of its latency — the quantity a
latency SLO is written against, and exactly what closed-loop harnesses
cannot see.

:func:`summarize` folds a record list into the tail percentiles
(p50/p95/p99/p99.9, nearest-rank on the sorted sample) plus
goodput-vs-SLO: attainment is the fraction of *all issued* requests that
completed successfully within the target (errors count against it),
goodput the rate of such requests over the observation window.
:func:`window_summary` restricts the fold to arrivals inside a virtual
time window — "p99 during the crash" attribution for fault legs.

For *where* the tail time goes, runs executed with tracing on reuse the
obs machinery unchanged: the per-(layer, op) percentile tables and the
critical-path analyzer already attribute virtual time across the
mmap → page-cache → chunk-cache → store stack (see
:func:`repro.obs.report_lines` and :func:`repro.obs.export.latency_json`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.traffic.arrivals import OP_CKPT, OP_READ, OP_WRITE

#: Human-readable operation names, indexed by schedule op code.
OP_NAMES = {OP_READ: "read", OP_WRITE: "write", OP_CKPT: "ckpt-restore"}


@dataclass(frozen=True)
class RequestRecord:
    """One issued request's life: schedule, outcome, virtual latency."""

    client: int
    op: int
    arrival: float  # scheduled (open-loop) arrival, virtual seconds
    completion: float  # virtual time the request finished (ok or not)
    ok: bool
    error: str | None = None  # exception class name of a clean failure

    @property
    def latency(self) -> float:
        """Virtual seconds from scheduled arrival to completion,
        queueing delay included."""
        return self.completion - self.arrival


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[rank]


@dataclass(frozen=True)
class SloSummary:
    """The latency/goodput fold of one leg (or one window of a leg)."""

    count: int  # requests issued
    ok: int  # requests that completed successfully
    errors: int  # clean failures (typed store errors)
    duration: float  # observation window, virtual seconds
    p50: float
    p95: float
    p99: float
    p999: float
    max_latency: float
    slo_target: float  # the latency target, virtual seconds
    within_slo: int  # successful AND within target

    @property
    def attainment(self) -> float:
        """Fraction of issued requests served successfully within the SLO."""
        return self.within_slo / self.count if self.count else 0.0

    @property
    def goodput(self) -> float:
        """SLO-compliant completions per virtual second."""
        return self.within_slo / self.duration if self.duration > 0 else 0.0

    @property
    def throughput(self) -> float:
        """Successful completions per virtual second (SLO-blind)."""
        return self.ok / self.duration if self.duration > 0 else 0.0


def summarize(
    records: list[RequestRecord], *, slo_target: float, duration: float | None = None
) -> SloSummary:
    """Fold records into tail percentiles and SLO attainment.

    ``duration`` defaults to the span from first arrival to last
    completion; legs that know their true observation window (e.g. the
    full run including drain) should pass it explicitly so goodput is
    not inflated by an idle tail.
    """
    if not records:
        return SloSummary(
            count=0, ok=0, errors=0, duration=duration or 0.0,
            p50=0.0, p95=0.0, p99=0.0, p999=0.0, max_latency=0.0,
            slo_target=slo_target, within_slo=0,
        )
    latencies = sorted(r.latency for r in records)
    ok = sum(1 for r in records if r.ok)
    within = sum(1 for r in records if r.ok and r.latency <= slo_target)
    if duration is None:
        start = min(r.arrival for r in records)
        stop = max(r.completion for r in records)
        duration = stop - start
    return SloSummary(
        count=len(records),
        ok=ok,
        errors=len(records) - ok,
        duration=duration,
        p50=percentile(latencies, 0.50),
        p95=percentile(latencies, 0.95),
        p99=percentile(latencies, 0.99),
        p999=percentile(latencies, 0.999),
        max_latency=latencies[-1],
        slo_target=slo_target,
        within_slo=within,
    )


def window_summary(
    records: list[RequestRecord],
    start: float,
    stop: float,
    *,
    slo_target: float,
) -> SloSummary:
    """:func:`summarize` restricted to requests *arriving* in
    ``[start, stop)`` — tail latency during a fault window, with the
    window itself as the observation duration."""
    inside = [r for r in records if start <= r.arrival < stop]
    return summarize(inside, slo_target=slo_target, duration=stop - start)


__all__ = [
    "OP_NAMES",
    "RequestRecord",
    "SloSummary",
    "percentile",
    "summarize",
    "window_summary",
]
