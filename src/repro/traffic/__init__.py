"""Open-loop traffic generation against the aggregate store.

Every other workload in the repo is a *closed-loop* batch kernel: the
next request is issued only after the previous one completes, so the
offered load self-throttles to whatever the store can serve and queueing
delay is invisible.  This package generates *open-loop* traffic — a
seeded arrival process decides when each request is issued, regardless
of whether earlier requests finished — which is the only way to measure
what the north star demands: sustained request service from a large
client population against a latency SLO, where queueing delay (and its
tail) is the primary metric rather than makespan.

- :mod:`repro.traffic.arrivals` — deterministic arrival processes
  (Poisson, bursty MMPP on-off, deterministic rate) and heavy-tailed
  object-size / key-popularity samplers, all driven off
  ``np.random.default_rng`` so schedules are bit-identical across hash
  seeds and orchestrators;
- :mod:`repro.traffic.clients` — a swarm of lightweight simulated
  clients issuing read/write/checkpoint-restore requests into the
  existing mmap → page-cache → chunk-cache → store stack at their
  scheduled virtual arrival times (via ``Engine.schedule_batch``);
- :mod:`repro.traffic.slo` — per-request virtual-latency accounting:
  p50/p95/p99/p99.9, goodput-vs-SLO verdicts, and windowed tail stats
  for "p99 during the crash" attribution.
"""

from repro.traffic.arrivals import (
    DeterministicProcess,
    MMPPProcess,
    ParetoSizes,
    PoissonProcess,
    RequestSchedule,
    ZipfKeys,
    build_schedule,
)
from repro.traffic.clients import ClientSwarm, SwarmConfig, SwarmResult
from repro.traffic.slo import (
    OP_NAMES,
    RequestRecord,
    SloSummary,
    summarize,
    window_summary,
)

__all__ = [
    "ClientSwarm",
    "DeterministicProcess",
    "MMPPProcess",
    "OP_NAMES",
    "ParetoSizes",
    "PoissonProcess",
    "RequestRecord",
    "RequestSchedule",
    "SloSummary",
    "SwarmConfig",
    "SwarmResult",
    "ZipfKeys",
    "build_schedule",
    "summarize",
    "window_summary",
]
