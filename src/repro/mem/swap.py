"""Transparent OS swapping to a node-local SSD (the paper's alternative).

§I lays out two ways to use node-local NVM for memory extension: re-enable
kernel virtual memory with the SSD as swap, or NVMalloc's explicit
secondary memory partition.  The abstract's closing claim — "while
NVMalloc enables transparent access to NVM-resident variables, the
explicit control it provides is crucial to optimize application
performance" — needs the swap alternative to compare against, so here it
is: a fixed DRAM residency budget, 4 KB page-granular swap-in/swap-out on
the local SSD, kernel-style swap read-ahead (``page-cluster`` pages), and
no application control whatsoever over what stays resident.

Differences from NVMalloc that the comparison exposes:

- swap I/O is page-granular (plus a small read-ahead cluster), so it
  cannot amortize device latency the way 256 KB chunk fetches do;
- the swap device is node-local only: no aggregation, no remote capacity,
  and every process pays for its own copy of shared data;
- the application cannot steer placement — the global LRU decides, so a
  streaming scan of a cold array evicts the hot working set.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Generator

import numpy as np

from repro.cluster.node import Node
from repro.core.variable import Array
from repro.devices.base import AccessKind
from repro.errors import CapacityError, DeviceError
from repro.sim.events import Event
from repro.store.chunk import PAGE_SIZE

#: Linux's default vm.page-cluster is 3: swap read-ahead of 2^3 pages.
SWAP_READAHEAD_PAGES = 8

#: Handling a major fault costs a kernel round trip comparable to any
#: other page-fault service in this model.
FAULT_OVERHEAD = 25e-6


class SwapSpace:
    """A node's swap: a DRAM residency budget backed by the local SSD.

    Shared by every :class:`SwappedArray` on the node, exactly like the
    kernel's single LRU: one process's scan evicts another's pages.
    """

    def __init__(
        self,
        node: Node,
        *,
        resident_bytes: int,
        swap_bytes: int | None = None,
        page_size: int = PAGE_SIZE,
        readahead_pages: int = SWAP_READAHEAD_PAGES,
        fault_overhead: float = FAULT_OVERHEAD,
    ) -> None:
        if node.ssd is None:
            raise DeviceError(f"{node.name} has no SSD to swap to")
        if resident_bytes < page_size:
            raise CapacityError("residency budget below one page")
        self.node = node
        self.ssd = node.ssd
        self.page_size = page_size
        self.readahead_pages = max(1, readahead_pages)
        self.fault_overhead = fault_overhead
        self.capacity_pages = resident_bytes // page_size
        node.dram.allocate(resident_bytes)
        self.swap_bytes = (
            swap_bytes if swap_bytes is not None else self.ssd.logical_capacity
        )
        self._next_slot = 0  # bump allocator over the swap partition
        # Global LRU of resident pages: (array id, page index) -> dirty.
        self._resident: OrderedDict[tuple[int, int], bool] = OrderedDict()
        self._owners: dict[int, "SwappedArray"] = {}
        self.major_faults = 0
        self.swapins = 0
        self.swapouts = 0

    def _register(self, array: "SwappedArray") -> int:
        nbytes = array.nbytes
        pages = -(-nbytes // self.page_size)
        base = self._next_slot
        if (base + pages) * self.page_size > self.swap_bytes:
            raise CapacityError(
                f"{self.node.name}: swap partition exhausted"
            )
        self._next_slot += pages
        self._owners[id(array)] = array
        return base

    # ------------------------------------------------------------------
    def _evict_one(self) -> Generator[Event, object, None]:
        (owner_id, page_idx), dirty = self._resident.popitem(last=False)
        if dirty:
            owner = self._owners[owner_id]
            offset = (owner.swap_base + page_idx) * self.page_size
            yield from self.ssd.write_extent(offset, self.page_size)
            self.swapouts += 1

    def fault_in(
        self, array: "SwappedArray", page_idx: int
    ) -> Generator[Event, object, None]:
        """Major fault: swap the page (plus read-ahead cluster) in."""
        last_page = (array.nbytes - 1) // self.page_size
        cluster = [
            p
            for p in range(page_idx, min(page_idx + self.readahead_pages, last_page + 1))
            if (id(array), p) not in self._resident
        ]
        if not cluster:
            return
        self.major_faults += 1
        self.swapins += len(cluster)
        offset = (array.swap_base + cluster[0]) * self.page_size
        yield from self.ssd.read_extent(offset, len(cluster) * self.page_size)
        if self.fault_overhead:
            yield self.node.engine.timeout(self.fault_overhead)
        for p in cluster:
            while len(self._resident) >= self.capacity_pages:
                yield from self._evict_one()
            self._resident[(id(array), p)] = False

    def touch(
        self, array: "SwappedArray", first: int, last: int, *, dirty: bool
    ) -> Generator[Event, object, None]:
        """Make pages ``first..last`` resident, marking them dirty if asked."""
        for page_idx in range(first, last + 1):
            key = (id(array), page_idx)
            if key in self._resident:
                self._resident.move_to_end(key)
                if dirty:
                    self._resident[key] = True
            else:
                yield from self.fault_in(array, page_idx)
                if dirty:
                    self._resident[key] = True


class SwappedArray(Array):
    """A typed array living in swappable anonymous memory.

    Payload bytes are kept in full (correctness is simulated exactly);
    residency and swap I/O costs come from the shared :class:`SwapSpace`.
    """

    def __init__(
        self,
        swap: SwapSpace,
        shape: tuple[int, ...],
        dtype: np.dtype,
    ) -> None:
        super().__init__(shape, dtype)
        self.swap = swap
        self.swap_base = swap._register(self)
        self._buffer = np.zeros(self.nbytes, dtype=np.uint8)

    def _pages(self, offset: int, length: int) -> tuple[int, int]:
        first = offset // self.swap.page_size
        last = (offset + max(length, 1) - 1) // self.swap.page_size
        return first, last

    def read_bytes(self, offset: int, length: int) -> Generator[Event, object, bytes]:
        """Read raw bytes, faulting non-resident pages in from swap."""
        if offset < 0 or offset + length > self.nbytes:
            raise IndexError(f"read [{offset}, {offset + length}) out of range")
        if length:
            first, last = self._pages(offset, length)
            yield from self.swap.touch(self, first, last, dirty=False)
            yield from self.swap.node.dram.access(AccessKind.READ, length)
        return self._buffer[offset : offset + length].tobytes()

    def write_bytes(self, offset: int, data: bytes) -> Generator[Event, object, None]:
        """Write raw bytes, dirtying their pages."""
        if offset < 0 or offset + len(data) > self.nbytes:
            raise IndexError(f"write [{offset}, {offset + len(data)}) out of range")
        if data:
            first, last = self._pages(offset, len(data))
            yield from self.swap.touch(self, first, last, dirty=True)
            yield from self.swap.node.dram.access(AccessKind.WRITE, len(data))
        self._buffer[offset : offset + len(data)] = np.frombuffer(
            data, dtype=np.uint8
        )
